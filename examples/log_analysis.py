"""Log analysis over semi-structured click data.

The paper's introduction motivates large-scale platforms with "log
analysis over semi-structured data": nested records, denormalized storage,
and business logic pushed into UDFs. This example runs that scenario end
to end on a synthetic click log:

* events carry a nested ``client`` struct and a tag array;
* a bot-filter UDF guards the fact table (opaque to static optimizers);
* a browser->engine functional dependency hides in the nested fields,
  found by CORDS and measured by pilot runs.

Run:  python examples/log_analysis.py
"""

from repro import Dyno
from repro.core.baselines import oracle_leaf_stats, relopt_leaf_stats
from repro.workloads.cords import discover_correlations
from repro.workloads.weblogs import (
    generate_weblogs,
    weblog_engagement,
    weblog_premium_blink,
)


def main() -> None:
    tables = generate_weblogs(user_count=400, page_count=150,
                              event_count=12000)
    print(f"click log: {len(tables['pageviews'])} events, "
          f"{len(tables['users'])} users, {len(tables['pages'])} pages")

    print("\n== CORDS over the nested client struct ==")
    findings = discover_correlations(
        tables["pageviews"],
        columns=["browser", "engine"],
        value_of=lambda row, name: row["client"][name],
    )
    for finding in findings:
        print("  " + finding.describe())

    print("\n== Correlated nested predicates: who estimates what ==")
    premium = weblog_premium_blink()
    dyno = Dyno(tables, udfs=premium.udfs)
    block = dyno.prepare(premium.final_spec).block
    pv = block.leaf_for("pv")
    believed = relopt_leaf_stats(dyno.tables, block)[pv.signature()]
    truth = oracle_leaf_stats(dyno.tables, block)[pv.signature()]
    print(f"  chrome+blink events, independence assumption: "
          f"{believed.row_count:8.0f}")
    print(f"  chrome+blink events, ground truth:            "
          f"{truth.row_count:8.0f}")

    print("\n== Engagement query (bot filter UDF + dwell threshold) ==")
    workload = weblog_engagement()
    dyno = Dyno(tables, udfs=workload.udfs)
    execution = dyno.execute(workload.final_spec)
    print("  top country x category by dwell time:")
    for row in execution.rows[:5]:
        print(f"    {row['country']:3s} {row['category']:6s} "
              f"views={row['views']:5.0f} dwell={row['dwell']:.0f}ms")
    result = execution.block_results[0]
    print(f"\n  plan: {result.iterations[0].plan_signature}")
    print(f"  simulated total {execution.total_seconds:.1f}s "
          f"(pilot {execution.pilot_seconds:.1f}s)")


if __name__ == "__main__":
    main()
