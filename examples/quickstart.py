"""Quickstart: run TPC-H Q10 end to end through DYNO.

Generates a small TPC-H dataset, executes Q10 with pilot runs + dynamic
re-optimization, and prints the result rows, the physical plans used, and
the simulated-time breakdown.

Run:  python examples/quickstart.py
"""

from repro import Dyno, generate_tpch, render_plan
from repro.workloads.queries import q10


def main() -> None:
    print("Generating TPC-H (scale factor 0.1) ...")
    dataset = generate_tpch(0.1)
    for name, table in dataset.tables.items():
        print(f"  {name:10s} {len(table):7d} rows "
              f"{table.size_in_bytes():10d} bytes")

    workload = q10()
    dyno = Dyno(dataset.tables, udfs=workload.udfs)

    print("\nExecuting Q10 (DYNOPT, strategy UNC-1) ...")
    execution = dyno.execute(workload.final_spec, mode="dynopt",
                             strategy="UNC-1")

    print("\nTop customers by revenue:")
    for row in execution.rows[:5]:
        print(f"  {row['cname']:24s} {row['nname']:14s} "
              f"revenue={row['revenue']:.2f}")

    result = execution.block_results[0]
    print(f"\nPlans across {len(result.iterations)} iteration(s):")
    for record in result.iterations:
        print(f"  iteration {record.index}: {record.plan_signature}")
        print(f"    executed {record.jobs_executed} "
              f"in {record.makespan_seconds:.1f}s (simulated)")

    print("\nSimulated time breakdown:")
    print(f"  pilot runs     {execution.pilot_seconds:8.1f} s")
    print(f"  optimizer      {execution.optimizer_seconds:8.1f} s")
    print(f"  plan execution {execution.execution_seconds:8.1f} s")
    print(f"  total          {execution.total_seconds:8.1f} s")

    print("\nFinal plan of the first iteration:")
    print(render_plan(result.plans[0], show_estimates=True))


if __name__ == "__main__":
    main()
