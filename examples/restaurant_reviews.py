"""The paper's motivating example (Section 4.1): query Q1.

Restaurants in zip 94301, California, with positive reviews whose authors
pass an identity check:

    SELECT rs.name
    FROM restaurant rs, review rv, tweet t
    WHERE rs.id = rv.rsid AND rv.tid = t.id
    AND rs.addr[0].zip = 94301 AND rs.addr[0].state = 'CA'
    AND sentanalysis(rv.text) = positive AND checkid(...)

Two estimation traps live here:
* the zip and state predicates are perfectly *correlated* (zip determines
  state), so multiplying their selectivities underestimates the result;
* ``sentanalysis`` is a UDF -- a traditional optimizer cannot estimate it
  at all.

This example shows (1) CORDS discovering the correlation offline, (2) how
far off the independence assumption is vs what a pilot run measures, and
(3) the query running end to end.

Run:  python examples/restaurant_reviews.py
"""

from repro import Dyno, generate_restaurants
from repro.core.baselines import oracle_leaf_stats, relopt_leaf_stats
from repro.workloads.cords import discover_correlations
from repro.workloads.queries import q1_restaurants


def main() -> None:
    tables = generate_restaurants(restaurant_count=2000, tweet_count=20000)
    workload = q1_restaurants()
    dyno = Dyno(tables, udfs=workload.udfs)

    print("== CORDS-style correlation discovery on `restaurant` ==")
    findings = discover_correlations(
        tables["restaurant"],
        columns=["zip", "state", "cuisine"],
        value_of=lambda row, name: (row["addr"][0][name]
                                    if name in ("zip", "state")
                                    else row.get(name)),
    )
    for finding in findings:
        print("  " + finding.describe())

    extracted = dyno.prepare(workload.final_spec)
    block = extracted.block
    restaurant_leaf = block.leaf_for("rs")

    print("\n== What each optimizer believes about the filtered "
          "restaurant relation ==")
    believed = relopt_leaf_stats(dyno.tables, block)
    truth = oracle_leaf_stats(dyno.tables, block)
    signature = restaurant_leaf.signature()
    print(f"  independence assumption: "
          f"{believed[signature].row_count:8.1f} rows")
    print(f"  ground truth:            "
          f"{truth[signature].row_count:8.1f} rows")

    report = dyno.executor.pilot_runner.run(block)
    measured = report.outcomes[signature].stats.row_count
    print(f"  pilot run estimate:      {measured:8.1f} rows "
          f"(simulated pilot time {report.simulated_seconds:.1f}s)")

    review_leaf = block.leaf_for("rv")
    review_outcome = report.outcomes[review_leaf.signature()]
    print(f"\n  sentanalysis UDF measured selectivity: "
          f"{review_outcome.stats.row_count / len(tables['review']):.2f} "
          f"(a traditional optimizer must assume 1.0)")

    print("\n== Executing Q1 ==")
    execution = dyno.execute(workload.final_spec)
    names = sorted({row["name"] for row in execution.rows})
    print(f"  {len(execution.rows)} qualifying review/tweet pairs across "
          f"{len(names)} restaurants; e.g. {names[:3]}")
    print(f"  simulated total {execution.total_seconds:.1f}s "
          f"(pilot {execution.pilot_seconds:.1f}s)")


if __name__ == "__main__":
    main()
