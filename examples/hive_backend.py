"""Replaying DYNO's plans under the Hive backend (paper Section 6.6).

Hive 0.12's map join ships its build side via MapReduce's DistributedCache,
loading it once per *node* instead of once per *task* like Jaql. The paper
hand-ports DYNO's plans to Hive and observes the same trends with larger
speedups for broadcast-heavy queries (Q9': 3.98x vs 1.88x).

This example optimizes Q9' once, executes the same physical plan under
both backends, and reports the difference.

Run:  python examples/hive_backend.py
"""

from repro import Dyno, generate_tpch, summarize_plan
from repro.core.baselines import oracle_leaf_stats
from repro.core.hive import replay_plan_in_hive
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q9_prime


def main() -> None:
    dataset = generate_tpch(0.25)
    workload = q9_prime()
    dyno = Dyno(dataset.tables, udfs=workload.udfs)

    extracted = dyno.prepare(workload.final_spec)
    stats = oracle_leaf_stats(dyno.tables, extracted.block)
    plan = JoinOptimizer(extracted.block, stats,
                         dyno.config.optimizer).optimize().plan
    summary = summarize_plan(plan)
    print(f"Q9' plan: {summary.broadcast_joins} broadcast joins "
          f"({summary.chained_joins} chained), "
          f"{summary.repartition_joins} repartition joins")

    jaql_result = dyno.executor.execute_physical_plan(
        extracted.block, plan, label="jaql"
    )
    hive_result = replay_plan_in_hive(dataset.tables, extracted.block,
                                      plan, udfs=workload.udfs)

    jaql_seconds = jaql_result.execution_seconds
    hive_seconds = hive_result.execution_seconds
    print(f"\nJaql backend: {jaql_seconds:8.1f} s (build side loaded by "
          f"every map task)")
    print(f"Hive backend: {hive_seconds:8.1f} s (DistributedCache: build "
          f"loaded once per node)")
    print(f"Hive advantage on this plan: "
          f"{jaql_seconds / hive_seconds:.2f}x")


if __name__ == "__main__":
    main()
