"""Adaptive re-planning on Q8' -- reproducing the paper's Figure 2.

Q8' is TPC-H Q8 plus (a) a UDF over the orders x customer join result and
(b) two correlated predicates on orders. Both defeat static estimation:
the UDF's selectivity is unknown until the join actually runs, which is
exactly when DYNOPT's re-optimization points pay off.

The script prints the plan a traditional relational optimizer (DBMS-X
stand-in) picks, then DYNO's plan at every re-optimization point, like the
paper's Figure 2.

Run:  python examples/adaptive_replanning.py
"""

from dataclasses import replace

from repro import Dyno, generate_tpch, render_plan
from repro.config import DEFAULT_CONFIG
from repro.core.baselines import relopt_optimizer_config, relopt_plan
from repro.workloads.queries import q8_prime


def main() -> None:
    dataset = generate_tpch(0.25)  # the paper's SF=100 equivalent
    workload = q8_prime()

    # Force multi-job plans so re-optimization points exist at this scale.
    config = replace(
        DEFAULT_CONFIG,
        cluster=replace(DEFAULT_CONFIG.cluster, task_memory_bytes=32 * 1024),
        optimizer=replace(DEFAULT_CONFIG.optimizer,
                          max_broadcast_bytes=32 * 1024),
    )
    dyno = Dyno(dataset.tables, config=config, udfs=workload.udfs)

    extracted = dyno.prepare(workload.final_spec)
    plan, believed = relopt_plan(extracted.block, dyno.tables, dyno.config)
    print("== plan by traditional optimizer (DBMS-X stand-in) ==")
    print(render_plan(plan))
    orders_leaf = extracted.block.leaf_for("o")
    print(f"\n  DBMS-X believes the filtered orders relation has "
          f"{believed[orders_leaf.signature()].row_count:.0f} rows "
          f"(correlated zone/region predicates multiplied independently).")

    print("\n== DYNO execution (pilot runs + re-optimization) ==")
    execution = dyno.execute(workload.final_spec, mode="dynopt",
                             strategy="UNC-1")
    result = execution.block_results[0]
    for record in result.iterations:
        print(f"\n-- DYNO plan{record.index + 1} "
              f"(executed {record.jobs_executed}, "
              f"{record.makespan_seconds:.1f}s simulated) --")
        print(record.plan_text)

    from repro.optimizer.plans import plan_diff

    for index, (before, after) in enumerate(zip(result.plans,
                                                result.plans[1:])):
        print(f"\nwhat re-optimization {index + 1} changed:")
        for change in plan_diff(before, after) or ["(plan shape unchanged)"]:
            print(f"  - {change}")
    print(f"\nre-optimizations: {result.reoptimization_count}, "
          f"plan changes: {result.plan_changes}")
    print(f"result rows: {len(execution.rows)}; "
          f"simulated total {execution.total_seconds:.1f}s")


if __name__ == "__main__":
    main()
