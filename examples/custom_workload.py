"""Bring your own query: custom tables, UDFs, and SQL through DYNO.

Shows the full public API surface a downstream user touches:

* registering custom tables alongside the TPC-H ones;
* registering a UDF with a simulated per-call CPU cost;
* executing SQL text (parser -> push-down -> pilot runs -> DYNOPT);
* comparing the optimizer's plan with and without pilot statistics.

Run:  python examples/custom_workload.py
"""

import random

from repro import (
    Dyno,
    Schema,
    Table,
    Udf,
    UdfRegistry,
    generate_tpch,
    render_plan,
)
from repro.core.baselines import relopt_plan
from repro.data.schema import FLOAT, INT, STRING


def build_campaigns(order_count: int, seed: int = 11) -> Table:
    """A marketing-campaign table keyed by order: our 'business' data."""
    rng = random.Random(seed)
    schema = Schema.of(orderkey=INT, channel=STRING, spend=FLOAT)
    rows = [
        {
            "orderkey": key,
            "channel": rng.choice(["search", "social", "email", "tv"]),
            "spend": round(rng.uniform(1.0, 500.0), 2),
        }
        for key in range(1, order_count + 1)
        if rng.random() < 0.4  # not every order came from a campaign
    ]
    return Table("campaign", schema, rows)


def main() -> None:
    dataset = generate_tpch(0.1)

    udfs = UdfRegistry()
    udfs.register(Udf(
        "high_roi",
        lambda spend, price: (spend or 0) > 0 and price / spend > 400,
        cost_seconds=0.001,
    ))

    dyno = Dyno(dataset.tables, udfs=udfs)
    campaigns = build_campaigns(len(dataset.tables["orders"]))
    dyno.register_table("campaign", campaigns)
    print(f"Registered {len(campaigns)} campaign rows.")

    sql = """
        SELECT cg.channel AS channel, count(*) AS orders,
               sum(o.o_totalprice) AS revenue
        FROM campaign cg, orders o, customer c
        WHERE cg.orderkey = o.o_orderkey
        AND o.o_custkey = c.c_custkey
        AND c.c_mktsegment = 'BUILDING'
        AND high_roi(cg.spend, o.o_totalprice)
        GROUP BY cg.channel
        ORDER BY revenue DESC
    """

    print("\n== Plan a UDF-blind optimizer would pick ==")
    extracted = dyno.prepare(sql, name="roi")
    blind_plan, _ = relopt_plan(extracted.block, dyno.tables, dyno.config)
    print(render_plan(blind_plan))

    print("\n== DYNO execution ==")
    execution = dyno.execute(sql, name="roi")
    result = execution.block_results[0]
    print(render_plan(result.plans[0], show_estimates=True))
    print(f"\nHigh-ROI building-segment orders by channel:")
    for row in execution.rows:
        print(f"  {row['channel']:8s} orders={row['orders']:5.0f} "
              f"revenue={row['revenue']:.2f}")
    print(f"\nsimulated total {execution.total_seconds:.1f}s "
          f"(pilot {execution.pilot_seconds:.1f}s, "
          f"optimizer {execution.optimizer_seconds:.2f}s)")


if __name__ == "__main__":
    main()
