"""End-to-end property tests: random queries, random plans, one truth.

The reference interpreter is the oracle; whatever join order, method mix
or execution strategy the system picks for a randomly generated query,
the distributed execution must return the same rows.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyno import Dyno
from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.jaql.expr import QuerySpec
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import push_down_filters
from tests.conftest import assert_same_rows

COLORS = ["red", "green", "blue", "white"]


def make_universe(seed: int):
    """A small snowflake: fact -> dim_a -> dim_b, plus dim_c off fact."""
    rng = random.Random(seed)
    dim_b = Table("dim_b", Schema.of(bk=INT, bcolor=STRING), [
        {"bk": i, "bcolor": rng.choice(COLORS)} for i in range(6)
    ])
    dim_a = Table("dim_a", Schema.of(ak=INT, bk=INT, acolor=STRING), [
        {"ak": i, "bk": rng.randrange(6), "acolor": rng.choice(COLORS)}
        for i in range(20)
    ])
    dim_c = Table("dim_c", Schema.of(ck=INT, weight=INT), [
        {"ck": i, "weight": rng.randrange(100)} for i in range(10)
    ])
    fact = Table("fact", Schema.of(fk=INT, ak=INT, ck=INT, value=INT), [
        {"fk": i, "ak": rng.randrange(20), "ck": rng.randrange(10),
         "value": rng.randrange(1000)}
        for i in range(300)
    ])
    return {"fact": fact, "dim_a": dim_a, "dim_b": dim_b, "dim_c": dim_c}


def random_query(rng: random.Random) -> str:
    """A random conjunctive join query over the snowflake."""
    clauses = ["f.ak = a.ak"]
    tables = ["fact f", "dim_a a"]
    if rng.random() < 0.7:
        tables.append("dim_b b")
        clauses.append("a.bk = b.bk")
    if rng.random() < 0.7:
        tables.append("dim_c c")
        clauses.append("f.ck = c.ck")
    if rng.random() < 0.8:
        clauses.append(f"a.acolor = '{rng.choice(COLORS)}'")
    if rng.random() < 0.5 and "dim_b b" in tables:
        clauses.append(f"b.bcolor = '{rng.choice(COLORS)}'")
    if rng.random() < 0.5:
        clauses.append(f"f.value < {rng.randrange(100, 1000)}")
    if rng.random() < 0.4 and "dim_c c" in tables:
        clauses.append(f"c.weight >= {rng.randrange(0, 80)}")
    return (
        "SELECT f.fk AS fk, f.value AS value FROM "
        + ", ".join(tables)
        + " WHERE " + " AND ".join(clauses)
    )


class TestRandomQueries:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_distributed_matches_interpreter(self, data_seed, query_seed):
        tables = make_universe(data_seed)
        rng = random.Random(query_seed)
        sql = random_query(rng)
        dyno = Dyno(tables)
        spec = dyno.parse(sql, name="rand")
        mode, strategy = rng.choice([
            ("dynopt", "UNC-1"),
            ("dynopt", "CHEAP-1"),
            ("simple", "SIMPLE_MO"),
            ("simple", "SIMPLE_SO"),
        ])
        execution = dyno.execute(spec, mode=mode, strategy=strategy)
        expected = Interpreter(tables).run(
            QuerySpec("ref", push_down_filters(spec.root))
        )
        assert_same_rows(execution.rows, expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_reoptimization_never_changes_results(self, seed):
        tables = make_universe(seed)
        sql = random_query(random.Random(seed))
        with_reopt = Dyno(tables).execute(sql, mode="dynopt")
        without = Dyno(tables).execute(sql, mode="simple")
        assert_same_rows(with_reopt.rows, without.rows)


class TestRandomStaticOrders:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_any_connected_order_matches(self, seed):
        from repro.core.baselines import (
            build_left_deep_plan,
            enumerate_connected_orders,
            jaql_file_size_stats,
        )

        tables = make_universe(seed)
        sql = ("SELECT f.fk AS fk FROM fact f, dim_a a, dim_b b "
               "WHERE f.ak = a.ak AND a.bk = b.bk "
               "AND b.bcolor = 'red'")
        dyno = Dyno(tables)
        spec = dyno.parse(sql)
        extracted = dyno.prepare(spec)
        block = extracted.block
        stats = jaql_file_size_stats(dyno.tables, block)
        sizes = {leaf.source_name: dyno.dfs.file_size(leaf.source_name)
                 for leaf in block.base_leaves()}
        orders = list(enumerate_connected_orders(block))
        rng = random.Random(seed)
        order = orders[rng.randrange(len(orders))]
        plan = build_left_deep_plan(block, order, stats, sizes, dyno.config)
        execution = dyno.execute_with_plan(spec, plan)
        expected = Interpreter(tables).run(
            QuerySpec("ref", push_down_filters(spec.root))
        )
        assert_same_rows(execution.rows, expected)
