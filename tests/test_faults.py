"""Unit tests for the fault-injection subsystem (cluster.faults).

The differential oracle (tests/test_fault_matrix.py) proves faults are
result-invisible end to end; these tests pin down the building blocks:
plan validation and serialization, the derived RNG, injector budgets,
task-attempt inflation, and the runtime's boundary retry loop.
"""

import pytest

from repro.cluster.faults import (
    FaultPlan,
    JOB_BOUNDARIES,
    derived_rng,
)
from repro.cluster.job import MapReduceJob
from repro.config import ClusterConfig, DynoConfig
from repro.errors import (
    FaultPlanError,
    JobFaultInjectedError,
    TaskRetriesExhaustedError,
)

from tests.test_runtime import (
    SCHEMA,
    identity_mapper,
    make_runtime,
    small_config,
)


class _JobStub:
    """Minimal job-shaped object for injector unit tests."""

    def __init__(self, name, broadcast=False):
        self.name = name
        self.is_broadcast_join = broadcast


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultPlanError, match="task_failure_rate"):
            FaultPlan(seed=1, task_failure_rate=1.5)
        with pytest.raises(FaultPlanError, match="node_loss_rate"):
            FaultPlan(seed=1, node_loss_rate=-0.1)

    def test_straggler_factor_must_slow_down(self):
        with pytest.raises(FaultPlanError, match="straggler_factor"):
            FaultPlan(seed=1, straggler_factor=0.5)

    def test_budgets_must_be_non_negative(self):
        with pytest.raises(FaultPlanError, match="budgets"):
            FaultPlan(seed=1, max_node_losses=-1)

    def test_unknown_boundary_rejected(self):
        with pytest.raises(FaultPlanError, match="commit"):
            FaultPlan(seed=1, job_failure_boundaries=("map", "commit"))

    def test_injects_anything(self):
        assert not FaultPlan(seed=1).injects_anything
        assert FaultPlan(seed=1, straggler_rate=0.1).injects_anything


class TestFaultPlanSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, name="rt", task_failure_rate=0.2,
                         job_failure_rate=0.1,
                         job_failure_boundaries=("map", "finalize"),
                         straggler_rate=0.05, node_loss_rate=0.3,
                         max_node_losses=5, broadcast_failure_rate=0.4)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_boundaries_survive_as_tuple(self):
        plan = FaultPlan.from_dict(
            {"seed": 3, "job_failure_boundaries": ["reduce"]})
        assert plan.job_failure_boundaries == ("reduce",)

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 1, "task_failure_rte": 0.1})

    def test_seed_required(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_dict({"task_failure_rate": 0.1})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")


class TestDerivedRng:
    def test_same_label_same_stream(self):
        a = [derived_rng(42, "chan", "job", 1).random() for _ in range(5)]
        b = [derived_rng(42, "chan", "job", 1).random() for _ in range(5)]
        assert a == b

    def test_distinct_labels_distinct_streams(self):
        draws = {
            derived_rng(42, "chan", "job", incarnation).random()
            for incarnation in range(10)
        }
        assert len(draws) == 10

    def test_seed_matters(self):
        assert derived_rng(1, "x").random() != derived_rng(2, "x").random()


class TestInjectorBudgets:
    def test_incarnations_count_up(self):
        injector = FaultPlan(seed=1, task_failure_rate=0.1).arm()
        job = _JobStub("j")
        assert injector.begin_attempt(job).incarnation == 1
        assert injector.begin_attempt(job).incarnation == 2
        assert injector.begin_attempt(_JobStub("other")).incarnation == 1

    def test_job_failure_budget(self):
        injector = FaultPlan(seed=1, job_failure_rate=1.0,
                             max_job_failures=2).arm()
        assert injector.consume_job_failure("j")
        assert injector.consume_job_failure("j")
        assert not injector.consume_job_failure("j")
        assert injector.consume_job_failure("other")  # per-job budget

    def test_node_loss_considered_once(self):
        injector = FaultPlan(seed=1, node_loss_rate=1.0,
                             max_node_losses=10).arm()
        assert injector.lose_outputs(["a", "b"]) == ["a", "b"]
        # Re-materialized outputs are never re-lost: recovery converges.
        assert injector.lose_outputs(["a", "b"]) == []

    def test_node_loss_budget(self):
        injector = FaultPlan(seed=1, node_loss_rate=1.0,
                             max_node_losses=1).arm()
        assert len(injector.lose_outputs(["a", "b", "c"])) == 1

    def test_node_loss_inactive_at_zero_rate(self):
        injector = FaultPlan(seed=1, task_failure_rate=0.5).arm()
        assert injector.lose_outputs(["a"]) == []

    def test_penalties_accumulate_and_drain(self):
        injector = FaultPlan(seed=1, job_failure_rate=0.5).arm()
        injector.add_penalty("j", 4.0)
        injector.add_penalty("j", 8.0)
        assert injector.consume_penalty("j") == 12.0
        assert injector.consume_penalty("j") == 0.0


class TestJobAttempt:
    def test_task_inflater_exhausts_budget(self):
        injector = FaultPlan(seed=1, task_failure_rate=1.0).arm()
        attempt = injector.begin_attempt(_JobStub("j"))
        inflate = attempt.task_inflater(max_attempts=3,
                                        task_startup_seconds=1.0)
        with pytest.raises(TaskRetriesExhaustedError) as excinfo:
            inflate(10.0)
        assert excinfo.value.attempts == 3
        assert any("task-retries-exhausted" in event
                   for event in injector.events)

    def test_task_inflater_charges_retries(self):
        # Find a seed whose first task fails at least once but not enough
        # to exhaust a generous budget; the retry re-pays task + startup.
        injector = FaultPlan(seed=1, task_failure_rate=0.5).arm()
        attempt = injector.begin_attempt(_JobStub("j"))
        inflate = attempt.task_inflater(max_attempts=64,
                                        task_startup_seconds=1.0)
        durations = [inflate(10.0) for _ in range(50)]
        assert injector.task_retries > 0
        assert all(total >= 10.0 for total in durations)
        assert any(total > 10.0 for total in durations)
        # every inflated value is base + k * (base + startup)
        assert all((total - 10.0) % 11.0 == 0.0 for total in durations)

    def test_straggler_multiplies_duration(self):
        injector = FaultPlan(seed=1, straggler_rate=1.0,
                             straggler_factor=8.0).arm()
        attempt = injector.begin_attempt(_JobStub("j"))
        inflate = attempt.task_inflater(max_attempts=4,
                                        task_startup_seconds=1.0)
        assert inflate(10.0) == 80.0
        assert injector.stragglers == 1

    def test_boundary_kill_respects_boundary_list(self):
        plan = FaultPlan(seed=1, job_failure_rate=1.0,
                         job_failure_boundaries=("finalize",))
        injector = plan.arm()
        attempt = injector.begin_attempt(_JobStub("j"))
        attempt.boundary("map")
        attempt.boundary("reduce")
        with pytest.raises(JobFaultInjectedError) as excinfo:
            attempt.boundary("finalize")
        assert excinfo.value.boundary == "finalize"

    def test_doomed_broadcast_fails_every_attempt(self):
        plan = FaultPlan(seed=1, broadcast_failure_rate=1.0)
        injector = plan.arm()
        job = _JobStub("bjoin", broadcast=True)
        for _ in range(3):  # permanent: no incarnation escapes
            attempt = injector.begin_attempt(job)
            assert attempt.doomed
            with pytest.raises(TaskRetriesExhaustedError) as excinfo:
                attempt.boundary("map")
            assert "broadcast" in excinfo.value.detail

    def test_repartition_jobs_never_doomed(self):
        plan = FaultPlan(seed=1, broadcast_failure_rate=1.0)
        attempt = plan.arm().begin_attempt(_JobStub("rjoin"))
        assert not attempt.doomed
        attempt.boundary("map")  # does not raise


def _faulted_runtime(plan, rows=100, **cluster_overrides):
    cluster = ClusterConfig(block_size_bytes=256, task_memory_bytes=4096,
                            **cluster_overrides)
    config = DynoConfig(cluster=cluster).with_fault_plan(plan)
    return make_runtime(rows, config=config)


class TestRuntimeIntegration:
    def test_no_plan_leaves_injector_unarmed(self):
        assert make_runtime().fault_injector is None

    def test_inert_plan_leaves_injector_unarmed(self):
        runtime = _faulted_runtime(FaultPlan(seed=1))
        assert runtime.fault_injector is None

    def test_transient_job_fault_retried_with_backoff(self):
        plan = FaultPlan(seed=5, job_failure_rate=1.0, max_job_failures=1)
        runtime = _faulted_runtime(plan)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job)
        assert result.output_rows == 100  # the retry completed the job
        snap = runtime.fault_injector.snapshot()
        assert len(snap["events"]) == 1
        assert snap["job_failures"] == {"j": 1}
        # the backoff penalty was charged as extra startup time
        baseline = make_runtime().execute(
            MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA))
        backoff = runtime._retry_backoff_seconds(1)
        assert result.elapsed_seconds == pytest.approx(
            baseline.elapsed_seconds + backoff)

    def test_job_fault_reraised_after_max_attempts(self):
        plan = FaultPlan(seed=5, job_failure_rate=1.0,
                         max_job_failures=100)
        runtime = _faulted_runtime(plan, max_job_attempts=3)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        with pytest.raises(JobFaultInjectedError):
            runtime.execute(job)
        assert runtime.fault_injector.snapshot()["job_failures"] == {"j": 3}

    def test_backoff_is_capped_exponential(self):
        runtime = _faulted_runtime(
            FaultPlan(seed=1, job_failure_rate=0.5),
            job_retry_backoff_seconds=4.0,
            job_retry_backoff_cap_seconds=64.0)
        backoffs = [runtime._retry_backoff_seconds(n) for n in range(1, 8)]
        assert backoffs == [4.0, 8.0, 16.0, 32.0, 64.0, 64.0, 64.0]

    def test_suspended_faults_suppresses_injection(self):
        plan = FaultPlan(seed=5, job_failure_rate=1.0,
                         straggler_rate=1.0, task_failure_rate=0.3)
        runtime = _faulted_runtime(plan)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        with runtime.suspended_faults():
            result = runtime.execute(job)
        assert result.output_rows == 100
        snap = runtime.fault_injector.snapshot()
        assert snap["events"] == []
        assert snap["stragglers"] == 0
        assert snap["task_retries"] == 0

    def test_suspension_is_reentrant(self):
        runtime = _faulted_runtime(FaultPlan(seed=5, straggler_rate=1.0))
        with runtime.suspended_faults():
            with runtime.suspended_faults():
                assert runtime._active_injector() is None
            assert runtime._active_injector() is None
        assert runtime._active_injector() is not None


class TestConfigPlumbing:
    def test_with_fault_plan_requires_a_plan(self):
        with pytest.raises(ValueError, match="must be a FaultPlan"):
            small_config().with_fault_plan({"seed": 1})

    def test_boundaries_constant_matches_plan_default(self):
        assert FaultPlan(seed=1).job_failure_boundaries == JOB_BOUNDARIES
