"""Configuration invariants the paper's setup depends on."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    ClusterConfig,
    DynoConfig,
    ExecutorConfig,
    OptimizerConfig,
    PilotConfig,
)


class TestClusterConfig:
    def test_paper_slot_totals(self):
        cluster = ClusterConfig()
        # 14 worker nodes x 10 map / 6 reduce = the paper's 140 / 84.
        assert cluster.total_map_slots == 140
        assert cluster.total_reduce_slots == 84

    def test_job_startup_matches_paper(self):
        # Section 4.2: "could be as high as 15-20 seconds".
        assert 15.0 <= ClusterConfig().job_startup_seconds <= 20.0

    def test_rate_ordering(self):
        cluster = ClusterConfig()
        # Shuffle is the expensive path; broadcast re-reads are cached.
        assert cluster.shuffle_bytes_per_second \
            < cluster.read_bytes_per_second
        assert cluster.broadcast_read_bytes_per_second \
            > cluster.read_bytes_per_second


class TestOptimizerConfig:
    def test_paper_constant_ordering(self):
        opt = OptimizerConfig()
        # Section 5.2: crep >> cprobe > cbuild > cout.
        assert opt.crep > 3 * opt.cprobe
        assert opt.cprobe > opt.cbuild > opt.cout > 0

    def test_memory_budget_matches_runtime_budget(self):
        assert (DEFAULT_CONFIG.optimizer.max_broadcast_bytes
                == DEFAULT_CONFIG.cluster.task_memory_bytes)


class TestPilotConfig:
    def test_kmv_size_keeps_paper_error_bound(self):
        # Section 4.3: k=1024 -> ~6% distinct-value error bound.
        assert PilotConfig().kmv_size == 1024

    def test_reuse_threshold_is_a_fraction(self):
        assert 0.0 < PilotConfig().reuse_completion_threshold <= 1.0


class TestBackendSwitch:
    def test_with_backend(self):
        assert DEFAULT_CONFIG.with_backend("hive").backend == "hive"
        assert DEFAULT_CONFIG.with_backend("jaql").backend == "jaql"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_backend("flink")

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.backend = "hive"  # type: ignore[misc]

    def test_default_reoptimizes_every_job(self):
        assert DynoConfig().reoptimize_every_job


class TestExecutorConfig:
    def test_serial_by_default(self):
        assert not DEFAULT_CONFIG.executor.parallel_jobs

    def test_with_parallel_execution(self):
        config = DEFAULT_CONFIG.with_parallel_execution(
            pool="process", max_workers=3
        )
        assert config.executor.parallel_jobs
        assert config.executor.pool == "process"
        assert config.executor.max_workers == 3
        # everything else is untouched
        assert config.cluster == DEFAULT_CONFIG.cluster
        assert not DEFAULT_CONFIG.executor.parallel_jobs  # original intact

    def test_can_toggle_off(self):
        config = DEFAULT_CONFIG.with_parallel_execution()
        assert not config.with_parallel_execution(
            enabled=False
        ).executor.parallel_jobs

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(pool="fork-bomb")

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(max_workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(min_parallel_jobs=1)


class TestCalibration:
    def test_default_config_inside_paper_regime(self):
        from repro.bench.calibration import derive_ratios

        ratios = derive_ratios(DEFAULT_CONFIG.cluster)
        assert ratios.in_paper_regime() == []

    def test_violations_detected(self):
        from repro.bench.calibration import derive_ratios

        broken = ClusterConfig(shuffle_bytes_per_second=1e9)
        ratios = derive_ratios(broken)
        assert any("shuffle" in problem
                   for problem in ratios.in_paper_regime())

    def test_report_renders(self):
        from repro.bench.calibration import report

        text = report()
        assert "calibration" in text
        assert "inside the paper's regime" in text
