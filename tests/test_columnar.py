"""Columnar batch data path: byte-identity oracle and unit equivalences.

The columnar engine must be *indistinguishable* from the row engine in
everything except wall-clock time: same result rows in the same order,
same DFS block layout and byte counters, same collected statistics, same
spill accounting. These tests pin that down layer by layer (sizers,
vectorized predicates, stats ingestion) and end-to-end (execution
fingerprints across workloads, strategies, parallelism and the PR-2
fault matrix).
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.data.columns import (
    RowBatch,
    column_index,
    numpy_available,
    resolve_backend,
    to_column_array,
)
from repro.data.schema import (
    estimate_dict_size,
    estimate_dict_sizes,
    estimate_value_size,
    Schema,
    INT,
    STRING,
    FLOAT,
)
from repro.jaql.expr import And, ColumnRef, Comparison, Or, UdfPredicate
from repro.jaql.functions import Udf
from repro.jaql.vector import ColumnResolver, select, supports_vector
from repro.stats.statistics import RunningStats, composite_name
from tests.oracle import (
    ORACLE_QUERIES,
    columnar_config,
    fault_matrix,
    faulted_config,
    fingerprint,
    oracle_tables,
    run_workload,
)

# ---------------------------------------------------------------------------
# sizing identities
# ---------------------------------------------------------------------------

VALUE_ZOO = [
    {},
    {"a": 1},
    {"a": None, "b": True, "c": False},
    {"k": 1, "f": 2.5, "s": "hello", "empty": ""},
    {"nested": {"x": 1, "y": [1, 2, "three"]}, "t": (1, 2)},
    {"long.key.name": "value", "n": -(10**30)},
    {"mixed": [None, {"inner": 1}, 3.14]},
]


class TestSizers:
    def test_estimate_dict_size_matches_value_size(self):
        for row in VALUE_ZOO:
            assert estimate_dict_size(row) == estimate_value_size(row)

    def test_estimate_dict_sizes_matches_per_row(self):
        assert estimate_dict_sizes(VALUE_ZOO) == \
            [estimate_value_size(row) for row in VALUE_ZOO]

    def test_schema_bulk_sizes_match_per_row(self):
        schema = Schema.of(k=INT, s=STRING, f=FLOAT)
        rows = [
            {"k": 1, "s": "abc", "f": 1.5},
            {"k": None, "s": "", "f": 2.0},
            {"k": 7, "s": "xy", "f": None, "extra": [1, 2]},
            {},
        ]
        assert schema.estimated_row_sizes(rows) == \
            [schema.estimated_row_size(row) for row in rows]

    def test_empty_schema_bulk_sizes_are_value_sizes(self):
        # The invariant the runtime's size-reuse optimization rests on:
        # schema-free rows size identically through either estimator.
        schema = Schema(())
        assert schema.estimated_row_sizes(VALUE_ZOO) == \
            [estimate_value_size(row) for row in VALUE_ZOO]

    def test_typed_atomic_schema_sizes_are_value_sizes(self):
        # Conforming int/float/string/bool fields (plus out-of-schema
        # extras and Nones) size identically through either estimator --
        # what DFSFile.sizes_are_value_exact certifies per file.
        from repro.data.schema import BOOL
        schema = Schema.of(k=INT, f=FLOAT, s=STRING, flag=BOOL)
        assert schema.sizes_value_exact_kinds
        rows = [
            {"k": 1, "f": 2.5, "s": "hello", "flag": True},
            {"k": None, "f": None, "s": "", "flag": False},
            {"k": 7, "s": "xy", "extra": [1, {"deep": "v"}]},
            {},
        ]
        assert schema.estimated_row_sizes(rows) == estimate_dict_sizes(rows)

    def test_qualified_row_size_is_raw_plus_key_delta(self):
        # The leaf scan's O(1) size arithmetic: prefixing every key with
        # "alias." adds len(alias)+1 per key, and each key's length enters
        # the value estimator exactly once in every branch.
        from repro.jaql.expr import qualify_row
        for alias in ("t", "lineitem"):
            for row in VALUE_ZOO:
                qualified = qualify_row(alias, row)
                assert estimate_value_size(qualified) == \
                    estimate_value_size(row) + len(row) * (len(alias) + 1)

    def test_date_files_are_value_exact_only_for_canonical_strings(self):
        from repro.data.schema import DATE
        from repro.storage.dfs import DFSFile
        schema = Schema.of(d=DATE, k=INT)
        good = DFSFile("f", schema,
                       [{"d": "1997-03-15", "k": 1}, {"d": None, "k": 2}],
                       block_size_bytes=1 << 16)
        assert good.sizes_are_value_exact
        bad = DFSFile("g", schema, [{"d": "97-3-15", "k": 1}],
                      block_size_bytes=1 << 16)
        assert not bad.sizes_are_value_exact

    def test_value_exact_scan_excludes_nonconforming_files(self):
        from repro.data.schema import DATE, FieldType
        from repro.storage.dfs import DFSFile

        def file_of(schema, rows):
            return DFSFile("f", schema, rows, block_size_bytes=1 << 16)

        ok = file_of(Schema.of(k=INT, s=STRING),
                     [{"k": 1, "s": "a"}, {"k": None, "s": None}])
        assert ok.sizes_are_value_exact

        # date sizes as a fixed 10, matched only by 10-char strings.
        dated = file_of(Schema.of(d=DATE), [{"d": "1997-03-15"}])
        assert dated.sizes_are_value_exact
        short = file_of(Schema.of(d=DATE), [{"d": "97-3-15"}])
        assert not short.sizes_are_value_exact

        nested = file_of(
            Schema.of(a=FieldType.array(INT)), [{"a": [1, 2]}]
        )
        assert not nested.sizes_are_value_exact

        # a bool smuggled into an int field sizes 8 by schema, 1 by value.
        smuggled = file_of(Schema.of(k=INT), [{"k": 1}, {"k": True}])
        assert not smuggled.sizes_are_value_exact


# ---------------------------------------------------------------------------
# column batch plumbing
# ---------------------------------------------------------------------------

class TestColumnPlumbing:
    def test_column_index_is_memoized(self):
        names = ("a", "b", "c")
        assert column_index(names) is column_index(("a", "b", "c"))
        assert column_index(names) == {"a": 0, "b": 1, "c": 2}

    def test_row_batch_column_gather(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2}, {"b": "z"}]
        batch = RowBatch(rows)
        assert batch.column("a") == [1, 2, None]
        assert batch.column("b") == ["x", None, "z"]
        assert len(batch) == 3
        assert batch.ensure_sizes() == estimate_dict_sizes(rows)

    def test_to_column_array_eligibility(self):
        if not numpy_available():
            assert to_column_array([1, 2, 3]) is None
            return
        assert to_column_array([1, 2, 3]) is not None
        assert to_column_array([1.0, 2.5]) is not None
        assert to_column_array([1, 2.5]) is None          # mixed kinds
        assert to_column_array([1, None]) is None         # nulls
        assert to_column_array([True, False]) is None     # bools excluded
        assert to_column_array(["a"]) is None
        assert to_column_array([1, 10**30]) is None       # int64 overflow
        assert to_column_array([]) is None

    def test_resolve_backend(self):
        assert resolve_backend("python") is False
        assert resolve_backend("auto") == numpy_available()
        with pytest.raises(ValueError):
            resolve_backend("fortran")
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_columnar(backend="fortran")


# ---------------------------------------------------------------------------
# vectorized predicates vs row evaluation
# ---------------------------------------------------------------------------

def ref(column, steps=()):
    return ColumnRef("t", column, tuple(steps))


PREDICATE_ROWS = [
    {"t.a": 3, "t.b": 5, "t.s": "m", "t.n": {"x": 1, "l": [10, 20]}},
    {"t.a": None, "t.b": 2, "t.s": "a", "t.n": None},
    {"t.a": 7, "t.b": "oops", "t.s": None, "t.n": {"x": None}},
    {"t.a": -1, "t.b": -1, "t.s": "zz", "t.n": {"l": [5]}},
    {"t.a": 0, "t.b": None, "t.s": "", "t.n": {"x": 9, "l": []}},
]

IS_SHORT = Udf("is_short", lambda s: s is not None and len(s) <= 1)

PREDICATE_CASES = [
    Comparison(ref("a"), ">", 0),
    Comparison(ref("a"), "=", None),
    Comparison(ref("a"), "<=", ref("b")),          # TypeError row present
    Comparison(ref("s"), "!=", "m"),
    Comparison(ref("n", ["x"]), ">=", 1),          # nested dict step
    Comparison(ref("n", ["l", 0]), "<", 11),       # nested list step
    And((Comparison(ref("a"), ">", -2), Comparison(ref("b"), "<", 6))),
    Or((Comparison(ref("a"), "=", 7), Comparison(ref("s"), "=", "a"))),
    UdfPredicate(IS_SHORT, (ref("s"),)),
]


class TestVectorSelect:
    @pytest.mark.parametrize("predicate", PREDICATE_CASES,
                             ids=[p.signature() for p in PREDICATE_CASES])
    def test_matches_row_evaluation(self, predicate):
        assert supports_vector([predicate])
        batch = RowBatch(PREDICATE_ROWS)
        resolver = ColumnResolver(batch)
        got = select([predicate], resolver, len(batch))
        want = [i for i, row in enumerate(PREDICATE_ROWS)
                if predicate.evaluate(row)]
        assert got == want

    def test_conjunction_of_all_cases(self):
        batch = RowBatch(PREDICATE_ROWS)
        resolver = ColumnResolver(batch)
        got = select(PREDICATE_CASES, resolver, len(batch))
        want = [i for i, row in enumerate(PREDICATE_ROWS)
                if all(p.evaluate(row) for p in PREDICATE_CASES)]
        assert got == want

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_mask_matches_python_loop(self):
        rows = [{"t.a": value} for value in range(-50, 50)]
        rows_f = [{"t.a": value / 4} for value in range(-50, 50)]
        for dataset in (rows, rows_f):
            batch = RowBatch(dataset)

            class ArrayBatch(RowBatch):
                def array(self, name):
                    return to_column_array(self.column(name))

            arrays = ArrayBatch(dataset)
            for op in ("=", "!=", "<", "<=", ">", ">="):
                for literal in (-3, 0, 2.5, 10**20):
                    predicate = Comparison(ref("a"), op, literal)
                    plain = select([predicate],
                                   ColumnResolver(batch), len(batch))
                    masked = select(
                        [predicate],
                        ColumnResolver(arrays, use_numpy=True),
                        len(arrays),
                    )
                    assert plain == masked, (op, literal, dataset is rows_f)
                    assert all(type(i) is int for i in masked)


# ---------------------------------------------------------------------------
# statistics ingestion from columns
# ---------------------------------------------------------------------------

class TestStatsFromColumns:
    def test_merge_all_matches_pairwise_fold(self):
        import random

        rng = random.Random(6)
        columns = ["a", "b", composite_name(["a", "b"])]
        partials = []
        for _ in range(7):
            running = RunningStats(columns, kmv_size=16)
            rows = [
                {
                    "a": rng.choice([None, rng.randrange(40)]),
                    "b": rng.choice([None, "x", "y", "zz", 3, 2.5]),
                }
                for _ in range(rng.randrange(1, 30))
            ]
            sizes = estimate_dict_sizes(rows)
            running.update_batch(rows, sizes)
            partials.append(running)

        folded = partials[0]
        for partial in partials[1:]:
            folded = folded.merge(partial)
        merged = RunningStats.merge_all(partials)

        left, right = folded.freeze(), merged.freeze()
        assert left.row_count == right.row_count
        assert left.size_bytes == right.size_bytes
        assert left.columns == right.columns

    def test_update_columns_matches_update_batch(self):
        rows = [
            {"k": 1, "g": "a", "v": 1.5},
            {"k": 2, "g": "a", "v": None},
            {"k": None, "g": None, "v": 2.5},
            {"k": 2, "g": "b", "v": 0.0},
        ]
        sizes = estimate_dict_sizes(rows)
        columns = ["k", "g", composite_name(["k", "g"])]
        by_rows = RunningStats(columns)
        by_rows.update_batch(rows, sizes)
        by_cols = RunningStats(columns)
        by_cols.update_columns(RowBatch(rows), len(rows), sizes)

        left, right = by_rows.freeze(), by_cols.freeze()
        assert left.row_count == right.row_count
        assert left.size_bytes == right.size_bytes
        assert left.columns == right.columns


# ---------------------------------------------------------------------------
# end-to-end byte identity: row engine vs columnar engine
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tables():
    return oracle_tables()


class TestColumnarFingerprints:
    @pytest.mark.parametrize("query", sorted(ORACLE_QUERIES))
    def test_serial_identical(self, tables, query):
        row_dyno, row_exec = run_workload(tables, query)
        col_dyno, col_exec = run_workload(tables, query,
                                          config=columnar_config())
        assert fingerprint(row_dyno, row_exec) == \
            fingerprint(col_dyno, col_exec)

    @pytest.mark.parametrize("query", ["Q8'", "Q10"])
    def test_parallel_identical(self, tables, query):
        row_dyno, row_exec = run_workload(
            tables, query, config=DEFAULT_CONFIG.with_parallel_execution())
        col_dyno, col_exec = run_workload(
            tables, query, config=columnar_config(parallel=True))
        assert fingerprint(row_dyno, row_exec) == \
            fingerprint(col_dyno, col_exec)

    @pytest.mark.parametrize("plan", fault_matrix(),
                             ids=[plan.name for plan in fault_matrix()])
    @pytest.mark.parametrize("query", ["Q8'", "Q10"])
    def test_fault_matrix_identical(self, tables, plan, query):
        row_dyno, row_exec = run_workload(
            tables, query, config=faulted_config(plan))
        col_dyno, col_exec = run_workload(
            tables, query,
            config=faulted_config(plan, base=DEFAULT_CONFIG.with_columnar()))
        assert fingerprint(row_dyno, row_exec) == \
            fingerprint(col_dyno, col_exec)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_backends_identical(self, tables):
        py_dyno, py_exec = run_workload(
            tables, "Q8'",
            config=DEFAULT_CONFIG.with_columnar(backend="python"))
        np_dyno, np_exec = run_workload(
            tables, "Q8'",
            config=DEFAULT_CONFIG.with_columnar(backend="numpy"))
        assert fingerprint(py_dyno, py_exec) == \
            fingerprint(np_dyno, np_exec)


SPILL_SQL = """
    SELECT o.o_orderkey AS okey, c.c_name AS cname
    FROM orders o, customer c
    WHERE o.o_custkey = c.c_custkey
"""


class TestColumnarSpillParity:
    """Hybrid-join spill: identical spill-byte accounting per engine."""

    def run(self, tables, columnar):
        config = DEFAULT_CONFIG.with_memory(task_memory_bytes=8192)
        if columnar:
            config = config.with_columnar()
        dyno = Dyno(tables, config=config)
        spec = dyno.parse(SPILL_SQL, name="QSPILL")
        execution = dyno.execute(spec, mode="dynopt", strategy="UNC-1")
        return dyno, execution

    def test_spill_accounting_identical(self, tpch_tables):
        row_dyno, row_exec = self.run(tpch_tables, columnar=False)
        col_dyno, col_exec = self.run(tpch_tables, columnar=True)
        assert row_dyno.dfs.spill_bytes_written > 0
        assert col_dyno.dfs.spill_bytes_written == \
            row_dyno.dfs.spill_bytes_written
        assert col_dyno.dfs.spill_bytes_read == \
            row_dyno.dfs.spill_bytes_read
        assert fingerprint(row_dyno, row_exec) == \
            fingerprint(col_dyno, col_exec)
