"""Property-based tests for the KMV synopsis (seeded random, no deps).

The synopsis carries the optimizer's distinct-value estimates (Section
4.3), so its algebra must be exact: ``add_all`` must equal repeated
``add``, ``merge`` must be a commutative/associative union, and the
estimator must stay inside the paper's error bound. Properties are
checked over 100 randomly generated datasets from a fixed seed -- the
same spirit as hypothesis, without the dependency.
"""

import random

import pytest

from repro.stats.kmv import HASH_DOMAIN, KMVSynopsis, kmv_hash

SEED = 20140622
DATASETS = 100


def random_dataset(rng):
    """A value stream with a random shape: size, duplication, type mix."""
    size = rng.randrange(0, 2000)
    distinct = rng.randrange(1, max(2, size + 1))
    kind = rng.choice(("int", "str", "mixed", "tuple"))
    universe = []
    for index in range(distinct):
        if kind == "int" or (kind == "mixed" and index % 2 == 0):
            universe.append(rng.randrange(-(10 ** 6), 10 ** 6))
        elif kind == "tuple":
            universe.append((rng.randrange(1000), f"k{index}"))
        else:
            universe.append(f"value-{rng.randrange(10 ** 6)}")
    values = [rng.choice(universe) for _ in range(size)]
    if rng.random() < 0.3:
        values.extend([None] * rng.randrange(1, 5))  # nulls are skipped
        rng.shuffle(values)
    return values


def datasets():
    rng = random.Random(SEED)
    return [(index, random_dataset(rng), rng.choice((2, 3, 16, 64, 1024)))
            for index in range(DATASETS)]


def filled(values, k):
    synopsis = KMVSynopsis(k)
    synopsis.add_all(values)
    return synopsis


@pytest.mark.parametrize("index,values,k", datasets(),
                         ids=lambda case: str(case) if isinstance(case, int)
                         else "")
class TestKMVProperties:
    def test_add_all_equals_repeated_add(self, index, values, k):
        bulk = filled(values, k)
        one_by_one = KMVSynopsis(k)
        for value in values:
            one_by_one.add(value)
        assert bulk.snapshot() == one_by_one.snapshot()
        assert bulk.estimate() == one_by_one.estimate()

    def test_merge_commutes(self, index, values, k):
        split = len(values) // 2
        left, right = filled(values[:split], k), filled(values[split:], k)
        assert left.merge(right).snapshot() == \
            right.merge(left).snapshot()

    def test_merge_associates(self, index, values, k):
        third = max(1, len(values) // 3)
        a = filled(values[:third], k)
        b = filled(values[third:2 * third], k)
        c = filled(values[2 * third:], k)
        assert a.merge(b).merge(c).snapshot() == \
            a.merge(b.merge(c)).snapshot()

    def test_merge_equals_union_stream(self, index, values, k):
        """Partial synopses unioned at the client (Section 4.3) must give
        the same synopsis as one task seeing the whole stream."""
        split = len(values) // 2
        merged = filled(values[:split], k).merge(filled(values[split:], k))
        assert merged.snapshot() == filled(values, k).snapshot()

    def test_below_saturation_estimate_is_exact(self, index, values, k):
        synopsis = filled(values, k)
        true_distinct = len({kmv_hash(v) for v in values if v is not None})
        if not synopsis.is_saturated:
            assert synopsis.estimate() == float(true_distinct)
        else:
            assert true_distinct >= k


class TestEstimatorErrorBound:
    def test_error_within_paper_bound_at_k_1024(self):
        """With k=1024 the expected error is ~1/sqrt(k-2) ~ 3%; the paper
        quotes <= 6%. Allow 3 sigma over 20 seeded trials."""
        rng = random.Random(SEED)
        k = 1024
        for _ in range(20):
            true_distinct = rng.randrange(10 ** 4, 10 ** 5)
            synopsis = KMVSynopsis(k)
            base = rng.randrange(10 ** 9)
            synopsis.add_all(range(base, base + true_distinct))
            error = abs(synopsis.estimate() - true_distinct) / true_distinct
            assert error < 0.10, (
                f"estimate off by {error:.1%} for n={true_distinct}")

    def test_duplicates_do_not_inflate_estimate(self):
        synopsis = KMVSynopsis(16)
        synopsis.add_all([7] * 10_000)
        assert synopsis.estimate() == 1.0

    def test_empty_estimates_zero(self):
        assert KMVSynopsis(16).estimate() == 0.0

    def test_domain_constant_is_64_bit(self):
        assert HASH_DOMAIN == (1 << 64) - 1
        assert 0 <= kmv_hash("anything") <= HASH_DOMAIN
