"""Compiler/runtime conservation properties over real workload plans."""

import pytest

from repro.cluster.counters import Counters
from repro.core.baselines import oracle_leaf_stats
from repro.jaql.compiler import PlanCompiler
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q7, q8_prime, q9_prime, q10

WORKLOAD_FACTORIES = [q7, q8_prime, q9_prime, q10]


def compile_and_run(dyno, workload):
    extracted = dyno.prepare(workload.final_spec)
    stats = oracle_leaf_stats(dyno.tables, extracted.block)
    plan = JoinOptimizer(extracted.block, stats,
                         dyno.config.optimizer).optimize().plan
    compiler = PlanCompiler(dyno.dfs, dyno.config, "prop")
    graph = compiler.compile_block(plan)
    results = {}
    completed = set()
    while len(completed) < graph.job_count:
        for compiled in graph.leaf_jobs(completed):
            results[compiled.name] = dyno.runtime.execute(compiled.job)
            completed.add(compiled.name)
    return extracted, plan, graph, results


@pytest.mark.parametrize("factory", WORKLOAD_FACTORIES)
class TestConservation:
    def test_output_counters_match_dfs(self, dyno_factory, factory):
        workload = factory()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph, results = compile_and_run(dyno, workload)
        for name, result in results.items():
            counted = result.counters.get("output", Counters.OUTPUT_RECORDS)
            assert counted == result.output_rows
            assert (dyno.dfs.open(result.output_name).row_count
                    == result.output_rows)
            assert (dyno.dfs.file_size(result.output_name)
                    == result.output_bytes)

    def test_map_input_covers_all_splits(self, dyno_factory, factory):
        workload = factory()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph, results = compile_and_run(dyno, workload)
        for compiled in graph.jobs:
            result = results[compiled.name]
            expected = sum(
                dyno.dfs.file_size(name) for name in compiled.job.inputs
            )
            assert result.counters.get(
                "map", Counters.MAP_INPUT_BYTES) == expected

    def test_shuffle_only_on_reduce_jobs(self, dyno_factory, factory):
        workload = factory()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph, results = compile_and_run(dyno, workload)
        for compiled in graph.jobs:
            result = results[compiled.name]
            shuffle = result.counters.get("reduce", Counters.SHUFFLE_BYTES)
            if compiled.job.is_map_only:
                assert shuffle == 0
                assert result.reduce_task_seconds == []
            else:
                assert len(result.reduce_task_seconds) == \
                    compiled.job.num_reducers

    def test_task_durations_are_positive(self, dyno_factory, factory):
        workload = factory()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, _, results = compile_and_run(dyno, workload)
        for result in results.values():
            assert all(seconds > 0 for seconds in result.map_task_seconds)
            assert all(seconds > 0
                       for seconds in result.reduce_task_seconds)

    def test_intermediate_rows_stay_qualified(self, dyno_factory, factory):
        """Every field of every intermediate row is alias-qualified, so
        substitution into the join block never needs renaming."""
        workload = factory()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted, _, graph, results = compile_and_run(dyno, workload)
        aliases = extracted.block.aliases
        for compiled in graph.jobs:
            rows = dyno.dfs.read_all(results[compiled.name].output_name)
            for row in rows[:20]:
                for field in row:
                    alias, _, rest = field.partition(".")
                    assert alias in aliases and rest, field
