"""The differential fault oracle (see tests/oracle.py).

Acceptance sweep: every workload query x every dynamic execution strategy
x every fault plan in the standard matrix must produce results and
statistics identical to the fault-free run -- faults may only cost
simulated time. Plus: determinism (same seed => same event sequence),
parallel/serial equivalence under faults, and dedicated scenario tests
for node-loss recovery and retries-exhausted-then-replan.
"""

from __future__ import annotations

import pytest

from tests.oracle import (
    ORACLE_QUERIES,
    ORACLE_STRATEGIES,
    SKEWED_ORACLE_QUERIES,
    fault_matrix,
    fault_visible_diff,
    faulted_config,
    fingerprint,
    oracle_tables,
    plan_named,
    run_workload,
    skewed_oracle_tables,
)

PLAN_NAMES = [plan.name for plan in fault_matrix()]


@pytest.fixture(scope="module")
def tables():
    return oracle_tables()


@pytest.fixture(scope="module")
def baseline_cache():
    """Fault-free fingerprints, computed once per (query, strategy)."""
    return {}


def baseline_fingerprint(tables, cache, query, strategy):
    key = (query, strategy)
    if key not in cache:
        dyno, execution = run_workload(tables, query, strategy)
        cache[key] = fingerprint(dyno, execution)
    return cache[key]


class TestFaultMatrixOracle:
    @pytest.mark.parametrize("plan_name", PLAN_NAMES)
    @pytest.mark.parametrize("strategy", ORACLE_STRATEGIES)
    @pytest.mark.parametrize("query", ORACLE_QUERIES)
    def test_fault_schedule_is_result_invisible(
            self, tables, baseline_cache, query, strategy, plan_name):
        baseline = baseline_fingerprint(tables, baseline_cache, query,
                                        strategy)
        plan = plan_named(plan_name)
        dyno, execution = run_workload(tables, query, strategy,
                                       config=faulted_config(plan))
        faulted = fingerprint(dyno, execution)
        diff = fault_visible_diff(baseline, faulted)
        assert not diff, (
            f"fault plan {plan_name!r} changed {query}/{strategy}: {diff}")

    def test_every_plan_in_matrix_actually_injects(self, tables):
        """Guards against a vacuous oracle: each plan must do *something*
        across the workload sweep (events, retries or stragglers)."""
        for plan in fault_matrix():
            total_activity = 0
            for query in ORACLE_QUERIES:
                dyno, _ = run_workload(tables, query, "UNC-1",
                                       config=faulted_config(plan))
                snap = dyno.runtime.fault_injector.snapshot()
                total_activity += (len(snap["events"]) +
                                   snap["task_retries"] +
                                   snap["stragglers"])
            assert total_activity > 0, (
                f"fault plan {plan.name!r} injected nothing anywhere")


@pytest.fixture(scope="module")
def skew_tables():
    return skewed_oracle_tables()


@pytest.fixture(scope="module")
def skew_baselines(skew_tables):
    """Fault-free skewed fingerprints; asserts the plans use skew joins."""
    from repro.optimizer.plans import summarize_plan

    baselines = {}
    for query in SKEWED_ORACLE_QUERIES:
        dyno, execution = run_workload(skew_tables, query, "UNC-1")
        skew_joins = sum(summarize_plan(plan).skew_joins
                         for block in execution.block_results
                         for plan in block.plans)
        assert skew_joins >= 1, (
            f"{query}: skewed oracle baseline chose no skew join -- the "
            "fault legs below would not exercise the SKEWJOIN runtime")
        baselines[query] = fingerprint(dyno, execution)
    return baselines


class TestSkewJoinFaultMatrix:
    """SKEWJOIN legs: task kills, stragglers, node losses, broadcast
    dooms and the chaos mix over the hot-key workloads -- plus mid-job
    replans firing *while* faults are being injected -- must all be
    byte-identical to the fault-free skewed baseline."""

    @pytest.mark.parametrize("plan_name", PLAN_NAMES)
    @pytest.mark.parametrize("query", SKEWED_ORACLE_QUERIES)
    def test_fault_schedule_is_result_invisible(
            self, skew_tables, skew_baselines, query, plan_name):
        plan = plan_named(plan_name)
        dyno, execution = run_workload(skew_tables, query, "UNC-1",
                                       config=faulted_config(plan))
        faulted = fingerprint(dyno, execution)
        diff = fault_visible_diff(skew_baselines[query], faulted)
        assert not diff, (
            f"fault plan {plan_name!r} changed skewed {query}: {diff}")

    @pytest.mark.parametrize("query", SKEWED_ORACLE_QUERIES)
    def test_midjob_replan_in_flight_under_chaos(
            self, skew_tables, skew_baselines, query):
        """Arm the mid-job replan trigger at its floor (fires after every
        audited job) *and* the chaos fault plan: replans racing faults
        must still be result-invisible."""
        plan = plan_named("chaos")
        config = faulted_config(plan).with_midjob_trigger(1.0)
        dyno, execution = run_workload(skew_tables, query, "UNC-1",
                                       config=config)
        fired = [name for block in execution.block_results
                 for name in block.midjob_replans]
        if query == "SkewFunnel":
            # Multi-join block: the first join's audit fires with the
            # second still pending. (SkewJoin's block is a single-job
            # graph -- nothing is ever pending mid-graph, so the trigger
            # correctly stays silent there.)
            assert fired, "threshold 1.0 should trigger mid-graph"
        diff = fault_visible_diff(skew_baselines[query],
                                  fingerprint(dyno, execution))
        assert not diff, (
            f"mid-job replans under chaos changed skewed {query}: {diff}")

    def test_skew_parallel_columnar_identical_under_chaos(self,
                                                          skew_tables):
        plan = plan_named("chaos")
        runs = []
        for parallel in (False, True):
            config = faulted_config(plan, parallel=parallel).with_columnar()
            dyno, execution = run_workload(skew_tables, "SkewJoin",
                                           "UNC-1", config=config)
            runs.append((fingerprint(dyno, execution),
                         dyno.runtime.fault_injector.snapshot()))
        assert runs[0] == runs[1]


class TestDeterminism:
    def test_same_seed_reproduces_same_event_sequence(self, tables):
        plan = plan_named("chaos")
        runs = []
        for _ in range(2):
            dyno, execution = run_workload(tables, "Q7", "CHEAP-2",
                                           config=faulted_config(plan))
            runs.append((dyno.runtime.fault_injector.snapshot(),
                         fingerprint(dyno, execution),
                         execution.total_seconds))
        first, second = runs
        assert first[0] == second[0]  # identical fault event sequence
        assert first[1] == second[1]
        assert first[2] == second[2]  # even simulated time is reproducible

    def test_different_seed_differs(self, tables):
        from dataclasses import replace
        plan = plan_named("chaos")
        other = replace(plan, seed=plan.seed + 1)
        d1, _ = run_workload(tables, "Q7", "UNC-1",
                             config=faulted_config(plan))
        d2, _ = run_workload(tables, "Q7", "UNC-1",
                             config=faulted_config(other))
        assert (d1.runtime.fault_injector.snapshot()
                != d2.runtime.fault_injector.snapshot())


class TestParallelUnderFaults:
    def test_parallel_byte_identical_to_serial_under_same_plan(self,
                                                               tables):
        plan = plan_named("chaos")
        serial_dyno, serial = run_workload(
            tables, "Q8'", "UNC-2", config=faulted_config(plan))
        parallel_dyno, parallel = run_workload(
            tables, "Q8'", "UNC-2",
            config=faulted_config(plan, parallel=True))
        assert fingerprint(serial_dyno, serial) == \
            fingerprint(parallel_dyno, parallel)
        # The fault draws are order-independent (blake2b-derived per job
        # incarnation), so even the *time* accounting is identical.
        assert serial.total_seconds == parallel.total_seconds
        assert (serial_dyno.runtime.fault_injector.snapshot()
                == parallel_dyno.runtime.fault_injector.snapshot())


class TestRequiredScenarios:
    def test_node_loss_of_materialized_output_recovers(self, tables):
        plan = plan_named("node-loss")
        dyno, execution = run_workload(tables, "Q10", "UNC-1",
                                       config=faulted_config(plan))
        lost = [name for block in execution.block_results
                for name in block.lost_outputs]
        recovered = [name for block in execution.block_results
                     for name in block.recovered_jobs]
        assert lost, "node-loss plan deleted no materialized output"
        assert recovered, "lost outputs were never re-materialized"
        snap = dyno.runtime.fault_injector.snapshot()
        assert snap["node_losses"] == len(lost)

    def test_retries_exhausted_then_replan(self, tables):
        plan = plan_named("task-flaky")
        dyno, execution = run_workload(tables, "Q10", "UNC-1",
                                       config=faulted_config(plan))
        replanned = [entry for block in execution.block_results
                     for entry in block.replanned_failures]
        assert any("TaskRetriesExhaustedError" in entry
                   for entry in replanned), (
            "expected at least one job to exhaust task retries and be "
            f"replanned; got {replanned}")
        assert execution.rows  # and the query still completed
