"""CORDS-style correlation discovery rediscovers the injected pairs."""

import random

from repro.data.schema import INT, Schema
from repro.data.table import Table
from repro.workloads.cords import discover_correlations


class TestDiscovery:
    def test_finds_orders_zone_region_dependency(self, tpch_tables):
        findings = discover_correlations(
            tpch_tables["orders"],
            columns=["o_orderzone", "o_orderregion", "o_orderstatus",
                     "o_orderpriority"],
        )
        best = {(f.x, f.y) for f in findings
                if f.is_soft_functional_dependency}
        assert ("o_orderzone", "o_orderregion") in best

    def test_independent_columns_not_flagged(self, tpch_tables):
        findings = discover_correlations(
            tpch_tables["orders"],
            columns=["o_orderstatus", "o_orderpriority"],
        )
        assert findings == []

    def test_restaurant_zip_state(self, restaurant_tables):
        findings = discover_correlations(
            restaurant_tables["restaurant"],
            columns=["zip", "state"],
            value_of=lambda row, name: row["addr"][0][name],
        )
        assert any(f.x == "zip" and f.y == "state"
                   and f.is_soft_functional_dependency
                   for f in findings)

    def test_synthetic_perfect_dependency(self):
        rng = random.Random(3)
        rows = []
        for _ in range(800):
            x = rng.randrange(20)
            rows.append({"x": x, "y": x // 5, "z": rng.randrange(4)})
        table = Table("t", Schema.of(x=INT, y=INT, z=INT), rows)
        findings = discover_correlations(table)
        pairs = {(f.x, f.y): f for f in findings}
        assert ("x", "y") in pairs
        assert pairs[("x", "y")].functional_strength == 1.0
        assert ("x", "z") not in pairs

    def test_near_key_columns_skipped(self):
        rows = [{"id": i, "cat": i % 3} for i in range(2000)]
        table = Table("t", Schema.of(id=INT, cat=INT), rows)
        findings = discover_correlations(table, max_distinct=100)
        assert all("id" not in (f.x, f.y) for f in findings)

    def test_nulls_ignored(self):
        rows = [{"x": i % 5 if i % 2 else None, "y": (i % 5) * 10
                 if i % 2 else None} for i in range(600)]
        table = Table("t", Schema.of(x=INT, y=INT), rows)
        findings = discover_correlations(table)
        assert any((f.x, f.y) == ("x", "y") for f in findings)

    def test_describe_mentions_kind(self):
        rng = random.Random(3)
        rows = [{"x": v, "y": v} for v in
                (rng.randrange(10) for _ in range(500))]
        table = Table("t", Schema.of(x=INT, y=INT), rows)
        findings = discover_correlations(table)
        assert findings
        assert "FD" in findings[0].describe() or \
            "correlated" in findings[0].describe()

    def test_deterministic_given_seed(self, tpch_tables):
        kwargs = dict(columns=["o_orderzone", "o_orderregion"], seed=5)
        first = discover_correlations(tpch_tables["orders"], **kwargs)
        second = discover_correlations(tpch_tables["orders"], **kwargs)
        assert [(f.x, f.y, f.phi_squared) for f in first] == \
            [(f.x, f.y, f.phi_squared) for f in second]
