"""TPC-H generator: cardinalities, integrity, injected correlations."""

import pytest

from repro.data.tpch import (
    BASE_CARDINALITIES,
    PAPER_SCALE_FACTORS,
    ZIP_STATES,
    generate_tpch,
    order_zone_region,
    scaled_cardinality,
)


class TestCardinalities:
    def test_fixed_tables(self, tpch):
        assert len(tpch["region"]) == 5
        assert len(tpch["nation"]) == 25

    def test_scaling_ratios(self, tpch):
        sf = tpch.scale_factor
        for name in ("supplier", "customer", "part", "orders", "lineitem"):
            expected = max(1, round(BASE_CARDINALITIES[name] * sf))
            assert len(tpch[name]) == expected

    def test_partsupp_is_four_per_part(self, tpch):
        assert len(tpch["partsupp"]) == 4 * len(tpch["part"])

    def test_scaled_cardinality_region_is_constant(self):
        assert scaled_cardinality("region", 100.0) == 5

    def test_paper_scale_factors_keep_ratio(self):
        values = [PAPER_SCALE_FACTORS[sf] for sf in (100, 300, 1000)]
        assert values[1] / values[0] == pytest.approx(3.0)
        assert values[2] / values[0] == pytest.approx(10.0)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_tpch(0.01, seed=5)
        b = generate_tpch(0.01, seed=5)
        assert a["orders"].rows == b["orders"].rows

    def test_different_seed_differs(self):
        a = generate_tpch(0.01, seed=5)
        b = generate_tpch(0.01, seed=6)
        assert a["orders"].rows != b["orders"].rows


class TestReferentialIntegrity:
    def test_nation_region_keys(self, tpch):
        region_keys = {row["r_regionkey"] for row in tpch["region"]}
        assert all(row["n_regionkey"] in region_keys
                   for row in tpch["nation"])

    def test_customer_nation_keys(self, tpch):
        nation_keys = {row["n_nationkey"] for row in tpch["nation"]}
        assert all(row["c_nationkey"] in nation_keys
                   for row in tpch["customer"])

    def test_orders_reference_customers(self, tpch):
        customer_keys = {row["c_custkey"] for row in tpch["customer"]}
        assert all(row["o_custkey"] in customer_keys
                   for row in tpch["orders"])

    def test_lineitem_references(self, tpch):
        order_keys = {row["o_orderkey"] for row in tpch["orders"]}
        part_keys = {row["p_partkey"] for row in tpch["part"]}
        supp_keys = {row["s_suppkey"] for row in tpch["supplier"]}
        for row in tpch["lineitem"].rows:
            assert row["l_orderkey"] in order_keys
            assert row["l_partkey"] in part_keys
            assert row["l_suppkey"] in supp_keys

    def test_lineitem_pairs_exist_in_partsupp(self, tpch):
        pairs = {(row["ps_partkey"], row["ps_suppkey"])
                 for row in tpch["partsupp"]}
        assert all((row["l_partkey"], row["l_suppkey"]) in pairs
                   for row in tpch["lineitem"])


class TestInjectedCorrelation:
    def test_zone_determines_region(self, tpch):
        mapping = {}
        for row in tpch["orders"].rows:
            zone = row["o_orderzone"]
            region = row["o_orderregion"]
            assert mapping.setdefault(zone, region) == region

    def test_zone_region_helper_consistent(self):
        zone, region = order_zone_region(3)
        assert zone == "Z03"
        assert region == "NORTH"
        zone, region = order_zone_region(7)
        assert region == "SOUTH"

    def test_dates_are_iso_and_in_range(self, tpch):
        for row in tpch["orders"].rows[:200]:
            date = row["o_orderdate"]
            assert len(date) == 10 and date[4] == "-" and date[7] == "-"
            assert "1992-01-01" <= date <= "1998-12-31"


class TestRestaurants:
    def test_zip_determines_state(self, restaurant_tables):
        for row in restaurant_tables["restaurant"].rows:
            for address in row["addr"]:
                assert ZIP_STATES[address["zip"]] == address["state"]

    def test_reviews_reference_restaurants(self, restaurant_tables):
        ids = {row["id"] for row in restaurant_tables["restaurant"]}
        assert all(row["rsid"] in ids
                   for row in restaurant_tables["review"])

    def test_reviews_reference_tweets(self, restaurant_tables):
        tweet_ids = {row["id"] for row in restaurant_tables["tweet"]}
        assert all(row["tid"] in tweet_ids
                   for row in restaurant_tables["review"])

    def test_positive_reviews_have_high_stars(self, restaurant_tables):
        from repro.jaql.functions import sentanalysis

        for row in restaurant_tables["review"].rows:
            if sentanalysis(row["text"]):
                assert row["stars"] >= 4
