"""Execution strategies: ordering and parallelism choices (Section 5.3)."""

import pytest

from repro.core.strategies import STRATEGIES, ExecutionStrategy, strategy_named
from repro.errors import PlanError
from repro.jaql.compiler import CompiledJob


class _FakeJob:
    def __init__(self, name):
        self.name = name


def job(name, cost, joins):
    return CompiledJob(
        job=_FakeJob(name),
        depends_on=[],
        output_aliases=frozenset((name,)),
        applied_predicates=(),
        join_count=joins,
        estimated_cost=cost,
        estimated_rows=0.0,
    )


READY = [
    job("cheap_certain", cost=10.0, joins=1),
    job("cheap_uncertain", cost=20.0, joins=3),
    job("pricey_uncertain", cost=90.0, joins=3),
    job("pricey_certain", cost=100.0, joins=1),
]


class TestChoices:
    def test_cheap1(self):
        chosen = strategy_named("CHEAP-1").choose(READY)
        assert [c.name for c in chosen] == ["cheap_certain"]

    def test_cheap2(self):
        chosen = strategy_named("CHEAP-2").choose(READY)
        assert [c.name for c in chosen] == ["cheap_certain",
                                            "cheap_uncertain"]

    def test_unc1_prefers_most_joins_then_cheapest(self):
        chosen = strategy_named("UNC-1").choose(READY)
        assert [c.name for c in chosen] == ["cheap_uncertain"]

    def test_unc2(self):
        chosen = strategy_named("UNC-2").choose(READY)
        assert [c.name for c in chosen] == ["cheap_uncertain",
                                            "pricey_uncertain"]

    def test_simple_so_takes_first_in_compilation_order(self):
        chosen = strategy_named("SIMPLE_SO").choose(READY)
        assert [c.name for c in chosen] == ["cheap_certain"]

    def test_simple_mo_takes_all(self):
        chosen = strategy_named("SIMPLE_MO").choose(READY)
        assert len(chosen) == len(READY)

    def test_empty_ready_list(self):
        for strategy in STRATEGIES.values():
            assert strategy.choose([]) == []

    def test_parallelism_caps_at_available(self):
        chosen = strategy_named("UNC-2").choose(READY[:1])
        assert len(chosen) == 1

    def test_ties_break_by_name_deterministically(self):
        tied = [job("b", 5.0, 2), job("a", 5.0, 2)]
        chosen = strategy_named("CHEAP-1").choose(tied)
        assert chosen[0].name == "a"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PlanError):
            strategy_named("GREEDY-9")

    def test_unknown_priority_rejected(self):
        bogus = ExecutionStrategy("x", "entropy", 1)
        with pytest.raises(PlanError):
            bogus.choose(READY)

    def test_registry_matches_paper_strategy_set(self):
        # The paper's Figure 5 strategies plus "ALL" (all ready jobs at
        # once under the dynamic executor, used by the fault oracle).
        assert set(STRATEGIES) == {
            "UNC-1", "UNC-2", "CHEAP-1", "CHEAP-2",
            "SIMPLE_SO", "SIMPLE_MO", "ALL",
        }
