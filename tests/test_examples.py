"""Smoke tests: every example script runs end to end."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("module_name", [
    "quickstart",
    "restaurant_reviews",
    "adaptive_replanning",
    "hive_backend",
    "custom_workload",
    "log_analysis",
])
def test_example_runs(module_name, capsys):
    module = importlib.import_module(module_name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{module_name} produced no output"
