"""UDF registry and tunable-selectivity UDFs."""

import pytest

from repro.errors import PlanError
from repro.jaql.functions import (
    Udf,
    UdfCallCounter,
    UdfRegistry,
    checkid,
    default_registry,
    make_pair_udf,
    make_selective_udf,
    sentanalysis,
)


class TestRegistry:
    def test_register_and_get(self):
        registry = UdfRegistry()
        udf = registry.register(Udf("f", lambda v: True))
        assert registry.get("f") is udf
        assert "f" in registry
        assert registry.names() == ["f"]

    def test_duplicate_rejected_unless_replace(self):
        registry = UdfRegistry()
        registry.register(Udf("f", lambda v: True))
        with pytest.raises(PlanError):
            registry.register(Udf("f", lambda v: False))
        registry.register(Udf("f", lambda v: False), replace=True)
        assert not registry.get("f")(1)

    def test_unknown_rejected(self):
        with pytest.raises(PlanError):
            UdfRegistry().get("ghost")

    def test_default_registry_has_paper_udfs(self):
        registry = default_registry()
        assert "sentanalysis" in registry
        assert "checkid" in registry


class TestPaperUdfs:
    def test_sentanalysis(self):
        assert sentanalysis("the food was amazing")
        assert not sentanalysis("the food was bland")
        assert not sentanalysis(None)
        assert not sentanalysis(42)

    def test_checkid(self):
        assert checkid(True, 4)
        assert not checkid(False, 4)
        assert not checkid(True, 1)
        assert not checkid(True, None)


class TestSelectiveUdfs:
    def test_selectivity_converges(self):
        udf = make_selective_udf("sel20", 0.2)
        hits = sum(1 for value in range(20000) if udf(value))
        assert hits / 20000 == pytest.approx(0.2, abs=0.02)

    def test_deterministic(self):
        first = make_selective_udf("d", 0.5)
        second = make_selective_udf("d", 0.5)
        assert [first(v) for v in range(100)] == \
            [second(v) for v in range(100)]

    def test_extremes(self):
        never = make_selective_udf("never", 0.0)
        always = make_selective_udf("always", 1.0)
        assert not any(never(v) for v in range(200))
        assert all(always(v) for v in range(200))

    def test_salt_decorrelates(self):
        left = make_selective_udf("x", 0.5, salt="a")
        right = make_selective_udf("x", 0.5, salt="b")
        agreements = sum(1 for v in range(5000) if left(v) == right(v))
        assert agreements / 5000 == pytest.approx(0.5, abs=0.05)

    def test_version_encodes_parameters(self):
        udf = make_selective_udf("v", 0.25, salt="s1")
        assert "0.25" in udf.version and "s1" in udf.version

    def test_invalid_selectivity_rejected(self):
        with pytest.raises(PlanError):
            make_selective_udf("bad", 1.5)
        with pytest.raises(PlanError):
            make_pair_udf("bad", -0.1)

    def test_pair_udf_uses_both_arguments(self):
        udf = make_pair_udf("pair", 0.5)
        outcomes = {udf(a, b) for a in range(20) for b in range(20)}
        assert outcomes == {True, False}
        # Flipping one argument changes the outcome for some pairs.
        flips = sum(1 for v in range(1000) if udf(v, 0) != udf(v, 1))
        assert flips > 100


class TestCallCounter:
    def test_counts_calls_and_acceptance(self):
        counter = UdfCallCounter(make_selective_udf("c", 0.3))
        wrapped = counter.wrapped()
        for value in range(1000):
            wrapped(value)
        assert counter.calls == 1000
        assert counter.observed_selectivity == pytest.approx(0.3, abs=0.06)

    def test_wrapped_is_cached(self):
        counter = UdfCallCounter(make_selective_udf("c2", 0.5))
        assert counter.wrapped() is counter.wrapped()
