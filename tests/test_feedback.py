"""The workload feedback loop: corrections, pilot tuning, regret.

Three layers of evidence:

* **property** -- against a synthetic estimator with a constant
  multiplicative bias, the learned correction drives the q-error from
  the bias toward 1.0 (within the quantization step);
* **differential** -- feedback changes *plans*, never *rows*: with the
  loop on, every oracle query returns byte-identical results to a
  feedback-off run, on the first run and on the corrected re-run;
* **integration** -- a service-shared store ingests audits from
  concurrent drivers, q-error improves batch over batch, and pilot
  escalation forces re-pilots with boosted sample sizes.
"""

import math

import pytest

from repro.core.dyno import Dyno
from repro.feedback import (
    FeedbackStore,
    block_feedback_context,
    canonical_block_key,
    group_key,
)
from repro.feedback.store import (
    PILOT_BOOST_MAX,
    PILOT_ESCALATE_AFTER,
    QUANT_STEP_LOG2,
)
from repro.obs.metrics import MetricsRegistry, q_error
from repro.service import QueryRequest, QueryService

from .oracle import (
    ORACLE_SEED,
    canonical_rows,
    fingerprint,
    oracle_tables,
    run_workload,
)

IDENTITY = (("l", "table:lineitem|"), ("o", "table:orders|"))


@pytest.fixture(scope="module")
def tables():
    return oracle_tables()


class TestCorrectionConvergence:
    @pytest.mark.parametrize("bias", [20.0, 8.0, 3.5, 0.2, 0.05])
    def test_qerror_converges_toward_one(self, bias):
        """A constant multiplicative estimator bias is learned away.

        The estimate fed back is the already-corrected one, so the
        update chases the residual; after convergence the remaining
        error is bounded by the quantization grid (2**0.125 ~ 1.09).
        """
        store = FeedbackStore()
        key = "from[l;o]|ids[...]|conds[...]|preds[]"
        actual = 10_000.0
        initial = q_error(actual * bias, actual)
        final = initial
        for _ in range(25):
            rows_factor, bytes_factor = store.correction(key)
            corrected_rows = actual * bias * rows_factor
            corrected_bytes = actual * 8 * bias * bytes_factor
            final = q_error(corrected_rows, actual)
            store.ingest(key, IDENTITY,
                         estimated_rows=corrected_rows,
                         actual_rows=actual,
                         estimated_bytes=corrected_bytes,
                         actual_bytes=actual * 8)
        quantization_floor = 2.0 ** (QUANT_STEP_LOG2 / 2.0)
        assert final <= quantization_floor * 1.05
        assert final < initial

    def test_unbiased_estimates_learn_no_correction(self):
        store = FeedbackStore()
        key = "k"
        for _ in range(10):
            store.ingest(key, IDENTITY, 1000.0, 1000.0, 8000.0, 8000.0)
        assert store.correction(key) == (1.0, 1.0)
        assert store.correction_token(dict(IDENTITY)) == ""


class TestPilotEscalation:
    KEY = "from[l]|ids[l=table:lineitem|]|conds[]|preds[]"

    def big_miss(self, store, key=KEY):
        return store.ingest(key, (("l", "table:lineitem|"),),
                            estimated_rows=10.0, actual_rows=100_000.0,
                            estimated_bytes=10.0, actual_bytes=100_000.0)

    def test_persistent_misses_escalate_contributing_signatures(self):
        store = FeedbackStore()
        for audit in range(PILOT_ESCALATE_AFTER - 1):
            assert self.big_miss(store) == ()
        assert self.big_miss(store) == ("table:lineitem|",)
        assert store.should_repilot("table:lineitem|")
        assert store.pilot_boost("table:lineitem|") == 2.0
        # Untouched signatures stay at their defaults.
        assert store.pilot_boost("table:orders|") == 1.0
        assert not store.should_repilot("table:orders|")

    def test_repilot_done_clears_pending_keeps_boost(self):
        store = FeedbackStore()
        for _ in range(PILOT_ESCALATE_AFTER):
            self.big_miss(store)
        store.repilot_done("table:lineitem|")
        assert not store.should_repilot("table:lineitem|")
        assert store.pilot_boost("table:lineitem|") == 2.0

    def test_boost_caps_out(self):
        store = FeedbackStore()
        for _ in range(PILOT_ESCALATE_AFTER * 20):
            self.big_miss(store)
            store.repilot_done("table:lineitem|")
        assert store.pilot_boost("table:lineitem|") == PILOT_BOOST_MAX

    def test_one_good_audit_resets_the_streak(self):
        store = FeedbackStore()
        for _ in range(PILOT_ESCALATE_AFTER - 1):
            self.big_miss(store)
        store.ingest(self.KEY, (("l", "table:lineitem|"),),
                     1000.0, 1000.0, 8000.0, 8000.0)
        assert self.big_miss(store) == ()


class TestRepilotIntegration:
    SQL = (
        "SELECT n.n_name AS n FROM nation n, region r "
        "WHERE n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA'"
    )

    def test_escalation_forces_one_boosted_repilot(self, tables):
        """An escalated signature re-pilots once despite its metastore
        hit, then returns to normal skipping."""
        feedback = FeedbackStore()
        dyno = Dyno(tables, feedback=feedback)
        first = dyno.execute(self.SQL, name="first")
        assert first.block_results[0].pilot.jobs_run == 2
        warm = dyno.execute(self.SQL, name="warm")
        assert warm.block_results[0].pilot.jobs_run == 0

        signature = next(sig for sig in dyno.metastore
                         if sig.startswith("table:region"))
        for _ in range(PILOT_ESCALATE_AFTER):
            feedback.ingest("synthetic", (("r", signature),),
                            estimated_rows=10.0, actual_rows=100_000.0,
                            estimated_bytes=10.0, actual_bytes=100_000.0)
        assert feedback.should_repilot(signature)

        repiloted = dyno.execute(self.SQL, name="repiloted")
        assert repiloted.block_results[0].pilot.jobs_run == 1
        assert not feedback.should_repilot(signature)
        assert feedback.pilot_boost(signature) == 2.0
        # The forced pilot re-collected statistics; later runs skip again.
        settled = dyno.execute(self.SQL, name="settled")
        assert settled.block_results[0].pilot.jobs_run == 0
        assert canonical_rows(settled.rows) == canonical_rows(first.rows)


class TestRegret:
    def test_regret_is_relative_to_best_known(self):
        store = FeedbackStore()
        key = "leaves[...]"
        assert store.record_choice(key, "planA", 10.0) == 0.0
        assert store.record_choice(key, "planB", 15.0) == pytest.approx(0.5)
        # A new best is not charged, and resets the baseline.
        assert store.record_choice(key, "planC", 5.0) == 0.0
        assert store.record_choice(key, "planB", 15.0) == pytest.approx(2.0)
        (entry,) = store.regret_leaderboard()
        assert entry["choices"] == 4
        assert entry["best_plan"] == "planC"
        assert entry["worst_plan"] == "planB"
        assert entry["max_regret"] == pytest.approx(2.0)

    def test_leaderboard_ranks_by_mean_regret(self):
        store = FeedbackStore()
        store.record_choice("good", "p", 10.0)
        store.record_choice("good", "p", 10.0)
        store.record_choice("bad", "p1", 10.0)
        store.record_choice("bad", "p2", 30.0)
        board = store.regret_leaderboard()
        assert [entry["block"] for entry in board] == ["bad", "good"]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = FeedbackStore()
        store.ingest("k", IDENTITY, 100.0, 1000.0, 800.0, 8000.0)
        for _ in range(PILOT_ESCALATE_AFTER):
            store.ingest("k2", (("l", "table:lineitem|"),),
                         10.0, 100_000.0, 10.0, 100_000.0)
        store.record_choice("block", "planA", 10.0)
        store.record_choice("block", "planB", 12.0)
        path = tmp_path / "feedback.json"
        store.save(path)

        loaded = FeedbackStore.load(path)
        assert loaded.correction("k") == store.correction("k")
        assert loaded.correction_token(dict(IDENTITY)) == \
            store.correction_token(dict(IDENTITY))
        assert loaded.pilot_boost("table:lineitem|") == \
            store.pilot_boost("table:lineitem|")
        assert loaded.should_repilot("table:lineitem|")
        assert loaded.regret_leaderboard() == store.regret_leaderboard()

    def test_load_rejects_garbage(self, tmp_path):
        from repro.errors import StatisticsError

        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(StatisticsError):
            FeedbackStore.load(path)
        with pytest.raises(StatisticsError):
            FeedbackStore.load(tmp_path / "missing.json")


class TestKeys:
    SQL = (
        "SELECT n.n_name AS n FROM nation n, region r "
        "WHERE n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA'"
    )

    def test_keys_are_name_independent(self, tables):
        """Two service-renamed copies of one query share every key."""
        dyno = Dyno(tables)
        block_a = dyno.prepare(self.SQL, name="b0.q000.query").block
        block_b = dyno.prepare(self.SQL, name="b7.q123.query").block
        assert block_a.name != block_b.name
        assert canonical_block_key(block_a) == canonical_block_key(block_b)
        context_a = block_feedback_context(block_a)
        context_b = block_feedback_context(block_b)
        aliases = frozenset({"n", "r"})
        assert group_key(context_a, block_a, aliases) == \
            group_key(context_b, block_b, aliases)

    def test_unknown_alias_yields_no_key(self, tables):
        dyno = Dyno(tables)
        block = dyno.prepare(self.SQL).block
        context = block_feedback_context(block)
        assert group_key(context, block, frozenset({"n", "zz"})) is None
        assert group_key(context, block, frozenset()) is None

    def test_correction_token_scoped_to_matching_blocks(self):
        store = FeedbackStore()
        store.ingest("k", IDENTITY, 100.0, 10_000.0, 800.0, 80_000.0)
        # Blocks containing the corrected group's aliases see a token ...
        assert store.correction_token(dict(IDENTITY)) != ""
        superset = dict(IDENTITY)
        superset["c"] = "table:customer|"
        assert store.correction_token(superset) == \
            store.correction_token(dict(IDENTITY))
        # ... unrelated blocks do not, so their cache keys are untouched.
        assert store.correction_token({"c": "table:customer|"}) == ""


class TestDifferential:
    """Feedback may change plans and costs -- never a single row."""

    @pytest.mark.parametrize("query", ["Q10", "Q8'"])
    def test_results_identical_with_and_without_feedback(self, tables,
                                                         query):
        baseline_dyno, baseline_execution = run_workload(tables, query)
        baseline = fingerprint(baseline_dyno, baseline_execution)

        from tests.oracle import ORACLE_WORKLOADS

        workload = ORACLE_WORKLOADS[query]()
        feedback = FeedbackStore()
        dyno = Dyno(tables, udfs=workload.udfs, feedback=feedback)
        for run in range(3):
            if len(workload.stages) > 1:
                execution = dyno.execute_multi(workload.stages)
            else:
                execution = dyno.execute(workload.final_spec, name=query)
            corrected = fingerprint(dyno, execution)
            assert corrected["rows"] == baseline["rows"], \
                f"{query} run {run} diverged with feedback on"
        assert len(feedback) > 0, "the loop must actually have learned"


class TestServiceIntegration:
    SCALE = 0.02
    EVENTS = 1200

    def mixed(self):
        from repro.workloads.mixed import mixed_batch, mixed_tables

        tables = mixed_tables(self.SCALE, seed=ORACLE_SEED,
                              weblog_events=self.EVENTS)
        requests, udfs = mixed_batch()
        return tables, requests, udfs

    def batch_qerror_mean(self, metrics, before):
        obs = metrics.summary()["observations"].get("qerror.rows")
        assert obs is not None
        count = obs["count"] - before["count"]
        total = obs["total"] - before["total"]
        return (total / count if count else 0.0), dict(obs)

    def test_shared_store_improves_repeated_batches(self):
        tables, requests, udfs = self.mixed()
        metrics = MetricsRegistry()
        feedback = FeedbackStore()
        service = QueryService(tables, udfs=udfs, metrics=metrics,
                               workers=3, feedback=feedback)
        baseline = QueryService(tables, udfs=udfs, workers=1)
        expected = [canonical_rows(outcome.rows)
                    for outcome in baseline.run_batch(requests)]

        before = {"count": 0, "total": 0.0}
        means = []
        for _batch in range(3):
            outcomes = service.run_batch(requests)
            assert [outcome.error for outcome in outcomes] == [None] * 7
            assert [canonical_rows(outcome.rows)
                    for outcome in outcomes] == expected
            mean, before = self.batch_qerror_mean(metrics, before)
            means.append(mean)
        assert len(feedback) > 0
        assert metrics.summary()["counters"]["feedback.ingested"] > 0
        # Corrections learned in batch 1 apply from batch 2 on.
        assert means[-1] <= means[0]
        assert min(means[1:]) < means[0]

    def test_feedback_report_renders(self):
        tables, requests, udfs = self.mixed()
        feedback = FeedbackStore()
        service = QueryService(tables, udfs=udfs, workers=2,
                               feedback=feedback)
        service.run_batch(requests)
        report = feedback.report()
        assert "feedback report:" in report
        assert "correction keys" in report
        summary = feedback.summary()
        assert summary["samples"] > 0
        assert math.isfinite(summary["keys"])
