"""Failure recovery: replanning, broadcast bans, speculative execution.

The fault matrix (tests/test_fault_matrix.py) proves recovery is
result-invisible end to end; these tests pin the mechanisms down one by
one: a broadcast build overflow mid-run must replan the join as
repartition, the optimizer must honour banned broadcast alias sets, the
replan budget must bound recovery, and the scheduler's speculative
execution must cap stragglers without distorting fault-free schedules.
"""

from dataclasses import replace

import pytest

from repro.cluster.faults import FaultPlan
from repro.cluster.scheduler import (
    ScheduledJob,
    SlotScheduler,
    plan_speculative_backups,
)
from repro.config import DEFAULT_CONFIG
from repro.core.dynopt import MODE_DYNOPT
from repro.errors import JobError, TaskRetriesExhaustedError
from repro.optimizer.plans import BROADCAST, PhysJoin
from repro.optimizer.search import JoinOptimizer
from repro.stats.statistics import TableStats
from repro.workloads.queries import q10
from tests.conftest import assert_same_rows, reference_rows


def _joins(plan):
    collected = []

    def walk(node):
        if isinstance(node, PhysJoin):
            collected.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return collected


def _broadcast_joins(plan):
    return [join for join in _joins(plan) if join.method == BROADCAST]


class TestBroadcastOverflowReplan:
    """Satellite: a BroadcastBuildOverflowError during a dynamic run must
    trigger a replan that falls back to repartition joins -- Jaql has no
    spill path (Section 2.2.1), so the *optimizer* routes around it."""

    def _overflow_execution(self, dyno_factory):
        workload = q10()
        # A memory budget the real build sides cannot fit ...
        config = replace(
            DEFAULT_CONFIG,
            cluster=replace(DEFAULT_CONFIG.cluster,
                            task_memory_bytes=8 * 1024),
        )
        dyno = dyno_factory(udfs=workload.udfs, config=config)
        extracted = dyno.prepare(workload.final_spec)
        # ... hidden from the optimizer by leaf statistics that say every
        # relation is tiny, so its first plan eagerly broadcasts.
        lying_stats = {
            leaf.signature(): TableStats(5.0, 64.0)
            for leaf in extracted.block.leaves
        }
        result = dyno.executor.execute_block(
            extracted.block, mode=MODE_DYNOPT, strategy="UNC-1",
            leaf_stats_override=lying_stats,
        )
        return dyno, workload, result

    def test_overflow_replans_to_repartition(self, dyno_factory,
                                             tpch_tables):
        dyno, workload, result = self._overflow_execution(dyno_factory)
        assert any("BroadcastBuildOverflowError" in entry
                   for entry in result.replanned_failures)
        # The replanned (final) plan must not broadcast the banned join.
        assert result.plans, "no plans recorded"
        assert not _broadcast_joins(result.plans[-1])
        assert _joins(result.plans[-1])  # still a join plan, repartitioned

    def test_overflow_recovery_preserves_results(self, dyno_factory,
                                                 tpch_tables):
        dyno, workload, result = self._overflow_execution(dyno_factory)
        rows = dyno.dfs.read_all(result.output_file)
        assert rows  # the block completed despite the doomed first plan


class TestBannedBroadcast:
    def _optimized(self, dyno_factory, banned=frozenset()):
        from repro.core.baselines import oracle_leaf_stats

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        stats = oracle_leaf_stats(dyno.tables, block)
        optimizer = JoinOptimizer(block, stats, dyno.config.optimizer,
                                  banned_broadcast=banned)
        return optimizer.optimize()

    def test_ban_removes_broadcast_for_alias_set(self, dyno_factory):
        unbanned = self._optimized(dyno_factory)
        broadcasts = _broadcast_joins(unbanned.plan)
        assert broadcasts, "expected q10's default plan to broadcast"
        target = broadcasts[0]
        banned = frozenset({frozenset(target.aliases)})
        rebanned = self._optimized(dyno_factory, banned=banned)
        for join in _broadcast_joins(rebanned.plan):
            assert not any(join.aliases <= ban for ban in banned)

    def test_ban_is_subset_semantics(self, dyno_factory):
        """Banning a superset alias set bans every broadcast inside it --
        what _replan_around_failure relies on when a *chained* broadcast
        job (one job, several joins) fails permanently."""
        unbanned = self._optimized(dyno_factory)
        everything = frozenset({unbanned.plan.aliases})
        banned = self._optimized(dyno_factory, banned=everything)
        assert not _broadcast_joins(banned.plan)
        assert banned.cost >= unbanned.cost

    def test_empty_ban_changes_nothing(self, dyno_factory):
        a = self._optimized(dyno_factory)
        b = self._optimized(dyno_factory, banned=frozenset())
        assert a.cost == b.cost


class TestReplanBudget:
    def test_replan_cap_reraises_permanent_failure(self, dyno_factory):
        workload = q10()
        plan = FaultPlan(seed=41, name="doom", broadcast_failure_rate=1.0)
        config = replace(DEFAULT_CONFIG.with_fault_plan(plan),
                         max_recovery_replans=0)
        dyno = dyno_factory(udfs=workload.udfs, config=config)
        with pytest.raises(TaskRetriesExhaustedError, match="broadcast"):
            dyno.execute(workload.final_spec, mode=MODE_DYNOPT,
                         strategy="UNC-1")

    def test_with_budget_the_same_run_completes(self, dyno_factory,
                                                tpch_tables):
        workload = q10()
        plan = FaultPlan(seed=41, name="doom", broadcast_failure_rate=1.0)
        dyno = dyno_factory(udfs=workload.udfs,
                            config=DEFAULT_CONFIG.with_fault_plan(plan))
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT,
                                 strategy="UNC-1")
        assert_same_rows(execution.rows,
                         reference_rows(tpch_tables, workload.final_spec))
        assert execution.block_results[0].replanned_failures


class TestSpeculativeExecution:
    def test_backups_need_three_tasks(self):
        assert plan_speculative_backups([100.0, 1.0], 3.0) == \
            ([100.0, 1.0], [])

    def test_straggler_capped_at_threshold(self):
        effective, phantoms = plan_speculative_backups(
            [10.0, 10.0, 10.0, 10.0, 100.0], 3.0)
        assert effective == [10.0, 10.0, 10.0, 10.0, 40.0]
        assert phantoms == [10.0]  # the backup copy runs at median speed

    def test_no_stragglers_no_backups(self):
        effective, phantoms = plan_speculative_backups(
            [10.0, 11.0, 12.0], 3.0)
        assert effective == [10.0, 11.0, 12.0]
        assert phantoms == []

    def test_zero_median_speculates_nothing(self):
        assert plan_speculative_backups([0.0, 0.0, 0.0, 5.0], 3.0) == \
            ([0.0, 0.0, 0.0, 5.0], [])

    @pytest.mark.parametrize("policy", ["fifo", "fair"])
    def test_speculation_cuts_straggler_makespan(self, policy):
        job = ScheduledJob("j", [10.0, 10.0, 10.0, 10.0, 100.0])
        plain = SlotScheduler(5, 5, policy=policy).schedule([job])
        spec = SlotScheduler(5, 5, policy=policy,
                             speculative=True).schedule([job])
        assert plain.makespan == 100.0
        assert spec.makespan == 40.0

    def test_phantom_occupies_a_slot_but_not_the_makespan(self):
        # One slot: real tasks [1, 1, 100->4] run back to back, then the
        # backup copy (1s) burns the slot after the job already finished.
        job = ScheduledJob("j", [1.0, 1.0, 100.0])
        spec = SlotScheduler(1, 1, speculative=True).schedule([job])
        assert spec.makespan == 1.0 + 1.0 + 4.0
        # Two jobs: the second job's start is delayed by the first job's
        # phantom backup holding the only slot.
        second = ScheduledJob("k", [1.0])
        both = SlotScheduler(1, 1, speculative=True).schedule([job, second])
        assert both.timelines["k"].finish_time == 6.0 + 1.0 + 1.0

    def test_threshold_must_exceed_one(self):
        with pytest.raises(JobError, match="speculative"):
            SlotScheduler(1, 1, speculative_threshold=1.0)
