"""Baselines: static enumeration, Jaql heuristics, RELOPT failure modes."""

import pytest

from repro.core.baselines import (
    RELOPT_SAFETY_FACTOR,
    build_left_deep_plan,
    enumerate_connected_orders,
    jaql_file_size_stats,
    oracle_leaf_stats,
    rank_orders_by_oracle,
    relopt_leaf_stats,
    relopt_plan,
)
from repro.errors import PlanError
from repro.optimizer.plans import BROADCAST, summarize_plan
from repro.workloads.queries import q8_prime, q9_prime, q10


def q10_block(dyno_factory):
    workload = q10()
    dyno = dyno_factory(udfs=workload.udfs)
    return dyno, dyno.prepare(workload.final_spec).block


class TestEnumeration:
    def test_chain_order_count(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        orders = list(enumerate_connected_orders(block))
        # Q10's join graph: c-o, o-l, c-n (a tree on 4 nodes).
        assert len(orders) == len({tuple(o) for o in orders})
        assert all(len(order) == len(block.leaves) for order in orders)

    def test_every_order_is_connected_prefixwise(self, dyno_factory):
        from repro.optimizer.joingraph import JoinGraph

        dyno, block = q10_block(dyno_factory)
        graph = JoinGraph.build(block)
        for order in enumerate_connected_orders(block):
            for cut in range(1, len(order) + 1):
                assert graph.is_connected(frozenset(order[:cut]))

    def test_single_leaf_block(self):
        from repro.jaql.blocks import SOURCE_TABLE, BlockLeaf, JoinBlock

        block = JoinBlock(
            "one",
            (BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t"),), (),
        )
        assert list(enumerate_connected_orders(block)) == [(0,)]


class TestStaticPlans:
    def test_methods_follow_file_size_rule(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        stats = jaql_file_size_stats(dyno.tables, block)
        sizes = {leaf.source_name: dyno.dfs.file_size(leaf.source_name)
                 for leaf in block.base_leaves()}
        order = next(enumerate_connected_orders(block))
        plan = build_left_deep_plan(block, order, stats, sizes, dyno.config)

        budget = dyno.config.optimizer.max_broadcast_bytes

        def visit(node):
            from repro.optimizer.plans import PhysJoin, PhysLeaf

            if isinstance(node, PhysJoin):
                build = node.right
                assert isinstance(build, PhysLeaf)  # left-deep
                file_size = sizes[build.leaf.source_name]
                if node.method == BROADCAST:
                    assert file_size <= budget
                else:
                    assert file_size > budget
                visit(node.left)

        visit(plan)

    def test_left_deep_shape(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        stats = jaql_file_size_stats(dyno.tables, block)
        sizes = {leaf.source_name: dyno.dfs.file_size(leaf.source_name)
                 for leaf in block.base_leaves()}
        order = next(enumerate_connected_orders(block))
        plan = build_left_deep_plan(block, order, stats, sizes, dyno.config)
        assert summarize_plan(plan).is_left_deep

    def test_invalid_order_rejected(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        stats = jaql_file_size_stats(dyno.tables, block)
        with pytest.raises(PlanError):
            build_left_deep_plan(block, (0, 1), stats, {}, dyno.config)

    def test_cartesian_order_rejected(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        stats = jaql_file_size_stats(dyno.tables, block)
        order = None
        # Find a permutation that is NOT connected prefix-wise.
        import itertools

        valid = set(enumerate_connected_orders(block))
        for candidate in itertools.permutations(range(len(block.leaves))):
            if candidate not in valid:
                order = candidate
                break
        assert order is not None
        with pytest.raises(PlanError):
            build_left_deep_plan(block, order, stats, {}, dyno.config)

    def test_ranking_is_sorted_and_complete(self, dyno_factory):
        dyno, block = q10_block(dyno_factory)
        jaql_stats = jaql_file_size_stats(dyno.tables, block)
        oracle = oracle_leaf_stats(dyno.tables, block)
        sizes = {leaf.source_name: dyno.dfs.file_size(leaf.source_name)
                 for leaf in block.base_leaves()}
        ranked = rank_orders_by_oracle(block, jaql_stats, oracle, sizes,
                                       dyno.config)
        costs = [entry.oracle_cost for entry in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == len(list(enumerate_connected_orders(block)))


class TestStatisticsFlavours:
    def test_oracle_reflects_predicates(self, dyno_factory, tpch_tables):
        dyno, block = q10_block(dyno_factory)
        oracle = oracle_leaf_stats(dyno.tables, block)
        lineitem = block.leaf_for("l")
        truth = sum(1 for row in tpch_tables["lineitem"].rows
                    if row["l_returnflag"] == "R")
        assert oracle[lineitem.signature()].row_count == truth

    def test_jaql_stats_ignore_predicates(self, dyno_factory, tpch_tables):
        dyno, block = q10_block(dyno_factory)
        stats = jaql_file_size_stats(dyno.tables, block)
        lineitem = block.leaf_for("l")
        assert stats[lineitem.signature()].row_count == \
            len(tpch_tables["lineitem"])

    def test_relopt_multiplies_independent_selectivities(
            self, dyno_factory, tpch_tables):
        """Q8''s correlated zone/region predicates: RELOPT underestimates
        by the region predicate's selectivity (the paper's Section 4.1
        failure mode)."""
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        relopt = relopt_leaf_stats(dyno.tables, block)
        oracle = oracle_leaf_stats(dyno.tables, block)
        orders = block.leaf_for("o")
        believed = relopt[orders.signature()].row_count
        truth = oracle[orders.signature()].row_count
        # zone implies region; independence divides by ~4 (regions).
        assert believed < truth
        assert truth / max(believed, 1e-9) == pytest.approx(4.0, rel=0.5)

    def test_relopt_udfs_are_opaque(self, dyno_factory, tpch_tables):
        workload = q9_prime(udf_selectivity=0.01)
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        relopt = relopt_leaf_stats(dyno.tables, block)
        part = block.leaf_for("p")
        # UDF selectivity defaults to 1.0: full table size believed.
        assert relopt[part.signature()].row_count == \
            len(tpch_tables["part"])


class TestReloptPlan:
    def test_q9_relopt_plan_avoids_broadcasts_of_udf_dims(
            self, dyno_factory):
        """Figure 3: with UDF selectivity unknown, the dimensions look too
        big and the conservative optimizer repartitions them."""
        workload = q9_prime(udf_selectivity=0.001)
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        plan, _ = relopt_plan(block, dyno.tables, dyno.config)
        summary = summarize_plan(plan)
        # part/partsupp/orders cannot be broadcast under RELOPT's beliefs;
        # only genuinely small tables (nation/supplier) may be.
        assert summary.repartition_joins >= 2

    def test_safety_factor_is_conservative(self):
        assert RELOPT_SAFETY_FACTOR > 1.5
