"""Rewrite engine: push-down correctness and placement."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.jaql.expr import (
    And,
    Comparison,
    Filter,
    Join,
    JoinCondition,
    Scan,
    UdfPredicate,
    ref,
    walk,
)
from repro.jaql.functions import Udf
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import (
    local_predicates_of,
    merge_adjacent_filters,
    push_down_filters,
)

LEFT_SCHEMA = Schema.of(id=INT, color=STRING)
RIGHT_SCHEMA = Schema.of(lid=INT, size=INT)


def tables(seed=0, rows=60):
    rng = random.Random(seed)
    left = Table("left", LEFT_SCHEMA, [
        {"id": i, "color": rng.choice(["red", "blue"])}
        for i in range(rows)
    ])
    right = Table("right", RIGHT_SCHEMA, [
        {"lid": rng.randrange(rows), "size": rng.randrange(10)}
        for _ in range(rows * 2)
    ])
    return {"left": left, "right": right}


def base_join():
    return Join(
        Scan("left", "a"), Scan("right", "b"),
        (JoinCondition(ref("a", "id"), ref("b", "lid")),),
    )


class TestPushDown:
    def test_local_predicate_sinks_to_scan(self):
        tree = Filter(base_join(), Comparison(ref("a", "color"), "=", "red"))
        pushed = push_down_filters(tree)
        # The filter must now sit directly above the scan of `a`.
        locals_ = local_predicates_of(pushed)
        assert "a" in locals_
        assert locals_["a"][0].signature() == "(a.color = 'red')"
        # And no filter remains above the join.
        assert isinstance(pushed, Join)

    def test_conjunction_splits_and_sinks_both_sides(self):
        tree = Filter(base_join(), And((
            Comparison(ref("a", "color"), "=", "red"),
            Comparison(ref("b", "size"), "<", 5),
        )))
        pushed = push_down_filters(tree)
        locals_ = local_predicates_of(pushed)
        assert set(locals_) == {"a", "b"}

    def test_cross_alias_predicate_stays_above_join(self):
        cross = Comparison(ref("a", "id"), "<", ref("b", "size"))
        tree = Filter(base_join(), cross)
        pushed = push_down_filters(tree)
        assert isinstance(pushed, Filter)
        assert pushed.predicate is cross

    def test_udf_predicate_sinks_like_any_other(self):
        udf = Udf("pick", lambda color: color == "red")
        tree = Filter(base_join(), UdfPredicate(udf, (ref("a", "color"),)))
        pushed = push_down_filters(tree)
        assert "a" in local_predicates_of(pushed)

    def test_nested_joins_push_through_both_levels(self):
        inner = base_join()
        outer = Join(
            inner, Scan("right", "c"),
            (JoinCondition(ref("a", "id"), ref("c", "lid")),),
        )
        tree = Filter(outer, Comparison(ref("a", "color"), "=", "red"))
        pushed = push_down_filters(tree)
        assert "a" in local_predicates_of(pushed)

    def test_idempotent(self):
        tree = Filter(base_join(), Comparison(ref("a", "color"), "=", "red"))
        once = push_down_filters(tree)
        twice = push_down_filters(once)
        assert once.describe() == twice.describe()

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_semantics_preserved(self, seed):
        """Pushed and original trees return identical rows on random data."""
        rng = random.Random(seed)
        predicates = [
            Comparison(ref("a", "color"), "=", rng.choice(["red", "blue"])),
            Comparison(ref("b", "size"), rng.choice(["<", ">="]),
                       rng.randrange(10)),
            Comparison(ref("a", "id"), "<", ref("b", "size")),
        ]
        rng.shuffle(predicates)
        tree = base_join()
        for predicate in predicates[: rng.randint(1, 3)]:
            tree = Filter(tree, predicate)
        data = tables(seed)
        interpreter = Interpreter(data)
        original = interpreter.evaluate(tree)
        pushed = interpreter.evaluate(push_down_filters(tree))

        def canon(rows):
            return sorted(tuple(sorted(r.items())) for r in rows)

        assert canon(original) == canon(pushed)


class TestMergeFilters:
    def test_adjacent_filters_merge(self):
        scan = Scan("left", "a")
        tree = Filter(
            Filter(scan, Comparison(ref("a", "id"), ">", 0)),
            Comparison(ref("a", "id"), "<", 10),
        )
        merged = merge_adjacent_filters(tree)
        assert isinstance(merged, Filter)
        assert isinstance(merged.child, Scan)
        assert isinstance(merged.predicate, And)

    def test_single_filter_untouched(self):
        tree = Filter(Scan("left", "a"),
                      Comparison(ref("a", "id"), ">", 0))
        merged = merge_adjacent_filters(tree)
        assert isinstance(merged.child, Scan)


class TestLocalPredicates:
    def test_reports_only_scan_adjacent(self):
        tree = Filter(base_join(), Comparison(ref("a", "color"), "=", "x"))
        assert local_predicates_of(tree) == {}  # not pushed yet
        assert "a" in local_predicates_of(push_down_filters(tree))

    def test_workload_pushdown_produces_expected_leaves(self):
        from repro.workloads.queries import q8_prime

        workload = q8_prime()
        spec = workload.final_spec
        pushed = push_down_filters(spec.root)
        locals_ = local_predicates_of(pushed)
        # orders carries date range + the two correlated predicates.
        assert len(locals_["o"]) == 4
        assert len(locals_["p"]) == 1
        assert len(locals_["r"]) == 1
        # The pair UDF spans o and c: must NOT be local.
        filters_above_joins = [
            node.predicate for node in walk(pushed)
            if isinstance(node, Filter) and isinstance(node.child, Join)
        ]
        assert any(pred.is_udf for pred in filters_above_joins)
