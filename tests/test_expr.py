"""Expression AST: references, predicates, aggregates, schema derivation."""

import pytest

from repro.data.schema import INT, STRING, Schema
from repro.errors import PlanError
from repro.jaql.expr import (
    Aggregate,
    Catalog,
    ColumnRef,
    Comparison,
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    And,
    Or,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    UdfPredicate,
    conjunction,
    conjuncts,
    qualify_row,
    qualify_schema,
    ref,
    walk,
)
from repro.jaql.functions import Udf


def catalog():
    return Catalog({
        "t": Schema.of(id=INT, name=STRING),
        "u": Schema.of(tid=INT, label=STRING),
    })


class TestColumnRef:
    def test_qualified_name(self):
        assert ref("a", "x").qualified == "a.x"

    def test_empty_alias_means_bare_column(self):
        bare = ColumnRef("", "total")
        assert bare.qualified == "total"
        assert bare.evaluate({"total": 7}) == 7

    def test_evaluate_nested(self):
        row = {"a.addr": [{"zip": 1}]}
        assert ref("a", "addr", 0, "zip").evaluate(row) == 1

    def test_evaluate_missing_is_none(self):
        assert ref("a", "x").evaluate({}) is None
        assert ref("a", "x", 0).evaluate({"a.x": "scalar"}) is None

    def test_describe(self):
        assert ref("a", "addr", 0, "zip").describe() == "a.addr[0].zip"


class TestPredicates:
    def test_comparison_operators(self):
        row = {"a.x": 5}
        assert Comparison(ref("a", "x"), "=", 5).evaluate(row)
        assert Comparison(ref("a", "x"), "!=", 4).evaluate(row)
        assert Comparison(ref("a", "x"), "<", 6).evaluate(row)
        assert Comparison(ref("a", "x"), ">=", 5).evaluate(row)
        assert not Comparison(ref("a", "x"), ">", 5).evaluate(row)

    def test_comparison_with_none_is_false(self):
        assert not Comparison(ref("a", "x"), "=", None).evaluate({"a.x": 1})
        assert not Comparison(ref("a", "x"), "<", 5).evaluate({})

    def test_comparison_type_mismatch_is_false(self):
        assert not Comparison(ref("a", "x"), "<", "text").evaluate({"a.x": 1})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison(ref("a", "x"), "~=", 1)

    def test_column_to_column(self):
        pred = Comparison(ref("a", "x"), "=", ref("b", "y"))
        assert pred.evaluate({"a.x": 3, "b.y": 3})
        assert pred.references() == {"a", "b"}

    def test_udf_predicate(self):
        udf = Udf("is_even", lambda v: v % 2 == 0, cost_seconds=0.5)
        pred = UdfPredicate(udf, (ref("a", "x"),))
        assert pred.evaluate({"a.x": 4})
        assert not pred.evaluate({"a.x": 3})
        assert pred.is_udf
        assert pred.cpu_seconds_per_row == 0.5
        assert pred.references() == {"a"}

    def test_and_or(self):
        p1 = Comparison(ref("a", "x"), ">", 0)
        p2 = Comparison(ref("b", "y"), "<", 10)
        both = And((p1, p2))
        either = Or((p1, p2))
        row = {"a.x": 5, "b.y": 20}
        assert not both.evaluate(row)
        assert either.evaluate(row)
        assert both.references() == {"a", "b"}

    def test_conjuncts_flatten(self):
        p1 = Comparison(ref("a", "x"), ">", 0)
        p2 = Comparison(ref("a", "y"), ">", 0)
        p3 = Comparison(ref("a", "z"), ">", 0)
        nested = And((p1, And((p2, p3))))
        assert conjuncts(nested) == [p1, p2, p3]

    def test_conjunction_inverse(self):
        p1 = Comparison(ref("a", "x"), ">", 0)
        assert conjunction([p1]) is p1
        combined = conjunction([p1, p1])
        assert isinstance(combined, And)
        with pytest.raises(PlanError):
            conjunction([])

    def test_signatures_stable(self):
        pred = Comparison(ref("a", "x"), "=", 5)
        assert pred.signature() == "(a.x = 5)"
        udf = Udf("f", lambda v: True, version="2")
        assert UdfPredicate(udf, (ref("a", "x"),)).signature() == \
            "udf:f@2(a.x)"


class TestJoinCondition:
    def test_aliases_and_side_selection(self):
        condition = JoinCondition(ref("a", "x"), ref("b", "y"))
        assert condition.aliases() == {"a", "b"}
        assert condition.side_for(frozenset(("a",))).alias == "a"
        assert condition.side_for(frozenset(("b", "c"))).alias == "b"
        with pytest.raises(PlanError):
            condition.side_for(frozenset(("z",)))

    def test_same_alias_rejected(self):
        with pytest.raises(PlanError):
            JoinCondition(ref("a", "x"), ref("a", "y"))


class TestAggregates:
    def run(self, aggregate, rows):
        state = aggregate.initial()
        for row in rows:
            state = aggregate.step(state, row)
        return aggregate.final(state)

    def test_count(self):
        agg = Aggregate("count", None, "c")
        assert self.run(agg, [{}, {}, {}]) == 3

    def test_sum_min_max(self):
        rows = [{"a.x": v} for v in (3, 1, 4, None)]
        assert self.run(Aggregate("sum", ref("a", "x"), "s"), rows) == 8
        assert self.run(Aggregate("min", ref("a", "x"), "m"), rows) == 1
        assert self.run(Aggregate("max", ref("a", "x"), "m"), rows) == 4

    def test_avg(self):
        rows = [{"a.x": v} for v in (2, 4)]
        assert self.run(Aggregate("avg", ref("a", "x"), "a"), rows) == 3
        assert self.run(Aggregate("avg", ref("a", "x"), "a"), []) is None

    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            Aggregate("median", ref("a", "x"), "m")

    def test_non_count_requires_argument(self):
        with pytest.raises(PlanError):
            Aggregate("sum", None, "s")


class TestExpressions:
    def test_scan_schema_is_qualified(self):
        schema = Scan("t", "a").schema(catalog())
        assert schema.names == ("a.id", "a.name")

    def test_qualify_row(self):
        assert qualify_row("a", {"id": 1}) == {"a.id": 1}

    def test_qualify_schema(self):
        schema = qualify_schema("z", Schema.of(id=INT))
        assert schema.names == ("z.id",)

    def test_join_schema_merges(self):
        join = Join(
            Scan("t", "a"), Scan("u", "b"),
            (JoinCondition(ref("a", "id"), ref("b", "tid")),),
        )
        assert join.schema(catalog()).names == (
            "a.id", "a.name", "b.tid", "b.label"
        )
        assert join.aliases() == {"a", "b"}

    def test_join_requires_conditions(self):
        with pytest.raises(PlanError):
            Join(Scan("t", "a"), Scan("u", "b"), ())

    def test_join_condition_must_span_inputs(self):
        with pytest.raises(PlanError):
            Join(Scan("t", "a"), Scan("u", "b"),
                 (JoinCondition(ref("a", "id"), ref("c", "x")),))

    def test_filter_preserves_schema(self):
        scan = Scan("t", "a")
        filtered = Filter(scan, Comparison(ref("a", "id"), ">", 0))
        assert filtered.schema(catalog()) == scan.schema(catalog())

    def test_group_by_schema(self):
        group = GroupBy(
            Scan("t", "a"), (ref("a", "name"),),
            (Aggregate("count", None, "cnt"),),
        )
        assert group.schema(catalog()).names == ("a.name", "cnt")

    def test_group_by_rejects_nested_keys(self):
        group = GroupBy(
            Scan("t", "a"), (ref("a", "name", 0),),
            (Aggregate("count", None, "cnt"),),
        )
        with pytest.raises(PlanError):
            group.schema(catalog())

    def test_project_rows(self):
        project = Project(Scan("t", "a"), ((ref("a", "name"), "label"),))
        assert project.project_row({"a.name": "x"}) == {"label": "x"}
        assert project.schema(catalog()).names == ("label",)

    def test_order_by_schema_passthrough(self):
        order = OrderBy(Scan("t", "a"), (ref("a", "id"),), True, 5)
        assert order.schema(catalog()).names == ("a.id", "a.name")

    def test_walk_preorder(self):
        join = Join(
            Scan("t", "a"), Scan("u", "b"),
            (JoinCondition(ref("a", "id"), ref("b", "tid")),),
        )
        kinds = [type(node).__name__ for node in walk(Filter(
            join, Comparison(ref("a", "id"), ">", 0)
        ))]
        assert kinds == ["Filter", "Join", "Scan", "Scan"]

    def test_query_spec_discovers_alias_tables(self):
        spec = QuerySpec("q", Join(
            Scan("t", "a"), Scan("u", "b"),
            (JoinCondition(ref("a", "id"), ref("b", "tid")),),
        ))
        assert spec.alias_tables == {"a": "t", "b": "u"}

    def test_describe_renders(self):
        join = Join(
            Scan("t", "a"), Scan("u", "b"),
            (JoinCondition(ref("a", "id"), ref("b", "tid")),),
        )
        text = join.describe()
        assert "join" in text and "scan t AS a" in text
