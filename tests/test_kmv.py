"""KMV synopsis: hashing, estimation accuracy, mergeability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.kmv import (
    HASH_DOMAIN,
    KMVSynopsis,
    clear_hash_cache,
    kmv_hash,
)


class TestHash:
    def test_stable_across_calls(self):
        assert kmv_hash("abc") == kmv_hash("abc")
        assert kmv_hash(("a", 1)) == kmv_hash(("a", 1))

    def test_distinct_inputs_differ(self):
        values = ["a", "b", 1, 2, 1.5, ("a",), ["a"], {"a": 1}, None, True]
        hashes = {kmv_hash(v) for v in values}
        # lists and tuples canonicalize identically; everything else differs
        assert len(hashes) >= len(values) - 1

    def test_int_float_coincide_on_integral_values(self):
        assert kmv_hash(3) == kmv_hash(3.0)
        assert kmv_hash(3) != kmv_hash(3.5)

    def test_in_domain(self):
        for value in ("x", 123, (1, 2), {"k": "v"}):
            assert 0 <= kmv_hash(value) <= HASH_DOMAIN

    def test_unhashable_type_rejected(self):
        with pytest.raises(StatisticsError):
            kmv_hash(object())

    def test_memo_cache_preserves_type_distinctions(self):
        """The scalar memo must never conflate equal-but-distinct keys.

        ``True == 1`` and ``3.0 == 3`` as dict keys, yet bools canonicalize
        differently from ints; only exact int/str values are admitted, so a
        cached int hash can never be served for a bool (and vice versa).
        """
        clear_hash_cache()
        int_hash = kmv_hash(1)  # warms the cache for the int key
        assert kmv_hash(True) != int_hash
        assert kmv_hash(1) == int_hash
        clear_hash_cache()
        bool_hash = kmv_hash(True)
        assert kmv_hash(1) != bool_hash
        assert kmv_hash(3) == kmv_hash(3.0)  # float path bypasses the cache

    def test_memo_cache_hits_match_cold_hashes(self):
        values = ["a", "b", 42, ("x", 7), 42, "a", ("x", 7)]
        clear_hash_cache()
        first = [kmv_hash(v) for v in values]
        second = [kmv_hash(v) for v in values]  # served from the memo
        assert first == second
        clear_hash_cache()
        assert [kmv_hash(v) for v in values] == first


class TestSynopsis:
    def test_requires_k_at_least_two(self):
        with pytest.raises(StatisticsError):
            KMVSynopsis(1)

    def test_exact_below_saturation(self):
        synopsis = KMVSynopsis(64)
        for value in range(40):
            synopsis.add(value)
            synopsis.add(value)  # duplicates ignored
        assert not synopsis.is_saturated
        assert synopsis.estimate() == 40.0

    def test_none_ignored(self):
        synopsis = KMVSynopsis(8)
        synopsis.add(None)
        assert synopsis.estimate() == 0.0

    def test_empty_estimate_zero(self):
        assert KMVSynopsis(8).estimate() == 0.0

    def test_estimation_accuracy_at_saturation(self):
        synopsis = KMVSynopsis(256)
        true_count = 20000
        synopsis.add_all(range(true_count))
        assert synopsis.is_saturated
        estimate = synopsis.estimate()
        # k=256 gives ~12% stddev; allow a generous band.
        assert 0.7 * true_count <= estimate <= 1.3 * true_count

    def test_paper_error_bound_k1024(self):
        """k=1024 -> roughly 6% error bound (paper Section 4.3)."""
        synopsis = KMVSynopsis(1024)
        true_count = 50000
        synopsis.add_all(f"value-{i}" for i in range(true_count))
        estimate = synopsis.estimate()
        assert abs(estimate - true_count) / true_count < 0.15

    def test_snapshot_sorted(self):
        synopsis = KMVSynopsis(8)
        synopsis.add_all(range(20))
        snapshot = synopsis.snapshot()
        assert snapshot == sorted(snapshot)
        assert len(snapshot) == 8


class TestMerge:
    def test_bulk_merge_snapshot_matches_per_hash_reference(self):
        """Regression for the nsmallest-based bulk merge: the retained set
        must equal what per-hash insertion of both snapshots produces."""
        left, right = KMVSynopsis(64), KMVSynopsis(64)
        left.add_all(range(2000))
        right.add_all(f"s{i}" for i in range(2000))
        merged = left.merge(right)
        reference = KMVSynopsis(64)
        for hashed in left.snapshot() + right.snapshot():
            reference._add_hash(hashed)
        assert merged.snapshot() == reference.snapshot()
        assert merged.estimate() == reference.estimate()

    def test_bulk_merge_below_saturation(self):
        left, right = KMVSynopsis(64), KMVSynopsis(64)
        left.add_all(range(10))
        right.add_all(range(5, 20))
        merged = left.merge(right)
        assert merged.estimate() == 20.0
        assert len(merged.snapshot()) == 20

    def test_merge_equals_union(self):
        left = KMVSynopsis(128)
        right = KMVSynopsis(128)
        union = KMVSynopsis(128)
        left.add_all(range(0, 500))
        right.add_all(range(250, 750))
        union.add_all(range(0, 750))
        merged = left.merge(right)
        assert merged.snapshot() == union.snapshot()
        assert merged.estimate() == pytest.approx(union.estimate())

    def test_merge_keeps_smaller_k(self):
        left = KMVSynopsis(16)
        right = KMVSynopsis(64)
        assert left.merge(right).k == 16

    @given(st.lists(st.integers(0, 10000), max_size=300),
           st.lists(st.integers(0, 10000), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative(self, left_values, right_values):
        a, b = KMVSynopsis(32), KMVSynopsis(32)
        a.add_all(left_values)
        b.add_all(right_values)
        assert a.merge(b).snapshot() == b.merge(a).snapshot()

    @given(st.lists(st.integers(0, 10000), max_size=200),
           st.lists(st.integers(0, 10000), max_size=200),
           st.lists(st.integers(0, 10000), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_merge_associative(self, xs, ys, zs):
        def synopsis(values):
            s = KMVSynopsis(32)
            s.add_all(values)
            return s

        left = synopsis(xs).merge(synopsis(ys)).merge(synopsis(zs))
        right = synopsis(xs).merge(synopsis(ys).merge(synopsis(zs)))
        assert left.snapshot() == right.snapshot()

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=500),
           st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_partitioned_merge_equals_whole(self, values, parts):
        whole = KMVSynopsis(64)
        whole.add_all(values)
        merged = KMVSynopsis(64)
        for offset in range(parts):
            partial = KMVSynopsis(64)
            partial.add_all(values[offset::parts])
            merged = merged.merge(partial)
        assert merged.snapshot() == whole.snapshot()

    @given(st.lists(st.integers(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_estimate_never_below_exact_when_unsaturated(self, values):
        synopsis = KMVSynopsis(1024)
        synopsis.add_all(values)
        if not synopsis.is_saturated:
            assert synopsis.estimate() == len(set(values))
