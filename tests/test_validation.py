"""Public validation helpers."""

from repro.core.dyno import Dyno
from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.validation import (
    canonical_rows,
    compare_rows,
    interpret,
    verify_workload,
)


def tables():
    return {
        "t": Table("t", Schema.of(k=INT, v=STRING), [
            {"k": i % 4, "v": f"v{i % 3}"} for i in range(40)
        ]),
        "d": Table("d", Schema.of(k=INT, label=STRING), [
            {"k": i, "label": f"L{i}"} for i in range(4)
        ]),
    }


class TestCanonicalRows:
    def test_order_insensitive(self):
        a = [{"x": 1}, {"x": 2}]
        b = [{"x": 2}, {"x": 1}]
        assert canonical_rows(a) == canonical_rows(b)

    def test_float_tolerance(self):
        a = [{"x": 0.30000000004}]
        b = [{"x": 0.3}]
        assert canonical_rows(a) == canonical_rows(b)

    def test_nested_values(self):
        a = [{"x": [1, {"b": 2}]}]
        assert canonical_rows(a) == canonical_rows(list(a))


class TestCompareRows:
    def test_match(self):
        report = compare_rows([{"x": 1}], [{"x": 1}])
        assert report.matches
        assert "OK" in report.describe()

    def test_missing_and_unexpected(self):
        report = compare_rows([{"x": 1}], [{"x": 2}])
        assert not report.matches
        assert len(report.missing) == 1
        assert len(report.unexpected) == 1
        text = report.describe()
        assert "missing" in text and "unexpected" in text

    def test_multiset_semantics(self):
        report = compare_rows([{"x": 1}], [{"x": 1}, {"x": 1}])
        assert not report.matches
        assert len(report.missing) == 1

    def test_describe_truncates(self):
        report = compare_rows([], [{"x": i} for i in range(20)])
        assert "more missing" in report.describe(limit=3)


class TestVerifyWorkload:
    def test_valid_query_verifies(self):
        dyno = Dyno(tables())
        report = verify_workload(
            dyno,
            "SELECT t.v AS v, d.label AS label FROM t, d WHERE t.k = d.k",
        )
        assert report.matches
        assert report.executed_rows == 40

    def test_interpret_helper(self):
        dyno = Dyno(tables())
        spec = dyno.parse(
            "SELECT t.v AS v FROM t, d WHERE t.k = d.k AND d.label = 'L1'"
        )
        rows = interpret(dyno.tables, spec)
        assert len(rows) == 10

    def test_limit_queries_compare_cardinality(self):
        dyno = Dyno(tables())
        report = verify_workload(
            dyno,
            "SELECT t.v AS v, count(*) AS n FROM t, d WHERE t.k = d.k "
            "GROUP BY t.v ORDER BY n DESC LIMIT 2",
        )
        assert report.matches
        assert report.executed_rows == 2

    def test_tpch_workload_verifies(self, dyno_factory):
        from repro.workloads.queries import q9_prime

        workload = q9_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        report = verify_workload(dyno, workload.final_spec)
        assert report.matches, report.describe()
