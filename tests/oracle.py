"""Differential test oracle: fault schedules must be result-invisible.

The paper's fault-tolerance claim (Section 1) is behavioural: because every
MapReduce job checkpoints its output, failures cost *time*, never *answers*.
This module turns that claim into reusable test infrastructure:

* :func:`run_workload` executes one workload query under a given execution
  strategy and config (optionally with an armed
  :class:`~repro.cluster.faults.FaultPlan`);
* :func:`fingerprint` reduces an execution to everything that must be
  *identical* between a faulted and a fault-free run -- result rows, row
  counts and per-block output statistics -- and deliberately excludes
  simulated time, which faults are allowed (expected!) to inflate;
* :func:`fault_matrix` is the standard matrix of adverse schedules every
  future PR can sweep (task flakiness, boundary job kills, node losses of
  materialized outputs, doomed broadcast joins, stragglers, and a chaos
  mix of all of them).

Float values are canonicalized to 6 decimal places: recovery may execute a
different-but-equivalent plan, and floating-point aggregation over a
different arrival order can differ in the last ulps. Row *sets* are
compared (sorted canonical rows): a replanned join may emit the same
multiset in a different file order.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.faults import FaultPlan
from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.dyno import Dyno
from repro.data.tpch import generate_tpch
from repro.workloads.queries import TPCH_WORKLOADS
from repro.workloads.skewed import SKEWED_WORKLOADS, generate_skewed

#: Scale factor for oracle datasets: big enough that Q10/Q2/Q7/Q8' return
#: non-empty results and plans have several joins, small enough that the
#: full query x strategy x plan matrix stays test-suite friendly.
ORACLE_SCALE_FACTOR = 0.1
ORACLE_SEED = 2014

#: The strategy set the acceptance criteria sweep: every Figure 5 dynamic
#: strategy plus all-at-once execution.
ORACLE_STRATEGIES = ("CHEAP-1", "CHEAP-2", "UNC-1", "UNC-2", "ALL")

#: Everything :func:`run_workload` can execute: the paper's TPC-H
#: workloads plus the skewed hot-key workloads (which run against
#: :func:`skewed_oracle_tables`, not the TPC-H dataset).
ORACLE_WORKLOADS = {**TPCH_WORKLOADS, **SKEWED_WORKLOADS}

ORACLE_QUERIES = tuple(sorted(TPCH_WORKLOADS))
SKEWED_ORACLE_QUERIES = tuple(sorted(SKEWED_WORKLOADS))


def oracle_tables():
    """The dataset the oracle runs against (generate once per module)."""
    return generate_tpch(ORACLE_SCALE_FACTOR, seed=ORACLE_SEED).tables


def skewed_oracle_tables():
    """The hot-key dataset for the skew-join sweeps (Zipf(1.2) tail).

    Under the default config its plans contain a skew join, so every
    sweep over :data:`SKEWED_ORACLE_QUERIES` exercises the heavy-key
    side channel, the tail shuffle, and the map-side-output runtime
    path against the same fingerprints as the rest of the oracle.
    """
    return generate_skewed(seed=ORACLE_SEED)


def fault_matrix() -> list[FaultPlan]:
    """The standard adverse schedules (>= 6 distinct plans).

    Covers every injection channel on its own plus one chaos mix:
    - ``task-flaky``: frequent task-attempt failures; occasionally a task
      exhausts its budget, killing the job -> replan/retry recovery.
    - ``job-boundaries``: transient whole-job kills at map/reduce/finalize
      boundaries -> runtime retry with backoff.
    - ``node-loss``: materialized intermediate outputs deleted ->
      provenance-based sub-plan re-execution.
    - ``broadcast-doom``: every broadcast join fails permanently ->
      re-optimization must fall back to repartition joins.
    - ``stragglers``: slowdowns only; never changes results, only time
      (paired with speculative execution in the scheduler tests).
    - ``chaos``: everything at once.
    """
    return [
        FaultPlan(seed=11, name="task-flaky", task_failure_rate=0.25),
        FaultPlan(seed=23, name="job-boundaries", job_failure_rate=0.6,
                  max_job_failures=2),
        FaultPlan(seed=37, name="node-loss", node_loss_rate=0.95,
                  max_node_losses=3),
        FaultPlan(seed=41, name="broadcast-doom",
                  broadcast_failure_rate=1.0),
        FaultPlan(seed=53, name="stragglers", straggler_rate=0.3,
                  straggler_factor=8.0),
        FaultPlan(seed=67, name="chaos", task_failure_rate=0.15,
                  job_failure_rate=0.3, node_loss_rate=0.5,
                  max_node_losses=1, broadcast_failure_rate=0.5,
                  straggler_rate=0.2),
    ]


def plan_named(name: str) -> FaultPlan:
    for plan in fault_matrix():
        if plan.name == name:
            return plan
    raise KeyError(name)


def run_workload(tables, query_name: str, strategy: str = "UNC-1",
                 config: DynoConfig = DEFAULT_CONFIG, mode: str = "dynopt",
                 **execute_kwargs):
    """Execute one workload query end to end; returns ``(dyno, execution)``.

    ``dyno`` is returned alongside the execution so callers can inspect
    the DFS (block output statistics) and the armed fault injector.
    """
    workload = ORACLE_WORKLOADS[query_name]()
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    if len(workload.stages) > 1:
        execution = dyno.execute_multi(workload.stages, mode=mode,
                                       strategy=strategy, **execute_kwargs)
    else:
        execution = dyno.execute(workload.final_spec, mode=mode,
                                 strategy=strategy, name=query_name,
                                 **execute_kwargs)
    return dyno, execution


def faulted_config(plan: FaultPlan, base: DynoConfig = DEFAULT_CONFIG,
                   parallel: bool = False) -> DynoConfig:
    """Config with ``plan`` armed (and optionally the parallel executor)."""
    config = base.with_fault_plan(plan)
    if parallel:
        config = config.with_parallel_execution()
    if plan.straggler_rate > 0.0:
        # Stragglers are countered by speculative execution; turning it on
        # exercises the scheduler's backup-copy modeling under the oracle.
        config = replace(
            config, cluster=replace(config.cluster,
                                    speculative_execution=True))
    return config


def columnar_config(base: DynoConfig = DEFAULT_CONFIG,
                    parallel: bool = False) -> DynoConfig:
    """Config with the columnar batch data path enabled."""
    config = base.with_columnar()
    if parallel:
        config = config.with_parallel_execution()
    return config


def canonical_value(value, float_places: int = 6):
    if isinstance(value, float):
        return round(value, float_places)
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(item, float_places) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, canonical_value(item, float_places))
            for key, item in value.items()
        ))
    return value


def canonical_rows(rows, float_places: int = 6):
    """Order-insensitive canonical form of a row multiset."""
    return sorted(
        tuple(sorted((key, canonical_value(value, float_places))
                     for key, value in row.items()))
        for row in rows
    )


def fingerprint(dyno: Dyno, execution) -> dict:
    """Everything that must match between faulted and fault-free runs.

    Result rows, result cardinality, and per-block output statistics
    (row multiset, row count, materialized bytes). Excludes anything
    time-like: makespans, pilot/optimizer seconds, retry backoff -- the
    *only* thing a fault schedule may change.
    """
    blocks = []
    for block_result in execution.block_results:
        output = block_result.output_file
        rows = dyno.dfs.read_all(output)
        blocks.append({
            "block": block_result.block_name,
            "output_rows": canonical_rows(rows),
            "row_count": len(rows),
            "output_bytes": dyno.dfs.file_size(output),
        })
    return {
        "rows": canonical_rows(execution.rows),
        "row_count": len(execution.rows),
        "blocks": blocks,
    }


def fault_visible_diff(baseline: dict, faulted: dict) -> str:
    """Human-readable first difference between two fingerprints, or ''."""
    if baseline == faulted:
        return ""
    if baseline["row_count"] != faulted["row_count"]:
        return (f"result cardinality changed: {baseline['row_count']} "
                f"-> {faulted['row_count']}")
    if baseline["rows"] != faulted["rows"]:
        return "result rows changed"
    for base_block, fault_block in zip(baseline["blocks"],
                                       faulted["blocks"]):
        for key in ("row_count", "output_bytes", "output_rows"):
            if base_block[key] != fault_block[key]:
                return (f"block {base_block['block']!r} statistics "
                        f"changed: {key}")
    return "fingerprints differ"
