"""Incremental maintenance of standing queries over CDC change batches.

The acceptance property is differential: after EVERY change batch, each
standing query's maintained result must be byte-identical (canonical
6-decimal rows, same notion as tests/oracle.py) to a from-scratch
recompute over the post-change tables -- whichever refresh strategy the
manager picked. The sweep runs across serial/parallel executors, the
row and columnar data paths, and the PR-2 fault matrix, and asserts the
decision rule actually goes both ways (at least one delta refresh and at
least one full recompute per sweep).
"""

from __future__ import annotations

import pytest

from tests.oracle import canonical_rows, columnar_config, fault_matrix, \
    faulted_config
from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.errors import PlanError, SchemaError
from repro.incremental import (
    ChangeGenerator,
    StandingQueryManager,
    apply_change_batch,
    delete_delta_name,
    insert_delta_name,
)
from repro.service import QueryRequest, QueryService
from repro.workloads.changing import (
    DEFAULT_STEPS,
    KEY_COLUMNS,
    changing_tables,
    changing_udfs,
    premium_sessions,
    standing_workloads,
)

SCALE = 0.03
#: smaller dataset for the 6-plan fault sweep (workers=1 is slower).
FAULT_SCALE = 0.02


def fresh_service(scale=SCALE, config=DEFAULT_CONFIG, workers=2,
                  **kwargs) -> QueryService:
    return QueryService(changing_tables(scale), config=config,
                        udfs=changing_udfs(), workers=workers, **kwargs)


def recompute(service: QueryService, workload):
    """From-scratch run of a workload over the service's CURRENT tables."""
    dyno = Dyno(dict(service.dyno.tables), config=service.dyno.config,
                udfs=changing_udfs())
    return dyno.execute_multi(workload.stages).rows


def run_sweep(service: QueryService, steps=DEFAULT_STEPS):
    """Register the standing workloads, apply ``steps``, verify each.

    Returns the total (delta, full) decision counts so callers can
    assert the decision rule exercised both strategies.
    """
    manager = StandingQueryManager(service)
    workloads = standing_workloads()
    for workload in workloads:
        manager.register(workload.name, workload.final_spec)

    generators = {
        table: ChangeGenerator(service.dyno.tables[table], key, seed=2014)
        for table, key in KEY_COLUMNS.items()
    }
    delta_total = full_total = 0
    for step in steps:
        batch = generators[step.table].next_batch(step.change_rate,
                                                 step.mix)
        applied = apply_change_batch(service.dyno, batch,
                                     KEY_COLUMNS[step.table])
        report = manager.refresh(applied)
        assert [o.error for o in report.outcomes] == \
            [None] * len(report.outcomes)
        delta_total += report.delta_count
        full_total += report.full_count
        for workload in workloads:
            maintained = canonical_rows(manager.result(workload.name))
            scratch = canonical_rows(recompute(service, workload))
            assert maintained == scratch, (
                f"{workload.name} diverged after {batch.describe()} "
                f"(strategies: {[o.decision.strategy for o in report.outcomes]})"
            )
    return delta_total, full_total


# ---------------------------------------------------------------------------
# Table.with_changes
# ---------------------------------------------------------------------------


class TestWithChanges:
    def table(self):
        return changing_tables(SCALE)["users"]

    def test_insert_delete_update(self):
        users = self.table()
        before = len(users)
        victim = dict(users.rows[0])
        updated_pre = dict(users.rows[1])
        updated_post = dict(updated_pre, country="ZZ")
        fresh = dict(users.rows[2], userid=999_999)
        changed = users.with_changes(
            "userid", inserts=[fresh], deletes=[victim],
            updates=[(updated_pre, updated_post)],
        )
        assert len(changed) == before  # +1 -1
        by_key = {row["userid"]: row for row in changed.rows}
        assert victim["userid"] not in by_key
        assert by_key[999_999] == fresh
        assert by_key[updated_pre["userid"]]["country"] == "ZZ"
        # the original table object is untouched (immutability contract)
        assert len(users) == before
        assert users.rows[0] == victim

    def test_delete_of_missing_key_raises(self):
        users = self.table()
        ghost = dict(users.rows[0], userid=-1)
        with pytest.raises(SchemaError):
            users.with_changes("userid", deletes=[ghost])

    def test_update_changing_key_raises(self):
        users = self.table()
        pre = dict(users.rows[0])
        post = dict(pre, userid=pre["userid"] + 1)
        with pytest.raises(SchemaError):
            users.with_changes("userid", updates=[(pre, post)])


# ---------------------------------------------------------------------------
# ChangeGenerator
# ---------------------------------------------------------------------------


class TestChangeGenerator:
    def test_deterministic_stream(self):
        streams = []
        for _ in range(2):
            generator = ChangeGenerator(
                changing_tables(SCALE)["pageviews"], "eventid", seed=7
            )
            streams.append([
                generator.next_batch(0.05, (1.0, 1.0, 1.0))
                for _ in range(3)
            ])
        first, second = streams
        assert [b.inserts for b in first] == [b.inserts for b in second]
        assert [b.deletes for b in first] == [b.deletes for b in second]
        assert [b.updates for b in first] == [b.updates for b in second]

    def test_default_mix_is_append_only(self):
        generator = ChangeGenerator(
            changing_tables(SCALE)["pageviews"], "eventid"
        )
        batch = generator.next_batch(0.01)
        assert batch.append_only
        assert batch.inserts and not batch.deletes and not batch.updates

    def test_tiny_rate_still_changes_one_row(self):
        generator = ChangeGenerator(
            changing_tables(SCALE)["users"], "userid"
        )
        assert generator.next_batch(1e-9).change_count == 1

    def test_bad_inputs(self):
        generator = ChangeGenerator(
            changing_tables(SCALE)["users"], "userid"
        )
        with pytest.raises(PlanError):
            generator.next_batch(0.0)
        with pytest.raises(PlanError):
            generator.next_batch(0.1, (0.0, 0.0, 0.0))

    def test_minted_keys_are_fresh(self):
        table = changing_tables(SCALE)["pageviews"]
        generator = ChangeGenerator(table, "eventid", seed=5)
        existing = {row["eventid"] for row in table.rows}
        for _ in range(3):
            batch = generator.next_batch(0.05)
            minted = {row["eventid"] for row in batch.inserts}
            assert len(minted) == len(batch.inserts)
            assert not minted & existing
            existing |= minted


# ---------------------------------------------------------------------------
# apply_change_batch: delta files + statistics fold
# ---------------------------------------------------------------------------


class TestApplyChangeBatch:
    def test_append_only_publishes_insert_delta(self):
        service = fresh_service()
        generator = ChangeGenerator(service.dyno.tables["pageviews"],
                                    "eventid")
        applied = apply_change_batch(service.dyno, generator.next_batch(0.01),
                                     "eventid")
        assert applied.insert_delta == insert_delta_name("pageviews", 0)
        assert applied.delete_delta is None
        delta = service.dyno.tables[applied.insert_delta]
        assert len(delta) == applied.delta_rows
        assert delta.schema == service.dyno.tables["pageviews"].schema

    def test_mixed_batch_publishes_both_sides(self):
        service = fresh_service()
        generator = ChangeGenerator(service.dyno.tables["users"], "userid")
        batch = generator.next_batch(0.1, (0.0, 1.0, 1.0))
        applied = apply_change_batch(service.dyno, batch, "userid")
        assert applied.insert_delta == insert_delta_name("users", 0)
        assert applied.delete_delta == delete_delta_name("users", 0)
        # update = delete preimage + insert postimage on both sides
        assert len(service.dyno.tables[applied.insert_delta]) == \
            len(batch.updates) + len(batch.inserts)
        assert len(service.dyno.tables[applied.delete_delta]) == \
            len(batch.updates) + len(batch.deletes)

    def test_unknown_table_rejected(self):
        service = fresh_service()
        generator = ChangeGenerator(service.dyno.tables["users"], "userid")
        batch = generator.next_batch(0.1)
        ghost = type(batch)("nope", 0, batch.inserts)
        with pytest.raises(PlanError):
            apply_change_batch(service.dyno, ghost, "userid")

    def test_second_batch_uses_fresh_delta_names(self):
        service = fresh_service()
        generator = ChangeGenerator(service.dyno.tables["pageviews"],
                                    "eventid")
        first = apply_change_batch(service.dyno, generator.next_batch(0.01),
                                   "eventid")
        second = apply_change_batch(service.dyno, generator.next_batch(0.01),
                                    "eventid")
        assert first.insert_delta != second.insert_delta
        assert second.insert_delta == insert_delta_name("pageviews", 1)
        # both delta files remain scannable (immutable CDC history)
        assert first.insert_delta in service.dyno.tables
        assert second.insert_delta in service.dyno.tables


# ---------------------------------------------------------------------------
# refresh-strategy decisions
# ---------------------------------------------------------------------------


class TestDecisions:
    def decide(self, service, manager, table, rate, mix=(1.0, 0.0, 0.0)):
        generator = ChangeGenerator(service.dyno.tables[table],
                                    KEY_COLUMNS[table])
        applied = apply_change_batch(
            service.dyno, generator.next_batch(rate, mix),
            KEY_COLUMNS[table],
        )
        report = manager.refresh(applied)
        assert all(o.ok for o in report.outcomes), \
            [o.error for o in report.outcomes]
        return {o.query: o.decision for o in report.outcomes}

    def test_small_append_picks_delta_large_append_picks_full(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        for workload in standing_workloads():
            manager.register(workload.name, workload.final_spec)

        small = self.decide(service, manager, "pageviews", 0.01)
        assert {d.strategy for d in small.values()} == {"delta"}
        assert all(0 < d.ratio <= manager.full_threshold
                   for d in small.values())

        large = self.decide(service, manager, "pageviews", 0.5)
        assert large["WeblogEngagement"].strategy == "full"
        assert large["WeblogEngagement"].ratio > manager.full_threshold

    def test_deletes_force_group_state_full_but_not_pure_joins(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        for workload in standing_workloads():
            manager.register(workload.name, workload.final_spec)
        decided = self.decide(service, manager, "users", 0.05,
                              mix=(0.0, 1.0, 1.0))
        engagement = decided["WeblogEngagement"]
        assert engagement.strategy == "full"
        assert "un-count" in engagement.reason
        assert decided["PremiumSessions"].strategy == "delta"

    def test_avg_aggregate_is_statically_ineligible(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        standing = manager.register("AvgDwell", """
            SELECT u.country AS country, AVG(pv.dwell_ms) AS mean_dwell
            FROM pageviews pv, users u
            WHERE pv.userid = u.userid
            GROUP BY u.country
        """)
        assert standing.ineligible is not None
        assert "avg" in standing.ineligible
        decided = self.decide(service, manager, "pageviews", 0.01)
        assert decided["AvgDwell"].strategy == "full"

    def test_self_join_on_changed_table_forces_full(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        manager.register("SameUserPairs", """
            SELECT a.eventid AS first, b.eventid AS second
            FROM pageviews a, pageviews b
            WHERE a.userid = b.userid AND a.dwell_ms >= 60000
            AND b.dwell_ms >= 60000
        """)
        decided = self.decide(service, manager, "pageviews", 0.01)
        decision = decided["SameUserPairs"]
        assert decision.strategy == "full"
        assert "aliases" in decision.reason

    def test_duplicate_registration_rejected(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        workload = premium_sessions()
        manager.register(workload.name, workload.final_spec)
        with pytest.raises(PlanError):
            manager.register(workload.name, workload.final_spec)

    def test_decisions_are_recorded_per_query(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        workload = premium_sessions()
        manager.register(workload.name, workload.final_spec)
        self.decide(service, manager, "pageviews", 0.01)
        self.decide(service, manager, "users", 0.05, mix=(0.0, 1.0, 1.0))
        standing = manager.queries[workload.name]
        assert len(standing.decisions) == 2
        assert [d.sequence for d in standing.decisions] == [0, 0]


# ---------------------------------------------------------------------------
# the differential oracle
# ---------------------------------------------------------------------------


class TestDifferentialOracle:
    @pytest.mark.parametrize("leg,config,workers", [
        ("serial-row", DEFAULT_CONFIG, 2),
        ("parallel-row", DEFAULT_CONFIG.with_parallel_execution(), 2),
        ("serial-columnar", columnar_config(), 2),
        ("parallel-columnar", columnar_config(parallel=True), 2),
    ], ids=lambda v: v if isinstance(v, str) else "")
    def test_maintained_equals_recompute(self, leg, config, workers):
        service = fresh_service(config=config, workers=workers)
        delta_total, full_total = run_sweep(service)
        assert delta_total >= 1, "decision rule never picked delta"
        assert full_total >= 1, "decision rule never picked full"

    @pytest.mark.parametrize("plan", fault_matrix(),
                             ids=lambda plan: plan.name)
    def test_fault_matrix_legs(self, plan):
        # Fault injection is deterministic only single-threaded.
        service = fresh_service(scale=FAULT_SCALE,
                                config=faulted_config(plan), workers=1)
        delta_total, full_total = run_sweep(service)
        assert delta_total >= 1 and full_total >= 1

    def test_adhoc_requests_ride_the_refresh_batch(self):
        service = fresh_service()
        manager = StandingQueryManager(service)
        workload = premium_sessions()
        manager.register(workload.name, workload.final_spec)
        generator = ChangeGenerator(service.dyno.tables["pageviews"],
                                    "eventid")
        applied = apply_change_batch(service.dyno, generator.next_batch(0.01),
                                     "eventid")
        adhoc = QueryRequest.from_workload(premium_sessions(),
                                           tenant="adhoc")
        report = manager.refresh(applied, adhoc=[adhoc])
        assert len(report.adhoc) == 1 and report.adhoc[0].ok
        assert canonical_rows(report.adhoc[0].rows) == \
            canonical_rows(manager.result(workload.name))


class TestDeleteSubtraction:
    def test_unmatched_delete_rows_are_a_hard_error(self):
        """If the delete-side delta joins to rows the maintained state
        never contained, the state has silently diverged -- refuse to
        paper over it."""
        service = fresh_service()
        manager = StandingQueryManager(service)
        workload = premium_sessions()
        standing = manager.register(workload.name, workload.final_spec)
        with pytest.raises(PlanError, match="diverged"):
            manager._subtract_rows(standing, [
                {"eventid": -1, "country": "XX", "dwell": 1}
            ])


# ---------------------------------------------------------------------------
# result-cache staleness across data changes
# ---------------------------------------------------------------------------


class TestResultCacheFreshness:
    def outcome(self, service, name="PremiumSessions"):
        request = QueryRequest.from_workload(premium_sessions())
        result, = service.run_batch([request])
        assert result.ok, result.error
        return result

    def test_cdc_batch_invalidates_cached_results(self):
        service = fresh_service(workers=1, result_cache=True)
        first = self.outcome(service)
        repeat = self.outcome(service)
        assert repeat.result_cache_hit
        assert canonical_rows(repeat.rows) == canonical_rows(first.rows)

        generator = ChangeGenerator(service.dyno.tables["pageviews"],
                                    "eventid")
        apply_change_batch(service.dyno, generator.next_batch(0.2),
                           "eventid")
        after = self.outcome(service)
        assert not after.result_cache_hit
        assert canonical_rows(after.rows) == \
            canonical_rows(recompute(service, premium_sessions()))

    def test_reregistration_alone_defeats_the_cache(self):
        """Failing-before regression: statistics are lossy, so swapping a
        table's rows WITHOUT touching the metastore used to leave the
        statistics fingerprint -- and therefore the cache key --
        unchanged, and the cache served rows computed over the previous
        contents. The per-table epoch (bumped by every register_table)
        closes the hole."""
        service = fresh_service(workers=1, result_cache=True)
        self.outcome(service)
        assert self.outcome(service).result_cache_hit

        # Swap the table's contents behind the metastore's back: drop a
        # third of pageviews, no statistics invalidation, no delta fold.
        pageviews = service.dyno.tables["pageviews"]
        doomed = pageviews.rows[:len(pageviews.rows) // 3]
        shrunk = pageviews.with_changes("eventid", deletes=doomed)
        service.dyno.register_table("pageviews", shrunk)

        after = self.outcome(service)
        assert not after.result_cache_hit, \
            "cache returned rows for the table's previous contents"
        assert canonical_rows(after.rows) == \
            canonical_rows(recompute(service, premium_sessions()))
