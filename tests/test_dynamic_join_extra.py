"""Dynamic join operator: the filter-first observation path."""

from repro.config import OptimizerConfig
from repro.core.baselines import oracle_leaf_stats
from repro.core.dynamic_join import DynamicJoinExecutor
from repro.optimizer.plans import summarize_plan
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q9_prime


def all_repartition_setup(dyno_factory, selectivity=0.05):
    workload = q9_prime(udf_selectivity=selectivity)
    dyno = dyno_factory(udfs=workload.udfs)
    block = dyno.prepare(workload.final_spec).block
    stats = oracle_leaf_stats(dyno.tables, block)
    plan = JoinOptimizer(
        block, stats, OptimizerConfig(max_broadcast_bytes=8)
    ).optimize().plan
    return dyno, block, plan


class TestFilterFirstObservation:
    def test_filtered_leaves_materialized_before_switch(self, dyno_factory):
        dyno, block, plan = all_repartition_setup(dyno_factory)
        assert summarize_plan(plan).broadcast_joins == 0
        executor = DynamicJoinExecutor(dyno.runtime, dyno.config)
        result = executor.execute_plan(block, plan)
        # Filter jobs materialized the UDF-filtered dimensions, whose
        # observed sizes enabled the broadcast switches.
        assert result.switches >= 2
        filter_outputs = [
            name for name in dyno.dfs.list_files() if ".djf" in name
        ]
        assert filter_outputs

    def test_switch_penalty_accounted(self, dyno_factory):
        from repro.core.dynamic_join import SWITCH_PENALTY_SECONDS

        dyno, block, plan = all_repartition_setup(dyno_factory)
        executor = DynamicJoinExecutor(dyno.runtime, dyno.config)
        result = executor.execute_plan(block, plan)
        assert result.execution_seconds > \
            result.switches * SWITCH_PENALTY_SECONDS

    def test_rows_match_plain_execution(self, dyno_factory):
        dyno_a, block_a, plan_a = all_repartition_setup(dyno_factory)
        plain = dyno_a.executor.execute_physical_plan(block_a, plan_a)
        plain_rows = dyno_a.dfs.read_all(plain.output_file)

        dyno_b, block_b, plan_b = all_repartition_setup(dyno_factory)
        executor = DynamicJoinExecutor(dyno_b.runtime, dyno_b.config)
        dynamic = executor.execute_plan(block_b, plan_b)
        dynamic_rows = dyno_b.dfs.read_all(dynamic.output_file)
        assert len(dynamic_rows) == len(plain_rows)
