"""Physical plan nodes, rendering, summaries."""

import pytest

from repro.errors import PlanError
from repro.jaql.blocks import SOURCE_INTERMEDIATE, SOURCE_TABLE, BlockLeaf
from repro.jaql.expr import Comparison, JoinCondition, ref
from repro.optimizer.plans import (
    BROADCAST,
    REPARTITION,
    PhysJoin,
    PhysLeaf,
    compact_plan,
    plan_signature,
    render_plan,
    summarize_plan,
)


def leaf(alias, table=None, predicates=()):
    block_leaf = BlockLeaf(frozenset((alias,)), SOURCE_TABLE,
                           table or alias, tuple(predicates))
    return PhysLeaf(aliases=frozenset((alias,)), est_rows=10.0,
                    est_bytes=100.0, cost=0.0, leaf=block_leaf)


def join(left, right, method=BROADCAST, chained=False, predicates=()):
    condition = JoinCondition(
        ref(sorted(left.aliases)[0], "k"), ref(sorted(right.aliases)[0], "k")
    )
    return PhysJoin(
        aliases=left.aliases | right.aliases, est_rows=5.0, est_bytes=50.0,
        cost=1.0, method=method, left=left, right=right,
        conditions=(condition,), chained=chained,
        applied_predicates=tuple(predicates),
    )


class TestInvariants:
    def test_leaf_requires_block_leaf(self):
        with pytest.raises(PlanError):
            PhysLeaf(aliases=frozenset(("a",)), est_rows=1.0,
                     est_bytes=1.0, cost=0.0, leaf=None)

    def test_leaf_alias_mismatch_rejected(self):
        block_leaf = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t")
        with pytest.raises(PlanError):
            PhysLeaf(aliases=frozenset(("b",)), est_rows=1.0,
                     est_bytes=1.0, cost=0.0, leaf=block_leaf)

    def test_join_requires_conditions(self):
        with pytest.raises(PlanError):
            PhysJoin(aliases=frozenset(("a", "b")), est_rows=1.0,
                     est_bytes=1.0, cost=0.0, method=BROADCAST,
                     left=leaf("a"), right=leaf("b"), conditions=())

    def test_join_alias_consistency(self):
        condition = JoinCondition(ref("a", "k"), ref("b", "k"))
        with pytest.raises(PlanError):
            PhysJoin(aliases=frozenset(("a", "b", "z")), est_rows=1.0,
                     est_bytes=1.0, cost=0.0, method=BROADCAST,
                     left=leaf("a"), right=leaf("b"),
                     conditions=(condition,))

    def test_only_broadcast_chains(self):
        with pytest.raises(PlanError):
            join(leaf("a"), leaf("b"), method=REPARTITION, chained=True)

    def test_unknown_method_rejected(self):
        with pytest.raises(PlanError):
            join(leaf("a"), leaf("b"), method="sort-merge")


class TestTraversal:
    def test_join_count(self):
        plan = join(join(leaf("a"), leaf("b")), leaf("c"))
        assert plan.join_count() == 2
        assert leaf("z").join_count() == 0

    def test_leaves_in_order(self):
        plan = join(join(leaf("a"), leaf("b")), leaf("c"))
        assert [l.label() for l in plan.leaves()] == ["a", "b", "c"]

    def test_probe_build_aliases(self):
        plan = join(leaf("big"), leaf("small"))
        assert plan.probe.aliases == {"big"}
        assert plan.build.aliases == {"small"}


class TestRendering:
    def test_compact_plan(self):
        plan = join(join(leaf("a"), leaf("b"), method=REPARTITION),
                    leaf("c"), chained=False)
        assert compact_plan(plan) == "((a ./r b) ./b c)"

    def test_chained_marker(self):
        plan = join(join(leaf("a"), leaf("b")), leaf("c"), chained=True)
        assert "./b+" in compact_plan(plan)

    def test_signature_ignores_estimates(self):
        from dataclasses import replace

        plan = join(leaf("a"), leaf("b"))
        altered = replace(plan, est_rows=999.0, cost=123.0)
        assert plan_signature(plan) == plan_signature(altered)

    def test_render_shows_predicates_and_estimates(self):
        pred = Comparison(ref("a", "x"), "=", 1)
        plan = join(leaf("a"), leaf("b"), predicates=(pred,))
        text = render_plan(plan, show_estimates=True)
        assert "then filter (a.x = 1)" in text
        assert "rows" in text

    def test_render_intermediate_leaf(self):
        block_leaf = BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE,
                               "file1")
        node = PhysLeaf(aliases=frozenset(("a", "b")), est_rows=1.0,
                        est_bytes=1.0, cost=0.0, leaf=block_leaf)
        assert "file1" in render_plan(node)


class TestSummary:
    def test_counts(self):
        plan = join(
            join(leaf("a"), leaf("b"), method=REPARTITION),
            leaf("c"), chained=False,
        )
        summary = summarize_plan(plan)
        assert summary.joins == 2
        assert summary.repartition_joins == 1
        assert summary.broadcast_joins == 1
        assert summary.is_left_deep
        assert summary.max_depth == 2

    def test_bushy_detection(self):
        plan = join(leaf("a"), join(leaf("b"), leaf("c")))
        assert not summarize_plan(plan).is_left_deep

    def test_leaf_labels(self):
        plan = join(leaf("x"), leaf("y"))
        assert summarize_plan(plan).leaf_labels == ("x", "y")


class TestPlanDiff:
    def test_identical_plans_no_changes(self):
        from repro.optimizer.plans import plan_diff

        plan = join(leaf("a"), leaf("b"))
        assert plan_diff(plan, plan) == []

    def test_method_flip_reported(self):
        from dataclasses import replace

        from repro.optimizer.plans import plan_diff

        before = join(leaf("a"), leaf("b"), method=REPARTITION)
        after = replace(before, method=BROADCAST)
        changes = plan_diff(before, after)
        assert any("repartition -> broadcast" in c for c in changes)

    def test_chain_change_reported(self):
        from dataclasses import replace

        from repro.optimizer.plans import plan_diff

        inner = join(leaf("a"), leaf("b"))
        before = join(inner, leaf("c"), chained=False)
        after = replace(before, chained=True)
        changes = plan_diff(before, after)
        assert any("now chained" in c for c in changes)

    def test_build_side_swap_reported(self):
        from repro.optimizer.plans import plan_diff

        before = join(leaf("a"), leaf("b"))
        after = join(leaf("b"), leaf("a"))
        changes = plan_diff(before, after)
        assert any("build side" in c for c in changes)

    def test_materialization_reported(self):
        from repro.jaql.blocks import SOURCE_INTERMEDIATE, BlockLeaf
        from repro.optimizer.plans import plan_diff

        inner = join(leaf("a"), leaf("b"))
        before = join(inner, leaf("c"))
        merged = PhysLeaf(
            aliases=frozenset(("a", "b")), est_rows=5.0, est_bytes=50.0,
            cost=0.0,
            leaf=BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE,
                           "t1.out"),
        )
        after = join(merged, leaf("c"))
        changes = plan_diff(before, after)
        assert any("no longer exists" in c for c in changes)
        assert any("materialized as t1.out" in c for c in changes)

    def test_dynopt_iterations_diff_cleanly(self, ):
        """plan_diff narrates a real DYNOPT run without crashing."""
        from repro.core.dyno import Dyno
        from repro.data.tpch import generate_tpch
        from repro.optimizer.plans import plan_diff
        from repro.workloads.queries import q8_prime

        tables = generate_tpch(0.05, seed=2014).tables
        workload = q8_prime()
        from dataclasses import replace as dc_replace

        from repro.config import DEFAULT_CONFIG

        config = dc_replace(
            DEFAULT_CONFIG,
            cluster=dc_replace(DEFAULT_CONFIG.cluster,
                               task_memory_bytes=8 * 1024),
            optimizer=dc_replace(DEFAULT_CONFIG.optimizer,
                                 max_broadcast_bytes=8 * 1024),
        )
        dyno = Dyno(tables, config=config, udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec, mode="dynopt")
        plans = execution.block_results[0].plans
        assert len(plans) >= 2
        narration = plan_diff(plans[0], plans[1])
        assert isinstance(narration, list)
