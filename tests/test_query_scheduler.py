"""Multi-tenant query scheduler and result cache: fairness, identity,
invalidation.

Three claim families from ISSUE 9:

* the deficit-weighted round-robin dispatcher is deterministic,
  per-tenant FIFO, weighted, and starvation-free under adversarial
  priorities;
* the result cache changes timing, never answers: cache on/off runs of
  the oracle workloads are byte-identical, and a recurring identity is
  served without executing;
* cached results invalidate on exactly the statistics-update path that
  invalidates cached plans.
"""

import json
import threading

import pytest

from repro.obs import MemorySink, MetricsRegistry, Tracer
from repro.service import (
    QueryRequest,
    QueryService,
    ResultCache,
    dispatch_order,
)
from repro.workloads.mixed import mixed_batch, mixed_tables
from repro.workloads.queries import q3
from repro.workloads.weblogs import weblog_engagement

SCALE = 0.02
EVENTS = 1200


def small_tables():
    return mixed_tables(SCALE, seed=2014, weblog_events=EVENTS)


def rows_bytes(rows):
    return json.dumps(rows, sort_keys=True, default=str).encode()


def entries_for(spec: dict[str, int], length: int):
    """Interleaved queue: ``length`` requests per tenant at the given
    priorities, submitted round-robin."""
    queue = []
    ticket = 0
    for _position in range(length):
        for tenant, priority in spec.items():
            queue.append((ticket, tenant, priority))
            ticket += 1
    return queue


class TestDispatchOrder:
    def test_single_tenant_is_fifo(self):
        entries = [(t, "a", 1) for t in range(20)]
        assert dispatch_order(entries) == list(range(20))

    def test_every_ticket_dispatched_exactly_once(self):
        entries = entries_for({"a": 1, "b": 7, "c": 3}, 11)
        order = dispatch_order(entries)
        assert sorted(order) == sorted(t for t, _, _ in entries)

    def test_deterministic_given_submission_order(self):
        entries = entries_for({"a": 2, "b": 5, "c": 1}, 9)
        assert dispatch_order(entries) == dispatch_order(entries)

    def test_per_tenant_fifo_is_preserved(self):
        entries = entries_for({"a": 4, "b": 1, "c": 2}, 13)
        order = dispatch_order(entries)
        position = {ticket: index for index, ticket in enumerate(order)}
        for tenant in ("a", "b", "c"):
            tickets = [t for t, owner, _ in entries if owner == tenant]
            dispatched = sorted(tickets, key=lambda t: position[t])
            assert dispatched == tickets, \
                f"tenant {tenant} dispatched out of submission order"

    def test_no_starvation_under_adversarial_priorities(self):
        """A priority-1 tenant behind a priority-100 flood still gets at
        least one dispatch per round: its first query cannot sit behind
        more than one full burst of the flooding tenant."""
        entries = [(t, "flood", 100) for t in range(50)]
        entries += [(50 + t, "meek", 1) for t in range(50)]
        order = dispatch_order(entries)
        first_meek = order.index(50)
        # Round 1: the flood tenant bursts its whole 50-query backlog at
        # priority 100, then the meek tenant must dispatch.
        assert first_meek <= 50
        # And the meek tenant's backlog drains in order afterwards.
        assert [t for t in order if t >= 50] == list(range(50, 100))

    def test_weighted_share_is_proportional(self):
        """Priorities 3:1 with deep backlogs alternate in exact 3:1
        bursts -- the deficit accrues quantum x priority per visit."""
        entries = [(t, "heavy" if t % 2 == 0 else "light",
                    3 if t % 2 == 0 else 1)
                   for t in range(24)]
        order = dispatch_order(entries)
        owners = ["heavy" if t % 2 == 0 else "light" for t in order]
        assert owners[:8] == ["heavy"] * 3 + ["light"] + \
            ["heavy"] * 3 + ["light"]

    def test_equal_priorities_round_robin(self):
        entries = entries_for({"a": 1, "b": 1, "c": 1}, 4)
        order = dispatch_order(entries)
        owners = [entries[t][1] for t in order]
        assert owners == ["a", "b", "c"] * 4

    def test_priority_floor_is_one(self):
        """Zero or negative priorities are clamped, not starved."""
        entries = [(0, "a", 0), (1, "b", -5), (2, "c", 1)]
        order = dispatch_order(entries)
        assert sorted(order) == [0, 1, 2]

    def test_emptied_tenant_forfeits_deficit(self):
        """A tenant with one high-priority query cannot bank the unused
        credit and burst ahead in a later call (anti-hoarding)."""
        deficits = {}
        dispatch_order([(0, "a", 100)], deficits=deficits)
        assert deficits["a"] == 0.0
        # A later round with fresh work starts from zero credit.
        order = dispatch_order(
            [(1, "a", 1), (2, "b", 1), (3, "a", 1)], deficits=deficits)
        assert order == [1, 2, 3]


class TestSchedulerQueue:
    def test_submit_drain_round_trip(self):
        service = QueryService(small_tables(), workers=2)
        scheduler = service.scheduler
        tickets = [scheduler.submit(QueryRequest.from_workload(q3())),
                   scheduler.submit(
                       QueryRequest.from_workload(weblog_engagement()))]
        assert scheduler.queue_depth() == 2
        outcomes = scheduler.drain(tickets)
        assert scheduler.queue_depth() == 0
        assert [o.error for o in outcomes] == [None, None]
        assert [o.index for o in outcomes] == [0, 1]

    def test_scoped_drain_leaves_other_submissions_queued(self):
        service = QueryService(small_tables(), workers=1)
        scheduler = service.scheduler
        mine = scheduler.submit(QueryRequest.from_workload(q3()))
        other = scheduler.submit(QueryRequest.from_workload(q3()))
        outcomes = scheduler.drain([mine])
        assert len(outcomes) == 1 and outcomes[0].ok
        assert scheduler.queue_depth() == 1
        leftovers = scheduler.drain()
        assert len(leftovers) == 1 and leftovers[0].ok
        assert leftovers[0].index == other

    def test_outcomes_return_in_submission_order_not_dispatch_order(self):
        """Tenant weights reorder dispatch; the caller still sees its
        submission order, with per-outcome tenant attribution."""
        service = QueryService(small_tables(), workers=2)
        requests = [QueryRequest.from_workload(
            q3(), tenant=f"t{i % 3}", priority=3 - i % 3)
            for i in range(6)]
        outcomes = service.run_batch(requests)
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.tenant for o in outcomes] == \
            [f"t{i % 3}" for i in range(6)]
        assert len({rows_bytes(o.rows) for o in outcomes}) == 1

    def test_concurrent_submitters_never_steal_outcomes(self):
        service = QueryService(small_tables(), workers=2)
        barrier = threading.Barrier(3)
        results = {}

        def client(key):
            barrier.wait()
            request = QueryRequest.from_workload(
                q3(), tenant=f"client-{key}")
            results[key] = service.run_batch([request])

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for key, outcomes in results.items():
            assert len(outcomes) == 1
            assert outcomes[0].tenant == f"client-{key}"
        assert len({rows_bytes(o[0].rows)
                    for o in results.values()}) == 1

    def test_run_sustained_drains_everything_in_order(self):
        service = QueryService(small_tables(), workers=2,
                               result_cache=True)
        requests = [QueryRequest.from_workload(
            q3(), tenant=f"t{i % 3}") for i in range(9)]
        outcomes = service.scheduler.run_sustained(requests, qps=200)
        assert [o.index for o in outcomes] == sorted(o.index
                                                     for o in outcomes)
        assert len(outcomes) == 9
        assert all(o.ok for o in outcomes)
        assert all(o.latency_seconds >= o.wait_seconds >= 0.0
                   for o in outcomes)

    def test_queue_depth_and_wait_metrics_are_recorded(self):
        metrics = MetricsRegistry()
        service = QueryService(small_tables(), workers=1,
                               metrics=metrics)
        service.run_batch([
            QueryRequest.from_workload(q3(), tenant="acme"),
            QueryRequest.from_workload(q3(), tenant="umbrella"),
        ])
        summary = metrics.summary()
        assert summary["observations"]["service.queue_depth"]["count"] > 0
        assert summary["counters"]["service.tenant_waits"] == 2
        assert "service.tenant_wait_s.acme" in summary["observations"]
        assert "service.tenant_wait_s.umbrella" in summary["observations"]

    def test_tenant_and_ticket_reach_the_tracer(self):
        sink = MemorySink()
        service = QueryService(small_tables(), tracer=Tracer(sink),
                               workers=1)
        service.run_batch([QueryRequest.from_workload(
            q3(), tenant="acme", priority=2)])
        submits = [r for r in sink.records
                   if r["kind"] == "event"
                   and r["name"] == "service.submit"]
        admits = [r for r in sink.records
                  if r["kind"] == "event"
                  and r["name"] == "service.admit"]
        assert submits[0]["attrs"]["tenant"] == "acme"
        assert submits[0]["attrs"]["priority"] == 2
        assert admits[0]["attrs"]["tenant"] == "acme"
        assert isinstance(admits[0]["attrs"]["ticket"], int)


class TestResultCacheDifferential:
    """Cache on/off byte-identity across the oracle workloads -- the
    existing differential standard extended to the result cache."""

    @pytest.fixture(scope="class")
    def differential(self):
        requests, udfs = mixed_batch()
        baseline_service = QueryService(small_tables(), udfs=udfs,
                                        workers=2)
        baseline = baseline_service.run_batch(requests)

        requests2, udfs2 = mixed_batch()
        cached_service = QueryService(small_tables(), udfs=udfs2,
                                      workers=2, result_cache=True)
        first = cached_service.run_batch(requests2)
        requests3, _ = mixed_batch()
        second = cached_service.run_batch(requests3)
        return baseline, first, second, cached_service

    def test_cache_on_off_byte_identical(self, differential):
        baseline, first, second, _ = differential
        assert [o.error for o in baseline] == [None] * 7
        assert [rows_bytes(o.rows) for o in first] == \
            [rows_bytes(o.rows) for o in baseline]
        assert [rows_bytes(o.rows) for o in second] == \
            [rows_bytes(o.rows) for o in baseline]

    def test_recurrences_hit_without_executing(self, differential):
        _, first, second, service = differential
        assert all(o.result_cache_hit for o in second)
        assert all(o.execution is None for o in second)
        assert service.result_cache.hits >= 7
        assert not first[0].result_cache_hit

    def test_copy_on_read_protects_the_cache(self):
        service = QueryService(small_tables(), workers=1,
                               result_cache=True)
        service.run_batch([QueryRequest.from_workload(q3())])
        (hit,) = service.run_batch([QueryRequest.from_workload(q3())])
        assert hit.result_cache_hit
        hit.rows[0]["poisoned"] = True
        (again,) = service.run_batch([QueryRequest.from_workload(q3())])
        assert again.result_cache_hit
        assert "poisoned" not in again.rows[0]


class TestResultCacheInvalidation:
    def contributing_signature(self, service):
        names = [s for s in service.metastore
                 if s.startswith("table:customer")]
        assert names
        return names[0]

    def test_results_invalidate_exactly_when_plans_do(self):
        """One statistics put must evict both the dependent plans and
        the dependent results -- same listener path, same trigger."""
        service = QueryService(small_tables(), workers=1,
                               result_cache=True)
        service.run_batch([QueryRequest.from_workload(q3())])
        assert len(service.result_cache) > 0
        assert len(service.plan_cache) > 0

        # Non-base signatures (intermediate scratch) touch neither cache.
        signature = self.contributing_signature(service)
        service.metastore.put("intermediate:scratch.out",
                              service.metastore.get(signature))
        assert service.result_cache.invalidations == 0
        assert service.plan_cache.invalidations == 0

        # A contributing base-leaf update evicts from both.
        service.metastore.put(signature,
                              service.metastore.get(signature))
        assert service.result_cache.invalidations > 0
        assert service.plan_cache.invalidations > 0
        assert len(service.result_cache) == 0

    def test_stale_identity_misses_and_recomputes_correctly(self):
        service = QueryService(small_tables(), workers=1,
                               result_cache=True)
        (first,) = service.run_batch([QueryRequest.from_workload(q3())])
        signature = self.contributing_signature(service)
        service.metastore.put(signature,
                              service.metastore.get(signature))
        (second,) = service.run_batch([QueryRequest.from_workload(q3())])
        assert not second.result_cache_hit
        assert rows_bytes(second.rows) == rows_bytes(first.rows)


class TestResultCacheUnit:
    def test_lru_capacity_per_shard(self):
        cache = ResultCache(max_entries=4, shards=1)
        for key in "abcdef":
            cache.store(key, [{"k": key}], frozenset({"table:t"}))
        assert len(cache) == 4
        assert cache.lookup("a") is None
        assert cache.lookup("f") == [{"k": "f"}]

    def test_summary_aggregates_shards(self):
        cache = ResultCache(max_entries=64, shards=4)
        for index in range(16):
            cache.store(f"key-{index}", [], frozenset())
        summary = cache.summary()
        assert summary["entries"] == 16
        assert summary["shards"] == 4

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
