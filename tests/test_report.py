"""Experiment report generator."""

from repro.bench.harness import ExperimentTable
from repro.bench.report import (
    EXPERIMENT_SEQUENCE,
    _as_markdown_table,
    _config_fingerprint,
    generate_report,
)
from repro.config import DEFAULT_CONFIG


class TestRendering:
    def test_markdown_table(self):
        table = ExperimentTable("T", "demo", ["A", "B"],
                                [["x", 1.5], ["y", 2]],
                                notes=["hello"])
        text = _as_markdown_table(table)
        assert "### T: demo" in text
        assert "| A | B |" in text
        assert "| x | 1.50 |" in text
        assert "> hello" in text

    def test_config_fingerprint_lists_sections(self):
        text = _config_fingerprint(DEFAULT_CONFIG)
        for needle in ("[cluster]", "[optimizer]", "[pilot]",
                       "job_startup_seconds", "backend = jaql"):
            assert needle in text

    def test_sequence_covers_every_paper_artifact(self):
        titles = {title for title, _, _ in EXPERIMENT_SEQUENCE}
        assert "Table 1" in titles
        for figure in range(2, 9):
            assert any(t.startswith(f"Figure {figure}") for t in titles)


class TestGenerate:
    def test_single_experiment_report(self):
        report = generate_report(only={"Table 1"})
        assert report.startswith("# DYNO reproduction")
        assert "Relative execution time of PILR" in report
        # The others were skipped.
        assert "UDF selectivity" not in report

    def test_markdown_writes_to_disk(self, tmp_path):
        from repro.bench.report import main

        output = tmp_path / "report.md"
        code = main(["--output", str(output), "--only", "Table 1"])
        assert code == 0
        assert output.exists()
        assert "# DYNO reproduction" in output.read_text()
