"""Observability layer: tracer, metrics, and the trace-event schema."""

import json
import threading

import pytest

from repro.core.dyno import Dyno
from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.obs import (JsonLinesSink, MemorySink, MetricsRegistry,
                       NULL_METRICS, NULL_TRACER, Tracer, q_error)

RECORD_KEYS = {"ts", "seq", "kind", "name", "attrs"}


class TestTracer:
    def test_span_brackets_interval(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", phase="test") as span:
            span.set(cost=42)
        start, end = sink.records
        assert start["kind"] == "span_start" and start["name"] == "work"
        assert end["kind"] == "span_end"
        assert start["span"] == end["span"]
        assert end["dur_s"] >= 0.0
        # Attributes set mid-span land on span_end.
        assert end["attrs"]["cost"] == 42
        assert end["attrs"]["phase"] == "test"

    def test_event_is_a_point_record(self):
        sink = MemorySink()
        Tracer(sink).event("fault", detail="x")
        (record,) = sink.records
        assert record["kind"] == "event"
        assert record["attrs"] == {"detail": "x"}
        assert "span" not in record

    def test_name_can_also_be_an_attribute(self):
        # span()/event() take the record name positionally, so callers can
        # attach an attr literally called "name" (Dyno does, for queries).
        sink = MemorySink()
        Tracer(sink).event("query", name="Q10")
        assert sink.records[0]["name"] == "query"
        assert sink.records[0]["attrs"]["name"] == "Q10"

    def test_exception_recorded_on_span_end(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        end = sink.records[-1]
        assert end["kind"] == "span_end"
        assert end["attrs"]["error"] == "ValueError"

    def test_seq_dense_and_ts_monotonic(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        for index in range(5):
            tracer.event("tick", index=index)
        seqs = [record["seq"] for record in sink.records]
        assert seqs == [0, 1, 2, 3, 4]
        stamps = [record["ts"] for record in sink.records]
        assert stamps == sorted(stamps)

    def test_thread_safe_emission(self):
        sink = MemorySink()
        tracer = Tracer(sink)

        def worker(tag):
            for _ in range(50):
                tracer.event("tick", tag=tag)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sink.records) == 200
        assert sorted(r["seq"] for r in sink.records) == list(range(200))

    def test_json_lines_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(path))
        with tracer.span("outer"):
            tracer.event("inner", value=1.5)
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["span_start", "event",
                                                "span_end"]

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as span:
            span.set(y=2)
        NULL_TRACER.event("anything")
        NULL_TRACER.close()  # no sink to close; must not raise


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100.0, 100.0) == pytest.approx(1.0)

    def test_symmetric(self):
        assert q_error(10.0, 1000.0) == q_error(1000.0, 10.0) \
            == pytest.approx(100.0)

    def test_never_below_one(self):
        assert q_error(0.0, 0.0) == pytest.approx(1.0)
        assert q_error(0.0, 5.0) == pytest.approx(5.0)
        assert q_error(5.0, 0.0) == pytest.approx(5.0)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("jobs")
        metrics.inc("jobs", 2)
        assert metrics.counter("jobs") == 3

    def test_observations_track_distribution(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("latency", value)
        stats = metrics.observation("latency")
        assert stats["count"] == 3
        assert stats["total"] == pytest.approx(6.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_summary_and_save(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.inc("n")
        metrics.observe("x", 4.0)
        path = tmp_path / "metrics.json"
        metrics.save(path)
        summary = json.loads(path.read_text())
        assert summary == metrics.summary()
        assert summary["counters"]["n"] == 1
        assert summary["observations"]["x"]["mean"] == 4.0

    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("n")
        NULL_METRICS.observe("x", 1.0)
        assert NULL_METRICS.summary() == {"counters": {},
                                          "observations": {}}
        with pytest.raises(ValueError):
            NULL_METRICS.save("anywhere.json")


def small_tables():
    nation = Table("nation", Schema.of(nk=INT, rk=INT, nname=STRING), [
        {"nk": i, "rk": i % 3, "nname": f"N{i}"} for i in range(9)
    ])
    region = Table("region", Schema.of(rk=INT, rname=STRING), [
        {"rk": i, "rname": f"R{i}"} for i in range(3)
    ])
    return {"nation": nation, "region": region}


SQL = ("SELECT n.nname AS nname, r.rname AS rname "
       "FROM nation n, region r WHERE n.rk = r.rk")


class TestTraceSchema:
    """Every emitted record round-trips through JSON and follows the
    documented schema, for a real end-to-end DYNOPT run."""

    def run_traced(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        metrics = MetricsRegistry()
        dyno = Dyno(small_tables(), tracer=tracer, metrics=metrics)
        execution = dyno.execute(SQL, mode="dynopt", name="schema-test")
        return execution, sink.records, metrics

    def test_every_record_round_trips_through_json(self):
        _, records, _ = self.run_traced()
        assert records
        for record in records:
            clone = json.loads(json.dumps(record, sort_keys=True,
                                          default=str))
            assert clone == record, record

    def test_records_follow_schema(self):
        _, records, _ = self.run_traced()
        for record in records:
            assert RECORD_KEYS <= set(record), record
            assert record["kind"] in ("span_start", "span_end", "event")
            assert isinstance(record["name"], str) and record["name"]
            assert isinstance(record["attrs"], dict)
            if record["kind"] in ("span_start", "span_end"):
                assert isinstance(record["span"], int)
            if record["kind"] == "span_end":
                assert record["dur_s"] >= 0.0
        seqs = [record["seq"] for record in records]
        assert seqs == list(range(len(records)))

    def test_spans_balance(self):
        _, records, _ = self.run_traced()
        starts = {r["span"] for r in records if r["kind"] == "span_start"}
        ends = {r["span"] for r in records if r["kind"] == "span_end"}
        assert starts == ends

    def test_lifecycle_names_present(self):
        _, records, _ = self.run_traced()
        names = {record["name"] for record in records}
        assert {"query", "block", "optimize", "execute", "job",
                "schedule", "batch"} <= names

    def test_estimate_events_carry_q_errors(self):
        _, records, metrics = self.run_traced()
        estimates = [r for r in records if r["name"] == "estimate"]
        for record in estimates:
            attrs = record["attrs"]
            assert attrs["q_error_rows"] >= 1.0
            assert attrs["q_error_bytes"] >= 1.0
            assert attrs["actual_rows"] >= 0
        if estimates:
            assert metrics.observation("qerror.rows")["count"] == \
                len(estimates)

    def test_job_events_separate_sim_and_wall_time(self):
        _, records, _ = self.run_traced()
        jobs = [r for r in records if r["name"] == "job"]
        assert jobs
        for record in jobs:
            attrs = record["attrs"]
            assert attrs["sim_elapsed_s"] > 0.0
            assert attrs["driver_wall_s"] >= 0.0
            # Simulated cluster time dwarfs driver wall time by design.
            assert attrs["sim_elapsed_s"] != attrs["driver_wall_s"]

    def test_tracing_does_not_change_results(self):
        traced, _, _ = self.run_traced()
        plain = Dyno(small_tables()).execute(SQL, mode="dynopt",
                                             name="schema-test")
        assert traced.rows == plain.rows
