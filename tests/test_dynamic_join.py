"""Dynamic join operator (Section 8 future-work extension)."""

from repro.core.baselines import oracle_leaf_stats, relopt_plan
from repro.core.dynamic_join import DynamicJoinExecutor
from repro.optimizer.plans import summarize_plan
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q9_prime, q10
from tests.conftest import assert_same_rows


def executor_for(dyno):
    return DynamicJoinExecutor(dyno.runtime, dyno.config)


def optimized_plan(dyno, block, stats=None):
    stats = stats or oracle_leaf_stats(dyno.tables, block)
    return JoinOptimizer(block, stats, dyno.config.optimizer).optimize().plan


class TestExecution:
    def test_results_match_plain_execution(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        plan = optimized_plan(dyno, block)
        plain = dyno.executor.execute_physical_plan(block, plan)
        plain_rows = dyno.dfs.read_all(plain.output_file)

        dyno2 = dyno_factory(udfs=workload.udfs)
        block2 = dyno2.prepare(workload.final_spec).block
        plan2 = optimized_plan(dyno2, block2)
        dynamic = executor_for(dyno2).execute_plan(block2, plan2)
        dynamic_rows = dyno2.dfs.read_all(dynamic.output_file)
        assert_same_rows(dynamic_rows, plain_rows)

    def test_switches_conservative_repartition_plan(self, dyno_factory):
        """RELOPT's UDF-blind plan repartitions dimensions that actually
        fit in memory; the dynamic operator flips them at runtime."""
        workload = q9_prime(udf_selectivity=0.001)
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        plan, _ = relopt_plan(block, dyno.tables, dyno.config)
        assert summarize_plan(plan).repartition_joins >= 2
        result = executor_for(dyno).execute_plan(block, plan)
        assert result.switches >= 1
        assert result.output_file

    def test_switching_saves_time_on_all_repartition_plan(
            self, dyno_factory):
        """An ultra-conservative plan (everything repartitioned) executed
        with dynamic switching beats the same plan executed as planned:
        the runtime discovers the inputs actually fit in memory."""
        from repro.config import OptimizerConfig

        workload = q9_prime(udf_selectivity=0.05)

        def all_repartition_plan(dyno, block):
            stats = oracle_leaf_stats(dyno.tables, block)
            conservative = OptimizerConfig(max_broadcast_bytes=8)
            return JoinOptimizer(block, stats, conservative).optimize().plan

        dyno_a = dyno_factory(udfs=workload.udfs)
        block_a = dyno_a.prepare(workload.final_spec).block
        plan_a = all_repartition_plan(dyno_a, block_a)
        assert summarize_plan(plan_a).broadcast_joins == 0
        plain = dyno_a.executor.execute_physical_plan(block_a, plan_a,
                                                      strategy="SIMPLE_SO")

        dyno_b = dyno_factory(udfs=workload.udfs)
        block_b = dyno_b.prepare(workload.final_spec).block
        plan_b = all_repartition_plan(dyno_b, block_b)
        dynamic = executor_for(dyno_b).execute_plan(block_b, plan_b)

        assert dynamic.switches >= 2
        assert dynamic.execution_seconds < plain.execution_seconds

    def test_no_switch_when_nothing_fits(self, dyno_factory):
        from dataclasses import replace

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        # Shrink task memory so nothing can ever switch.
        dyno.config = replace(
            dyno.config,
            cluster=replace(dyno.config.cluster, task_memory_bytes=8),
        )
        block = dyno.prepare(workload.final_spec).block
        stats = oracle_leaf_stats(dyno.tables, block)
        from repro.config import OptimizerConfig

        plan = JoinOptimizer(
            block, stats, OptimizerConfig(max_broadcast_bytes=8)
        ).optimize().plan
        assert summarize_plan(plan).repartition_joins >= 1
        executor = DynamicJoinExecutor(dyno.runtime, dyno.config)
        result = executor.execute_plan(block, plan)
        assert result.switches == 0
        assert result.output_file

    def test_plan_signatures_recorded(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        plan = optimized_plan(dyno, block)
        result = executor_for(dyno).execute_plan(block, plan)
        assert len(result.plan_signatures) >= 1
        assert result.jobs_run >= 1
