"""Slot scheduler: waves, FIFO sharing, dependencies, makespan bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scheduler import ScheduledJob, SlotScheduler
from repro.errors import JobError


def schedule(jobs, map_slots=4, reduce_slots=2):
    return SlotScheduler(map_slots, reduce_slots).schedule(jobs)


class TestSingleJob:
    def test_map_only_single_wave(self):
        result = schedule([
            ScheduledJob("j", [10.0] * 4, startup_seconds=5.0)
        ])
        assert result.makespan == pytest.approx(15.0)

    def test_map_only_two_waves(self):
        result = schedule([
            ScheduledJob("j", [10.0] * 8, startup_seconds=5.0)
        ])
        assert result.makespan == pytest.approx(25.0)

    def test_reduce_starts_after_all_maps(self):
        result = schedule([
            ScheduledJob("j", [10.0, 20.0], [7.0], startup_seconds=0.0)
        ])
        # maps finish at 20, reduce runs 7 -> 27
        assert result.makespan == pytest.approx(27.0)
        timeline = result.timelines["j"]
        assert timeline.map_finish_time == pytest.approx(20.0)
        assert timeline.finish_time == pytest.approx(27.0)

    def test_job_with_no_tasks_finishes_at_startup(self):
        result = schedule([ScheduledJob("j", [], startup_seconds=3.0)])
        assert result.makespan == pytest.approx(3.0)

    def test_elapsed_includes_startup(self):
        result = schedule([
            ScheduledJob("j", [1.0], startup_seconds=15.0)
        ])
        assert result.timelines["j"].elapsed == pytest.approx(16.0)


class TestBatch:
    def test_parallel_jobs_share_slots(self):
        # Two jobs of 4 tasks each on 4 slots: FIFO means job a's wave runs
        # first, then job b's.
        result = schedule([
            ScheduledJob("a", [10.0] * 4),
            ScheduledJob("b", [10.0] * 4),
        ])
        assert result.makespan == pytest.approx(20.0)
        assert result.timelines["a"].finish_time <= \
            result.timelines["b"].finish_time

    def test_independent_jobs_overlap(self):
        result = schedule([
            ScheduledJob("a", [10.0] * 2),
            ScheduledJob("b", [10.0] * 2),
        ])
        # 4 tasks over 4 slots: one wave.
        assert result.makespan == pytest.approx(10.0)

    def test_dependency_serializes(self):
        result = schedule([
            ScheduledJob("a", [10.0]),
            ScheduledJob("b", [10.0], depends_on=["a"]),
        ])
        assert result.makespan == pytest.approx(20.0)
        assert (result.timelines["b"].ready_time
                == result.timelines["a"].finish_time)

    def test_dependent_startup_after_dependency(self):
        result = schedule([
            ScheduledJob("a", [10.0], startup_seconds=5.0),
            ScheduledJob("b", [10.0], startup_seconds=5.0,
                         depends_on=["a"]),
        ])
        assert result.makespan == pytest.approx(30.0)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(JobError):
            schedule([ScheduledJob("a", [1.0], depends_on=["ghost"])])

    def test_cycle_rejected(self):
        with pytest.raises(JobError):
            schedule([
                ScheduledJob("a", [1.0], depends_on=["b"]),
                ScheduledJob("b", [1.0], depends_on=["a"]),
            ])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(JobError):
            schedule([ScheduledJob("a", [1.0]), ScheduledJob("a", [1.0])])

    def test_empty_batch(self):
        assert schedule([]).makespan == 0.0

    def test_bad_slot_counts_rejected(self):
        with pytest.raises(JobError):
            SlotScheduler(0, 1)

    def test_reduce_slots_limit_parallelism(self):
        result = schedule(
            [ScheduledJob("j", [1.0], [10.0] * 4)],
            map_slots=4, reduce_slots=2,
        )
        # 4 reduces over 2 slots: two waves of 10s after 1s of map.
        assert result.makespan == pytest.approx(21.0)


@st.composite
def job_batches(draw):
    count = draw(st.integers(1, 5))
    jobs = []
    for index in range(count):
        maps = draw(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=6))
        reduces = draw(st.lists(st.floats(0.1, 10.0), max_size=3))
        deps = []
        if index and draw(st.booleans()):
            deps = [f"j{draw(st.integers(0, index - 1))}"]
        jobs.append(ScheduledJob(f"j{index}", maps, reduces,
                                 startup_seconds=draw(st.floats(0, 5)),
                                 depends_on=deps))
    return jobs


class TestMakespanProperties:
    @given(job_batches(), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, jobs, map_slots, reduce_slots):
        result = SlotScheduler(map_slots, reduce_slots).schedule(jobs)
        total_work = sum(
            sum(job.map_durations) + sum(job.reduce_durations)
            + job.startup_seconds
            for job in jobs
        )
        # Serial upper bound: everything back to back.
        assert result.makespan <= total_work + 1e-6
        # Lower bound: the longest single job's critical path.
        for job in jobs:
            critical = (job.startup_seconds
                        + (max(job.map_durations) if job.map_durations else 0)
                        + (max(job.reduce_durations)
                           if job.reduce_durations else 0))
            assert result.timelines[job.job_id].finish_time >= critical - 1e-6

    @given(job_batches())
    @settings(max_examples=40, deadline=None)
    def test_more_slots_never_slower(self, jobs):
        small = SlotScheduler(2, 2).schedule(jobs).makespan
        large = SlotScheduler(16, 16).schedule(jobs).makespan
        assert large <= small + 1e-6

    @given(job_batches())
    @settings(max_examples=40, deadline=None)
    def test_dependencies_respected(self, jobs):
        result = SlotScheduler(4, 4).schedule(jobs)
        for job in jobs:
            for dep in job.depends_on:
                assert (result.timelines[job.job_id].ready_time
                        >= result.timelines[dep].finish_time - 1e-6)


class TestFairPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(JobError):
            SlotScheduler(2, 2, policy="lottery")

    def test_fair_interleaves_jobs(self):
        jobs = [
            ScheduledJob("a", [10.0] * 4),
            ScheduledJob("b", [10.0] * 4),
        ]
        fifo = SlotScheduler(4, 2, policy="fifo").schedule(jobs)
        fair = SlotScheduler(4, 2, policy="fair").schedule(jobs)
        # FIFO: a's wave first (a finishes at 10, b at 20). Fair: both get
        # 2 slots per wave and finish together at 20.
        assert fifo.timelines["a"].finish_time == pytest.approx(10.0)
        assert fair.timelines["a"].finish_time == pytest.approx(20.0)
        assert fair.timelines["b"].finish_time == pytest.approx(20.0)

    def test_fair_same_makespan_when_saturated(self):
        jobs = [
            ScheduledJob("a", [5.0] * 6),
            ScheduledJob("b", [5.0] * 6),
        ]
        fifo = SlotScheduler(3, 1, policy="fifo").schedule(jobs).makespan
        fair = SlotScheduler(3, 1, policy="fair").schedule(jobs).makespan
        assert fifo == pytest.approx(fair)

    @given(job_batches())
    @settings(max_examples=30, deadline=None)
    def test_fair_respects_dependencies_too(self, jobs):
        result = SlotScheduler(4, 4, policy="fair").schedule(jobs)
        for job in jobs:
            for dep in job.depends_on:
                assert (result.timelines[job.job_id].ready_time
                        >= result.timelines[dep].finish_time - 1e-6)

class TestReduceOnlyJobs:
    """Regression: a job with reduces but no maps used to raise JobError
    (the job_start branch returned before enqueueing its reduce tasks, so
    the event loop drained with the job unfinished)."""

    def test_reduce_only_job_completes(self):
        result = schedule([ScheduledJob("j", [], [5.0])])
        assert result.makespan == pytest.approx(5.0)
        timeline = result.timelines["j"]
        assert timeline.map_finish_time == pytest.approx(0.0)
        assert timeline.finish_time == pytest.approx(5.0)

    def test_reduce_only_with_startup(self):
        result = schedule([
            ScheduledJob("j", [], [5.0, 7.0], startup_seconds=3.0)
        ])
        # Maps vacuously finish at startup; reduces run 3 -> 10.
        assert result.makespan == pytest.approx(10.0)

    def test_reduce_only_respects_reduce_slots(self):
        result = schedule([ScheduledJob("j", [], [4.0] * 4)],
                          reduce_slots=2)
        # 4 reduces over 2 slots: two waves.
        assert result.makespan == pytest.approx(8.0)

    def test_dependency_on_reduce_only_job(self):
        result = schedule([
            ScheduledJob("a", [], [6.0]),
            ScheduledJob("b", [2.0], depends_on=["a"]),
        ])
        assert result.makespan == pytest.approx(8.0)
        assert (result.timelines["b"].ready_time
                == result.timelines["a"].finish_time)

    def test_reduce_only_under_fair_policy(self):
        jobs = [
            ScheduledJob("a", [], [5.0] * 2),
            ScheduledJob("b", [], [5.0] * 2),
        ]
        fifo = SlotScheduler(4, 2, policy="fifo").schedule(jobs)
        fair = SlotScheduler(4, 2, policy="fair").schedule(jobs)
        assert fifo.timelines["a"].finish_time == pytest.approx(5.0)
        assert fair.timelines["a"].finish_time == pytest.approx(10.0)
        assert fifo.makespan == fair.makespan == pytest.approx(10.0)


class TestSpeculativeEdgeCases:
    def test_reduce_only_with_speculation(self):
        # median 1, cap 3*1+1 = 4: the 30s straggler is capped at 4.
        result = SlotScheduler(4, 4, speculative=True).schedule([
            ScheduledJob("j", [], [1.0, 1.0, 30.0])
        ])
        assert result.makespan == pytest.approx(4.0)

    def test_map_only_with_speculation(self):
        result = SlotScheduler(4, 4, speculative=True).schedule([
            ScheduledJob("j", [1.0, 1.0, 30.0])
        ])
        assert result.makespan == pytest.approx(4.0)

    def test_single_task_below_speculation_minimum(self):
        # Fewer than 3 tasks: no median, nothing speculated.
        result = SlotScheduler(4, 4, speculative=True).schedule([
            ScheduledJob("j", [30.0])
        ])
        assert result.makespan == pytest.approx(30.0)

    def test_empty_durations_with_speculation(self):
        result = SlotScheduler(4, 4, speculative=True).schedule([
            ScheduledJob("j", [], [], startup_seconds=3.0)
        ])
        assert result.makespan == pytest.approx(3.0)

    def test_zero_median_durations_not_speculated(self):
        result = SlotScheduler(4, 4, speculative=True).schedule([
            ScheduledJob("j", [0.0, 0.0, 9.0])
        ])
        assert result.makespan == pytest.approx(9.0)

    def test_speculative_fair_reduce_only_batch(self):
        result = SlotScheduler(4, 2, policy="fair",
                               speculative=True).schedule([
            ScheduledJob("a", [], [1.0, 1.0, 30.0]),
            ScheduledJob("b", [], [2.0]),
        ])
        assert result.timelines["a"].finish_time <= 30.0
        assert result.timelines["b"].finish_time >= 2.0


class TestRuntimeConfig:
    def test_runtime_honours_config_policy(self):
        from repro.cluster.runtime import ClusterRuntime
        from repro.config import ClusterConfig, DynoConfig
        from repro.storage.dfs import DistributedFileSystem

        config = DynoConfig(cluster=ClusterConfig(scheduler_policy="fair"))
        runtime = ClusterRuntime(DistributedFileSystem(1024), config)
        assert runtime.scheduler.policy == "fair"
