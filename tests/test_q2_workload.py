"""Q2's two-block pipeline in depth (the multi-block machinery)."""

import pytest

from repro.workloads.queries import q2


class TestInnerBlock:
    def test_inner_finds_minimum_costs(self, dyno_factory, tpch_tables):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        inner_spec, _ = workload.stages[0]
        execution = dyno.execute(inner_spec, name="inner")

        # Oracle: minimum European supply cost per part.
        europe_nations = {
            row["n_nationkey"] for row in tpch_tables["nation"].rows
            if any(region["r_regionkey"] == row["n_regionkey"]
                   and region["r_name"] == "EUROPE"
                   for region in tpch_tables["region"].rows)
        }
        europe_suppliers = {
            row["s_suppkey"] for row in tpch_tables["supplier"].rows
            if row["s_nationkey"] in europe_nations
        }
        minima: dict[int, float] = {}
        for row in tpch_tables["partsupp"].rows:
            if row["ps_suppkey"] in europe_suppliers:
                cost = row["ps_supplycost"]
                key = row["ps_partkey"]
                if key not in minima or cost < minima[key]:
                    minima[key] = cost

        produced = {row["partkey"]: row["min_cost"]
                    for row in execution.rows}
        assert produced == pytest.approx(minima)

    def test_outer_respects_minimum(self, dyno_factory, tpch_tables):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute_multi(workload.stages)
        # Every reported supplier offers the minimum European cost for its
        # part -- the defining property of Q2.
        inner_spec, inner_name = workload.stages[0]
        inner = dyno.execute(inner_spec, name="check")
        minima = {row["partkey"]: row["min_cost"] for row in inner.rows}
        pairs = {
            (row["ps_partkey"], row["ps_suppkey"]):
                row["ps_supplycost"]
            for row in tpch_tables["partsupp"].rows
        }
        supplier_keys = {
            row["s_name"]: row["s_suppkey"]
            for row in tpch_tables["supplier"].rows
        }
        for row in execution.rows:
            supplied = pairs[(row["partkey"],
                              supplier_keys[row["sname"]])]
            assert supplied == pytest.approx(minima[row["partkey"]])

    def test_outer_order_and_limit(self, dyno_factory):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute_multi(workload.stages)
        balances = [row["acctbal"] for row in execution.rows]
        assert balances == sorted(balances, reverse=True)
        assert len(execution.rows) <= 100

    def test_intermediate_registered_as_table(self, dyno_factory):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        dyno.execute_multi(workload.stages)
        assert "q2mincost" in dyno.tables
        assert dyno.dfs.exists("q2mincost")
