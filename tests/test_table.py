"""Table container behaviour."""

import pytest

from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table, _hashable
from repro.errors import SchemaError

SCHEMA = Schema.of(id=INT, name=STRING)


def make_table(count: int = 5) -> Table:
    rows = [{"id": i, "name": f"n{i % 3}"} for i in range(count)]
    return Table("t", SCHEMA, rows)


class TestTable:
    def test_len_and_iter(self):
        table = make_table(4)
        assert len(table) == 4
        assert [row["id"] for row in table] == [0, 1, 2, 3]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", SCHEMA, [])

    def test_from_rows_validates_when_asked(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", SCHEMA, [{"id": "bad"}], validate=True)
        table = Table.from_rows("t", SCHEMA, [{"id": "bad"}], validate=False)
        assert len(table) == 1

    def test_size_in_bytes_scales_with_rows(self):
        assert make_table(10).size_in_bytes() > make_table(2).size_in_bytes()

    def test_average_row_size(self):
        table = make_table(10)
        assert table.average_row_size() == pytest.approx(
            table.size_in_bytes() / 10
        )
        assert Table("t", SCHEMA, []).average_row_size() == 0.0

    def test_column_values(self):
        assert make_table(3).column("id") == [0, 1, 2]

    def test_column_unknown_raises(self):
        with pytest.raises(SchemaError):
            make_table().column("missing")

    def test_filter_and_project(self):
        table = make_table(6)
        filtered = table.filter(lambda row: row["id"] % 2 == 0)
        assert [row["id"] for row in filtered] == [0, 2, 4]
        projected = table.project(["name"])
        assert projected.schema.names == ("name",)
        assert all(set(row) == {"name"} for row in projected)

    def test_head(self):
        assert len(make_table(10).head(3)) == 3

    def test_distinct_count(self):
        table = make_table(9)  # names cycle through 3 values
        assert table.distinct_count("name") == 3
        assert table.distinct_count("id") == 9

    def test_distinct_count_ignores_nulls(self):
        table = Table("t", SCHEMA, [{"id": None}, {"id": 1}, {"id": 1}])
        assert table.distinct_count("id") == 1


class TestHashable:
    def test_scalars_pass_through(self):
        assert _hashable(3) == 3
        assert _hashable("x") == "x"

    def test_lists_become_tuples(self):
        assert _hashable([1, [2, 3]]) == (1, (2, 3))

    def test_dicts_become_sorted_tuples(self):
        assert _hashable({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_nested_structures_are_hashable(self):
        value = {"a": [{"b": [1, 2]}]}
        hash(_hashable(value))  # must not raise
