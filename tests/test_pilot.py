"""Pilot runs: PILR_ST/MT behaviour, extrapolation, reuse (Section 4)."""

from dataclasses import replace

import pytest

from repro.core.pilot import (
    PILR_MT,
    PILR_ST,
    PilotRunner,
    stats_columns_for_leaf,
)
from repro.workloads.queries import q1_restaurants, q7, q9_prime, q10


def make_runner(dyno, k_records=None):
    config = dyno.config
    if k_records is not None:
        config = replace(config, pilot=replace(config.pilot,
                                               k_records=k_records))
    return PilotRunner(dyno.runtime, dyno.metastore, config)


@pytest.fixture()
def q10_setup(dyno_factory):
    workload = q10()
    dyno = dyno_factory(udfs=workload.udfs)
    extracted = dyno.prepare(workload.final_spec)
    return dyno, extracted.block


class TestStatsColumns:
    def test_join_columns_collected(self, q10_setup):
        _, block = q10_setup
        lineitem = block.leaf_for("l")
        assert "l.l_orderkey" in stats_columns_for_leaf(block, lineitem)

    def test_non_local_predicate_columns_collected(self, dyno_factory):
        workload = q7()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        n1 = block.leaf_for("n1")
        assert "n1.n_name" in stats_columns_for_leaf(block, n1)

    def test_composite_columns_for_multi_key_joins(self, dyno_factory):
        workload = q9_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        lineitem = block.leaf_for("l")
        from repro.stats.statistics import composite_name

        assert composite_name(["l.l_partkey", "l.l_suppkey"]) in \
            stats_columns_for_leaf(block, lineitem)


class TestRun:
    def test_outcomes_for_all_leaves(self, q10_setup):
        dyno, block = q10_setup
        report = make_runner(dyno).run(block)
        signatures = {leaf.signature() for leaf in block.base_leaves()}
        assert set(report.outcomes) == signatures
        assert report.jobs_run == len(signatures)
        assert report.simulated_seconds > 0

    def test_cardinality_estimates_close(self, q10_setup, tpch_tables):
        dyno, block = q10_setup
        report = make_runner(dyno).run(block)
        lineitem = block.leaf_for("l")
        estimated = report.outcomes[lineitem.signature()].stats.row_count
        truth = sum(
            1 for row in tpch_tables["lineitem"].rows
            if row["l_returnflag"] == "R"
        )
        assert estimated == pytest.approx(truth, rel=0.35)

    def test_udf_selectivity_measured(self, dyno_factory, tpch_tables):
        """The pilot's whole point: UDF output sizes become visible."""
        workload = q9_prime(udf_selectivity=0.02)
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        report = make_runner(dyno).run(block)
        part_leaf = block.leaf_for("p")
        estimated = report.outcomes[part_leaf.signature()].stats.row_count
        full = len(tpch_tables["part"])
        assert estimated < 0.25 * full  # nowhere near "selectivity 1.0"

    def test_small_tables_fully_scanned_and_reusable(self, q10_setup):
        dyno, block = q10_setup
        report = make_runner(dyno).run(block)
        nation = block.leaf_for("n")
        outcome = report.outcomes[nation.signature()]
        assert outcome.stats.exact
        assert outcome.reusable_output is not None
        assert dyno.dfs.exists(outcome.reusable_output)

    def test_selective_leaf_stops_early_on_big_table(self, q10_setup):
        dyno, block = q10_setup
        report = make_runner(dyno, k_records=16).run(block)
        lineitem = block.leaf_for("l")
        outcome = report.outcomes[lineitem.signature()]
        assert outcome.scanned_fraction < 1.0
        assert not outcome.stats.exact

    def test_statistics_stored_in_metastore(self, q10_setup):
        dyno, block = q10_setup
        make_runner(dyno).run(block)
        for leaf in block.base_leaves():
            assert dyno.metastore.get(leaf.signature()) is not None

    def test_reuse_skips_jobs_on_second_run(self, q10_setup):
        dyno, block = q10_setup
        runner = make_runner(dyno)
        first = runner.run(block)
        assert first.jobs_run > 0
        second = runner.run(block)
        assert second.jobs_run == 0
        assert all(outcome.reused for outcome in second.outcomes.values())

    def test_reuse_disabled_reruns(self, q10_setup):
        dyno, block = q10_setup
        runner = make_runner(dyno)
        runner.run(block)
        again = runner.run(block, reuse_statistics=False)
        assert again.jobs_run > 0

    def test_unknown_mode_rejected(self, q10_setup):
        dyno, block = q10_setup
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            make_runner(dyno).run(block, mode="XX")


class TestModes:
    def test_mt_faster_than_st(self, dyno_factory):
        workload = q10()
        dyno_st = dyno_factory(udfs=workload.udfs)
        dyno_mt = dyno_factory(udfs=workload.udfs)
        block_st = dyno_st.prepare(workload.final_spec).block
        block_mt = dyno_mt.prepare(workload.final_spec).block
        st = make_runner(dyno_st).run(block_st, mode=PILR_ST)
        mt = make_runner(dyno_mt).run(block_mt, mode=PILR_MT)
        assert mt.simulated_seconds < st.simulated_seconds
        # Paper Table 1: MT is a multiple faster (4.6x average).
        assert st.simulated_seconds / mt.simulated_seconds > 2.0

    def test_modes_estimate_similarly(self, dyno_factory, tpch_tables):
        workload = q10()
        results = {}
        for mode in (PILR_ST, PILR_MT):
            dyno = dyno_factory(udfs=workload.udfs)
            block = dyno.prepare(workload.final_spec).block
            report = make_runner(dyno).run(block, mode=mode)
            lineitem = block.leaf_for("l")
            results[mode] = report.outcomes[
                lineitem.signature()].stats.row_count
        truth = sum(1 for row in tpch_tables["lineitem"].rows
                    if row["l_returnflag"] == "R")
        for estimate in results.values():
            assert estimate == pytest.approx(truth, rel=0.4)


class TestSelfJoins:
    def test_shared_signature_single_pilot(self, dyno_factory):
        workload = q7()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        report = make_runner(dyno).run(block)
        # n1 and n2 share the bare-nation signature: one pilot run.
        n1 = block.leaf_for("n1")
        n2 = block.leaf_for("n2")
        assert n1.signature() == n2.signature()
        assert report.jobs_run == len(report.outcomes)

    def test_reusable_output_only_for_matching_alias(self, dyno_factory):
        workload = q7()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        report = make_runner(dyno).run(block)
        executor = dyno.executor
        updated = executor._apply_reusable_outputs(block, report)
        # At most one of n1/n2 may have been replaced by the pilot output.
        replaced = [
            leaf for leaf in updated.leaves
            if not leaf.is_base and leaf.aliases & {"n1", "n2"}
        ]
        assert len(replaced) <= 1


class TestRestaurantExample:
    def test_q1_pilot_measures_correlation(self, dyno_factory,
                                           restaurant_tables):
        """Paper Section 4.1: zip+state predicates are fully correlated;
        the pilot measures the *joint* selectivity, which equals the zip
        predicate's alone."""
        workload = q1_restaurants()
        dyno = dyno_factory(udfs=workload.udfs, tables=restaurant_tables)
        block = dyno.prepare(workload.final_spec).block
        report = make_runner(dyno).run(block)
        rs = block.leaf_for("rs")
        estimated = report.outcomes[rs.signature()].stats.row_count
        truth = sum(
            1 for row in restaurant_tables["restaurant"].rows
            if row["addr"][0]["zip"] == 94301
        )
        assert estimated == pytest.approx(truth, rel=0.4)


class TestCrossQueryReuse:
    def test_statistics_shared_between_queries(self, dyno_factory):
        """Section 4.1: 'the same relation and predicates appear in
        different queries' -- a second query over overlapping tables
        skips their pilot runs."""
        from repro.workloads.queries import q8_prime

        q7_workload = q7()
        q8_workload = q8_prime()
        # One registry holding both queries' UDFs so one Dyno serves both.
        registry = q8_workload.udfs
        dyno = dyno_factory(udfs=registry)

        first = dyno.prepare(q7_workload.final_spec, name="first").block
        first_report = make_runner(dyno).run(first)
        assert first_report.jobs_run > 0

        second = dyno.prepare(q8_workload.final_spec, name="second").block
        second_report = make_runner(dyno).run(second)
        # Bare scans shared with Q7 (supplier, customer, nation,
        # lineitem) are reused; only Q8'-specific leaves run pilots.
        reused = [sig for sig, outcome in second_report.outcomes.items()
                  if outcome.reused]
        assert "table:supplier|" in reused
        assert "table:customer|" in reused
        assert "table:nation|" in reused
        assert second_report.jobs_run < first_report.jobs_run + 4
