"""QueryService: concurrent batches, statistics reuse, plan caching.

The acceptance scenario of the serving layer: a mixed TPC-H + weblogs
batch with repeated queries must produce byte-identical results to
standalone runs, at any worker count, with tracer-verifiable evidence
that repeats ran zero pilot jobs and hit the plan cache.
"""

import json
import threading
import time

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.errors import PlanError
from repro.obs import MemorySink, Tracer
from repro.service import PlanCache, QueryRequest, QueryService
from repro.workloads.mixed import MIXED_SEQUENCE, mixed_batch, mixed_tables
from repro.workloads.queries import q3
from repro.workloads.weblogs import weblog_engagement

SCALE = 0.02
EVENTS = 1200


def small_tables():
    return mixed_tables(SCALE, seed=2014, weblog_events=EVENTS)


def rows_bytes(rows):
    """Canonical byte encoding for 'byte-identical' comparisons."""
    return json.dumps(rows, sort_keys=True, default=str).encode()


def events(sink, name):
    return [r for r in sink.records
            if r["kind"] == "event" and r["name"] == name]


class TestBatchCorrectness:
    @pytest.fixture(scope="class")
    def batch_outcomes(self):
        requests, udfs = mixed_batch()
        service = QueryService(small_tables(), udfs=udfs, workers=3)
        return service.run_batch(requests)

    def test_all_queries_succeed(self, batch_outcomes):
        assert [o.error for o in batch_outcomes] == [None] * 7

    def test_outcomes_in_submission_order(self, batch_outcomes):
        assert [o.index for o in batch_outcomes] == list(range(7))
        assert [o.name for o in batch_outcomes] == \
            [factory().name for factory in MIXED_SEQUENCE]

    def test_byte_identical_to_standalone_runs(self, batch_outcomes):
        """Each batch member matches a fresh serial single-query Dyno."""
        for outcome, factory in zip(batch_outcomes, MIXED_SEQUENCE):
            workload = factory()
            dyno = Dyno(small_tables(), udfs=workload.udfs)
            standalone = dyno.execute_multi(workload.stages)
            assert rows_bytes(outcome.rows) == rows_bytes(standalone.rows), \
                f"{outcome.name} diverged from its standalone run"

    def test_repeats_run_zero_pilots(self, batch_outcomes):
        # Indices 2, 3 and 6 repeat earlier queries (see MIXED_SEQUENCE).
        for index in (2, 3, 6):
            assert batch_outcomes[index].pilot_jobs == 0
            assert batch_outcomes[index].pilots_skipped > 0
        for index in (0, 1):
            assert batch_outcomes[index].pilot_jobs > 0
            assert batch_outcomes[index].pilots_skipped == 0

    def test_repeats_hit_the_plan_cache(self, batch_outcomes):
        for index in (2, 3, 6):
            assert batch_outcomes[index].plan_cache_hits > 0
        assert batch_outcomes[0].plan_cache_hits == 0


class TestDeterminism:
    def run_batch(self, workers):
        requests, udfs = mixed_batch()
        service = QueryService(small_tables(), udfs=udfs, workers=workers)
        return service.run_batch(requests)

    def test_worker_count_never_changes_results_or_reuse(self):
        serial = self.run_batch(1)
        for workers in (2, 4):
            concurrent = self.run_batch(workers)
            for left, right in zip(serial, concurrent):
                assert rows_bytes(left.rows) == rows_bytes(right.rows)
                assert left.pilot_jobs == right.pilot_jobs
                assert left.pilots_skipped == right.pilots_skipped
                assert left.plan_cache_hits == right.plan_cache_hits

    def test_repeated_batches_are_reproducible(self):
        first = self.run_batch(3)
        second = self.run_batch(3)
        assert [rows_bytes(o.rows) for o in first] == \
            [rows_bytes(o.rows) for o in second]


class TestTracerEvidence:
    def test_pilot_skipped_and_plan_cache_events(self):
        sink = MemorySink()
        requests, udfs = mixed_batch()
        service = QueryService(small_tables(), udfs=udfs,
                               tracer=Tracer(sink), workers=2)
        service.run_batch(requests)

        admits = events(sink, "service.admit")
        assert len(admits) == 7
        # Cold queries claim their signatures; repeats wait or find them
        # known -- never claim.
        assert admits[0]["attrs"]["claimed"]
        for index in (2, 3, 6):
            assert admits[index]["attrs"]["claimed"] == []

        skipped = events(sink, "pilot_skipped")
        assert skipped, "repeats must emit pilot_skipped events"
        for record in skipped:
            assert record["attrs"]["signature"].startswith("table:")

        cache_events = events(sink, "plan_cache")
        assert any(record["attrs"]["hit"] for record in cache_events)
        assert any(not record["attrs"]["hit"] for record in cache_events)

        completes = events(sink, "service.complete")
        assert len(completes) == 7


class TestSection41Reuse:
    """Same query twice against a persistent metastore: the second run
    performs zero pilot jobs and returns byte-identical rows -- including
    across a save/load round-trip of the metastore file."""

    def run_twice(self, service):
        request = QueryRequest.from_workload(q3())
        (first,) = service.run_batch([request])
        (second,) = service.run_batch([QueryRequest.from_workload(q3())])
        return first, second

    def test_second_run_reuses_statistics(self):
        sink = MemorySink()
        service = QueryService(small_tables(), tracer=Tracer(sink),
                               workers=1)
        first, second = self.run_twice(service)
        assert first.pilot_jobs == 3 and first.pilots_skipped == 0
        assert second.pilot_jobs == 0 and second.pilots_skipped == 3
        assert rows_bytes(first.rows) == rows_bytes(second.rows)
        # Tracer agrees: every skip is an event, and the second query's
        # pilot phase launched no pilot.leaf jobs.
        skipped = events(sink, "pilot_skipped")
        assert len(skipped) == 3
        pilot_leaves = events(sink, "pilot.leaf")
        assert all(record["attrs"]["signature"].startswith("table:")
                   for record in pilot_leaves)
        assert len(pilot_leaves) == 3  # all from the first run

    def test_reuse_survives_save_load_round_trip(self, tmp_path):
        path = tmp_path / "stats.json"
        first_service = QueryService(small_tables(), workers=1)
        (first,) = first_service.run_batch(
            [QueryRequest.from_workload(q3())]
        )
        first_service.dyno.save_statistics(path)

        second_service = QueryService(small_tables(), workers=1)
        assert second_service.dyno.load_statistics(path) > 0
        (second,) = second_service.run_batch(
            [QueryRequest.from_workload(q3())]
        )
        assert second.pilot_jobs == 0
        assert second.pilots_skipped == 3
        assert rows_bytes(first.rows) == rows_bytes(second.rows)


class TestSingleFlightClaims:
    def test_identical_cold_queries_share_one_pilot_pass(self):
        """Two copies of one cold query in a batch: exactly one runs the
        pilots, the other waits and reuses -- at any worker count."""
        for workers in (1, 2):
            service = QueryService(small_tables(), workers=workers)
            outcomes = service.run_batch([
                QueryRequest.from_workload(q3()),
                QueryRequest.from_workload(q3()),
            ])
            assert [o.pilot_jobs for o in outcomes] == [3, 0]
            assert [o.pilots_skipped for o in outcomes] == [0, 3]

    def test_unparseable_query_fails_alone(self):
        """A query that cannot even parse becomes an errored outcome; the
        rest of the batch is untouched."""
        service = QueryService(small_tables(), workers=2)
        broken = QueryRequest.single(
            "broken",
            "SELECT c.c_name AS n FROM customer c "
            "WHERE no_such_udf(c.c_name)",
        )
        outcomes = service.run_batch(
            [broken, QueryRequest.from_workload(q3())]
        )
        assert outcomes[0].error is not None
        assert outcomes[1].error is None and outcomes[1].rows

    def test_failed_owner_does_not_deadlock_waiters(self):
        """An owner that claims signatures and then dies mid-pilot still
        fires its claim events; the waiter finds the metastore empty and
        runs the pilots itself."""
        from repro.jaql.functions import Udf, UdfRegistry

        def poison(_value):
            raise RuntimeError("boom")

        udfs = UdfRegistry()
        udfs.register(Udf("poison", poison))
        service = QueryService(small_tables(), udfs=udfs, workers=2)
        # Same customer/orders predicates as Q3, so this query claims the
        # signatures Q3 needs -- then its lineitem pilot explodes.
        broken = QueryRequest.single(
            "broken",
            "SELECT o.o_orderkey AS k "
            "FROM customer c, orders o, lineitem l "
            "WHERE c.c_mktsegment = 'BUILDING' "
            "AND c.c_custkey = o.o_custkey "
            "AND l.l_orderkey = o.o_orderkey "
            "AND o.o_orderdate <= '1995-03-15' "
            "AND l.l_shipdate >= '1995-03-15' "
            "AND poison(l.l_comment)",
        )
        good = QueryRequest.from_workload(q3())
        outcomes = service.run_batch([broken, good])
        assert outcomes[0].error is not None
        assert "RuntimeError" in outcomes[0].error
        assert outcomes[1].error is None
        assert outcomes[1].rows
        # The waiter had to run its own pilots (the owner stored nothing).
        assert outcomes[1].pilot_jobs == 3


class TestPlanCacheIntegration:
    def test_caller_supplied_empty_cache_is_used(self):
        """Regression: an empty PlanCache is falsy (len == 0); `or` used
        to silently replace it, detaching the caller's handle."""
        cache = PlanCache()
        service = QueryService(small_tables(), workers=1, plan_cache=cache)
        assert service.plan_cache is cache
        assert service.dyno.executor.plan_cache is cache
        service.run_batch([QueryRequest.from_workload(q3())])
        assert cache.summary()["misses"] > 0

    def test_stats_update_invalidates_dependent_entries(self):
        service = QueryService(small_tables(), workers=1)
        cache = service.plan_cache
        service.run_batch([QueryRequest.from_workload(q3())])
        assert len(cache) > 0
        before = len(cache)
        # Re-collecting statistics for a contributing leaf must evict the
        # plans that were costed with the old statistics.
        entry = next(iter(service.metastore))
        contributing = [
            signature for signature in service.metastore
            if signature.startswith("table:customer")
        ]
        assert contributing, f"no customer leaf among {entry!r}..."
        service.metastore.put(
            contributing[0], service.metastore.get(contributing[0])
        )
        assert cache.summary()["invalidations"] > 0
        assert len(cache) < before

    def test_cold_and_warm_runs_share_entries(self):
        """A cold run's block (pilot outputs substituted) and a warm
        repeat's block (base leaves intact) canonicalize identically, so
        the *first* repeat already hits."""
        service = QueryService(small_tables(), workers=1)
        outcomes = service.run_batch([
            QueryRequest.from_workload(q3()),
            QueryRequest.from_workload(q3()),
        ])
        assert outcomes[1].plan_cache_hits > 0


class TestServiceGuards:
    def test_rejects_zero_workers(self):
        with pytest.raises(PlanError):
            QueryService(small_tables(), workers=0)

    def test_rejects_concurrency_under_fault_injection(self):
        from repro.cluster.faults import FaultPlan

        plan = FaultPlan(seed=7, name="t", task_failure_rate=0.1)
        config = DEFAULT_CONFIG.with_fault_plan(plan)
        service = QueryService(small_tables(), config=config, workers=2)
        with pytest.raises(PlanError, match="workers=1"):
            service.run_batch([QueryRequest.from_workload(q3())])

    def test_single_worker_fault_plans_run_and_stay_invisible(self):
        """A fault plan only forbids *concurrent* driver threads: with
        workers=1 the batch must run -- and, per the recovery oracle,
        return exactly the rows of a fault-free service."""
        from repro.cluster.faults import FaultPlan

        plan = FaultPlan(seed=7, name="t", task_failure_rate=0.1,
                         straggler_rate=0.05)
        config = DEFAULT_CONFIG.with_fault_plan(plan)
        faulted = QueryService(small_tables(), config=config, workers=1)
        (outcome,) = faulted.run_batch([QueryRequest.from_workload(q3())])
        assert outcome.error is None

        clean = QueryService(small_tables(), workers=1)
        (baseline,) = clean.run_batch([QueryRequest.from_workload(q3())])
        assert rows_bytes(outcome.rows) == rows_bytes(baseline.rows)

    def test_empty_stage_list_is_an_errored_outcome(self):
        service = QueryService(small_tables(), workers=1)
        (outcome,) = service.run_batch([QueryRequest("empty", [])])
        assert outcome.error is not None
        assert "PlanError" in outcome.error


class TestIsolation:
    def test_concurrent_copies_never_collide_in_the_namespace(self):
        """Four concurrent copies of the same multi-way query: per-query
        prefixes keep DFS files, counters and spans apart, so all copies
        return the same (correct) rows."""
        service = QueryService(small_tables(), workers=4)
        outcomes = service.run_batch(
            [QueryRequest.from_workload(weblog_engagement())
             if index % 2 else QueryRequest.from_workload(q3())
             for index in range(4)]
        )
        q3_rows = [rows_bytes(o.rows) for o in outcomes[::2]]
        weblog_rows = [rows_bytes(o.rows) for o in outcomes[1::2]]
        assert len(set(q3_rows)) == 1
        assert len(set(weblog_rows)) == 1

    def test_multi_stage_intermediates_are_prefixed(self):
        """TPC-H Q2 (two dependent blocks): its intermediate table is
        renamed per query, so two copies in one batch do not clobber each
        other's q2mincost."""
        from repro.workloads.queries import q2

        service = QueryService(small_tables(), workers=2)
        outcomes = service.run_batch([
            QueryRequest.from_workload(q2()),
            QueryRequest.from_workload(q2()),
        ])
        assert [o.error for o in outcomes] == [None, None]
        assert rows_bytes(outcomes[0].rows) == rows_bytes(outcomes[1].rows)
        # Both prefixed copies of the intermediate landed in the catalog.
        names = [name for name in service.dyno.tables if "q2mincost" in name]
        assert len(names) == 2 and all("." in name for name in names)


class TestMetastoreUnderConcurrency:
    def test_concurrent_batches_from_threads(self):
        """run_batch itself may be called from several client threads."""
        service = QueryService(small_tables(), workers=2)
        results = {}

        def client(key):
            outcomes = service.run_batch(
                [QueryRequest.from_workload(q3())]
            )
            results[key] = rows_bytes(outcomes[0].rows)

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results.values())) == 1


class TestMemoryGateTickets:
    """Regression (ISSUE 9): the gate used to key waiters by per-batch
    submission index. Two concurrent batches both waited as index 0: the
    set's second ``add(0)`` was a no-op, the first ``discard(0)`` erased
    both markers, ``try_acquire``'s empty-waiters fast path bypassed the
    still-blocked query, and its own wake-up crashed on ``min(set())``.
    Tickets are now globally monotonic and duplicates are rejected."""

    def make_gate(self, pool=100):
        from repro.service.service import _MemoryGate

        return _MemoryGate(pool)

    def wait_for_waiters(self, gate, count):
        for _ in range(2000):
            with gate._condition:
                if len(gate._waiters) >= count:
                    return
            time.sleep(0.001)
        raise AssertionError(f"never saw {count} waiter(s)")

    def test_try_acquire_never_bypasses_a_cross_batch_waiter(self):
        """The exact interleaving of the bug, with distinct tickets: a
        blocked 'batch 1' query must keep the fast path closed even for
        demands that would fit the remaining pool."""
        gate = self.make_gate(pool=100)
        assert gate.try_acquire(80)
        grants = []

        def blocked_batch():
            gate.acquire(1, 50)  # 50 > 20 free: must wait
            grants.append("t1")

        thread = threading.Thread(target=blocked_batch)
        thread.start()
        self.wait_for_waiters(gate, 1)
        # Pre-fix, a second batch's waiter was erased with the first's
        # marker and this fast path then bypassed the blocked query.
        assert not gate.try_acquire(10)
        assert grants == []
        gate.release(80)
        thread.join(timeout=5)
        assert grants == ["t1"]

    def test_grants_follow_global_ticket_order(self):
        """A later waiter whose demand fits must still queue behind an
        earlier ticket (FIFO admission, deterministic given order)."""
        gate = self.make_gate(pool=100)
        assert gate.try_acquire(80)
        grants = []

        def waiter(ticket, demand):
            gate.acquire(ticket, demand)
            grants.append(ticket)

        first = threading.Thread(target=waiter, args=(1, 50))
        first.start()
        self.wait_for_waiters(gate, 1)
        # Ticket 2's demand of 10 fits the 20 free bytes -- it must not
        # jump ticket 1.
        second = threading.Thread(target=waiter, args=(2, 10))
        second.start()
        self.wait_for_waiters(gate, 2)
        assert grants == []
        gate.release(80)
        first.join(timeout=5)
        second.join(timeout=5)
        assert grants == [1, 2]

    def test_duplicate_tickets_are_rejected_not_corrupting(self):
        """Colliding tickets (the old per-batch indices) now fail loudly
        instead of silently erasing another batch's waiter marker."""
        gate = self.make_gate(pool=100)
        assert gate.try_acquire(100)
        failures = []

        def blocked():
            gate.acquire(7, 10)

        thread = threading.Thread(target=blocked)
        thread.start()
        self.wait_for_waiters(gate, 1)
        with pytest.raises(PlanError, match="duplicate memory-gate"):
            gate.acquire(7, 10)
        gate.release(100)
        thread.join(timeout=5)
        assert not failures

    def test_concurrent_governed_batches_complete_and_agree(self):
        """End to end: several threads run memory-governed batches whose
        aggregate demand exceeds the pool, forcing cross-batch waits.
        Pre-fix this interleaving could bypass admissions or crash on
        min(set()); now every batch completes with identical rows."""
        pool = DEFAULT_CONFIG.cluster.effective_cluster_memory_bytes
        demand = (pool // 3) * 2  # two can run, the third must wait
        service = QueryService(small_tables(), workers=2)
        barrier = threading.Barrier(3)
        results = {}

        def client(key):
            barrier.wait()
            outcomes = service.run_batch([QueryRequest.from_workload(
                q3(), memory_demand_bytes=demand)])
            results[key] = (outcomes[0].error,
                            rows_bytes(outcomes[0].rows))

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(error is None for error, _ in results.values())
        assert len({rows for _, rows in results.values()}) == 1


class TestAdmissionRace:
    """Regression (ISSUE 9): ``_admit`` bumped ``self._batch_count``
    without a lock, so two concurrent ``run_batch`` calls could read the
    same value and mint the same ``b{batch}.q{position}`` prefix --
    colliding query names, DFS intermediates, and ``hits_for_prefix``
    attribution. Batch ids are now minted under the admission lock."""

    def test_hammered_admissions_mint_unique_prefixes(self):
        """Drive the raw admission path from many threads at once; every
        admission must carry a distinct prefix and ticket."""
        service = QueryService(small_tables(), workers=1)
        request = QueryRequest.from_workload(q3())
        threads_n, rounds = 8, 5
        barrier = threading.Barrier(threads_n)
        prefixes, tickets = [], []
        lock = threading.Lock()

        def hammer():
            barrier.wait()
            for _ in range(rounds):
                (admission,) = service._admit([request])
                with lock:
                    prefixes.append(admission.prefix)
                    tickets.append(admission.ticket)

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(prefixes) == threads_n * rounds
        assert len(set(prefixes)) == len(prefixes), \
            "two concurrent admissions minted the same batch prefix"
        assert len(set(tickets)) == len(tickets)

    def test_hammered_run_batch_is_byte_identical(self):
        """Full-stack version: concurrent run_batch callers must neither
        collide in the namespace nor diverge from each other."""
        service = QueryService(small_tables(), workers=2)
        # Warm the metastore so the hammering runs are cheap and the
        # interesting contention is admission, not pilots.
        service.run_batch([QueryRequest.from_workload(q3()),
                           QueryRequest.from_workload(weblog_engagement())])
        barrier = threading.Barrier(4)
        results, names = {}, []
        lock = threading.Lock()

        def client(key):
            barrier.wait()
            outcomes = service.run_batch([
                QueryRequest.from_workload(q3()),
                QueryRequest.from_workload(weblog_engagement()),
            ])
            with lock:
                results[key] = tuple(rows_bytes(o.rows) for o in outcomes)
                names.extend(o.query_name for o in outcomes)

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results.values())) == 1
        assert len(set(names)) == len(names), \
            "concurrent batches shared a query prefix"
