"""DYNOPT end-to-end: correctness, re-optimization, substitution."""

from dataclasses import replace

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dynopt import MODE_DYNOPT, MODE_SIMPLE
from repro.errors import PlanError
from repro.workloads.queries import q7, q8_prime, q9_prime, q10
from tests.conftest import assert_same_rows, reference_rows

#: A memory budget small enough that the test-scale dataset cannot collapse
#: whole queries into a single chained map-only job -- forcing the
#: multi-iteration behaviour the dynamic tests exercise.
TIGHT_CONFIG = replace(
    DEFAULT_CONFIG,
    cluster=replace(DEFAULT_CONFIG.cluster, task_memory_bytes=8 * 1024),
    optimizer=replace(DEFAULT_CONFIG.optimizer,
                      max_broadcast_bytes=8 * 1024),
)


@pytest.mark.parametrize("factory", [q7, q8_prime, q9_prime, q10])
@pytest.mark.parametrize("mode,strategy", [
    (MODE_DYNOPT, "UNC-1"),
    (MODE_DYNOPT, "CHEAP-2"),
    (MODE_SIMPLE, "SIMPLE_MO"),
    (MODE_SIMPLE, "SIMPLE_SO"),
])
def test_all_modes_match_reference(dyno_factory, tpch_tables, factory,
                                   mode, strategy):
    workload = factory()
    dyno = dyno_factory(udfs=workload.udfs)
    execution = dyno.execute(workload.final_spec, mode=mode,
                             strategy=strategy)
    expected = reference_rows(tpch_tables, workload.final_spec)
    assert_same_rows(execution.rows, expected)


class TestDynamicBehaviour:
    def test_iterations_and_substitution(self, dyno_factory):
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs, config=TIGHT_CONFIG)
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT,
                                 strategy="UNC-1")
        result = execution.block_results[0]
        assert len(result.iterations) >= 2
        assert result.reoptimization_count >= 1
        # Every iteration's plan covers fewer or equal leaves than the last.
        leaf_counts = [
            plan and len(plan.leaves()) for plan in result.plans
        ]
        assert leaf_counts == sorted(leaf_counts, reverse=True)

    def test_stats_collected_between_iterations(self, dyno_factory):
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs, config=TIGHT_CONFIG)
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT)
        result = execution.block_results[0]
        assert any(record.collected_statistics
                   for record in result.iterations[:-1])
        assert not result.iterations[-1].collected_statistics

    def test_collect_column_stats_flag(self, dyno_factory):
        workload = q8_prime()
        with_stats = dyno_factory(udfs=workload.udfs).execute(
            workload.final_spec, mode=MODE_DYNOPT)
        without = dyno_factory(udfs=workload.udfs).execute(
            workload.final_spec, mode=MODE_DYNOPT,
            collect_column_stats=False)
        assert_same_rows(with_stats.rows, without.rows)
        # Collection carries measurable (simulated) cost.
        assert without.execution_seconds <= with_stats.execution_seconds

    def test_simple_mode_never_reoptimizes(self, dyno_factory):
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec, mode=MODE_SIMPLE,
                                 strategy="SIMPLE_MO")
        result = execution.block_results[0]
        signatures = {record.plan_signature
                      for record in result.iterations}
        assert len(signatures) == 1
        assert result.optimizer_seconds > 0

    def test_simple_so_runs_one_job_per_batch(self, dyno_factory):
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec, mode=MODE_SIMPLE,
                                 strategy="SIMPLE_SO")
        result = execution.block_results[0]
        assert all(len(record.jobs_executed) == 1
                   for record in result.iterations)

    def test_mo_overlaps_and_is_faster_than_so(self, dyno_factory):
        workload = q9_prime(udf_selectivity=1.0)  # forces multiple jobs
        so = dyno_factory(udfs=workload.udfs).execute(
            workload.final_spec, mode=MODE_SIMPLE, strategy="SIMPLE_SO")
        mo = dyno_factory(udfs=workload.udfs).execute(
            workload.final_spec, mode=MODE_SIMPLE, strategy="SIMPLE_MO")
        assert mo.execution_seconds <= so.execution_seconds + 1e-6

    def test_plan_changes_counted(self, dyno_factory):
        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT)
        result = execution.block_results[0]
        assert 0 <= result.plan_changes <= result.reoptimization_count

    def test_unknown_mode_rejected(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        with pytest.raises(PlanError):
            dyno.executor.execute_block(extracted.block, mode="warp")

    def test_missing_stats_without_pilots_rejected(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        with pytest.raises(PlanError):
            dyno.executor.execute_block(extracted.block, run_pilots=False)

    def test_leaf_stats_override_bypasses_pilots(self, dyno_factory,
                                                 tpch_tables):
        from repro.core.baselines import oracle_leaf_stats

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        override = oracle_leaf_stats(dyno.tables, extracted.block)
        result = dyno.executor.execute_block(
            extracted.block, mode=MODE_SIMPLE,
            leaf_stats_override=override,
        )
        assert result.pilot is None
        assert result.pilot_seconds == 0.0
        assert result.output_file

    def test_timing_breakdown_sums(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT)
        result = execution.block_results[0]
        assert result.total_seconds == pytest.approx(
            result.pilot_seconds + result.optimizer_seconds
            + result.execution_seconds
        )
        assert result.pilot_seconds > 0
        assert result.optimizer_seconds > 0


class TestConditionalReoptimization:
    """Section 5.1: 're-optimize could be conditional on a threshold
    difference between the estimated result size and the observed one'."""

    def _config(self, threshold):
        return replace(
            TIGHT_CONFIG,
            reoptimize_every_job=False,
            reoptimization_threshold=threshold,
        )

    def test_generous_threshold_skips_reoptimization(self, dyno_factory,
                                                     tpch_tables):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs,
                            config=self._config(threshold=1e9))
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT)
        result = execution.block_results[0]
        # One optimizer call: all iterations share the first plan.
        optimizer_calls = sum(
            1 for record in result.iterations
            if record.optimizer_seconds > 0
        )
        assert optimizer_calls == 1
        expected = reference_rows(tpch_tables, workload.final_spec)
        assert len(execution.rows) == len(expected)

    def test_tight_threshold_reoptimizes_on_surprise(self, dyno_factory):
        """Q8''s non-local UDF makes join estimates wrong (the optimizer
        assumes selectivity 1.0), so a tight threshold must trigger."""
        workload = q8_prime(udf_selectivity=0.3)
        dyno = dyno_factory(udfs=workload.udfs,
                            config=self._config(threshold=0.05))
        execution = dyno.execute(workload.final_spec, mode=MODE_DYNOPT)
        result = execution.block_results[0]
        assert len(result.plans) >= 2

    def test_conditional_matches_always_reoptimize(self, dyno_factory,
                                                   tpch_tables):
        workload = q8_prime()
        always = dyno_factory(udfs=workload.udfs,
                              config=TIGHT_CONFIG).execute(
            workload.final_spec, mode=MODE_DYNOPT)
        conditional = dyno_factory(udfs=workload.udfs,
                                   config=self._config(0.5)).execute(
            workload.final_spec, mode=MODE_DYNOPT)
        assert_same_rows(always.rows, conditional.rows)


class TestPhysicalPlanReplay:
    def test_execute_physical_plan(self, dyno_factory, tpch_tables):
        from repro.core.baselines import (
            build_left_deep_plan,
            enumerate_connected_orders,
            jaql_file_size_stats,
        )

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        block = extracted.block
        stats = jaql_file_size_stats(dyno.tables, block)
        sizes = {leaf.source_name: dyno.dfs.file_size(leaf.source_name)
                 for leaf in block.base_leaves()}
        order = next(enumerate_connected_orders(block))
        plan = build_left_deep_plan(block, order, stats, sizes, dyno.config)
        result = dyno.executor.execute_physical_plan(block, plan)
        assert result.output_file
        assert result.pilot_seconds == 0.0
