"""Hive backend: DistributedCache broadcast semantics (Section 6.6)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.baselines import oracle_leaf_stats
from repro.core.hive import hive_config, make_hive_dyno, replay_plan_in_hive
from repro.optimizer.search import JoinOptimizer
from repro.optimizer.plans import summarize_plan
from repro.workloads.queries import q9_prime, q10
from tests.conftest import reference_rows


class TestConfig:
    def test_hive_config_switches_backend(self):
        assert hive_config().backend == "hive"
        assert DEFAULT_CONFIG.backend == "jaql"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_backend("spark")


class TestExecution:
    def test_hive_results_identical(self, tpch_tables):
        workload = q10()
        dyno = make_hive_dyno(tpch_tables, udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(tpch_tables, workload.final_spec)
        assert len(execution.rows) == len(expected)

    def test_broadcast_heavy_plan_faster_in_hive(self, tpch_tables,
                                                 dyno_factory):
        """Q9' gains more in Hive: the build side loads once per node."""
        workload = q9_prime()
        jaql_dyno = dyno_factory(udfs=workload.udfs)
        hive_dyno = make_hive_dyno(tpch_tables, udfs=workload.udfs)
        jaql_run = jaql_dyno.execute(workload.final_spec, mode="simple")
        hive_run = hive_dyno.execute(workload.final_spec, mode="simple")
        assert hive_run.execution_seconds < jaql_run.execution_seconds

    def test_replay_plan_in_hive(self, tpch_tables, dyno_factory):
        workload = q9_prime()
        source = dyno_factory(udfs=workload.udfs)
        extracted = source.prepare(workload.final_spec)
        stats = oracle_leaf_stats(source.tables, extracted.block)
        plan = JoinOptimizer(extracted.block, stats,
                             source.config.optimizer).optimize().plan
        result = replay_plan_in_hive(tpch_tables, extracted.block, plan,
                                     udfs=workload.udfs)
        assert result.output_file
        # Same plan shape executed, nothing re-optimized.
        assert len(result.plans) == 1
        assert summarize_plan(result.plans[0]).joins == \
            summarize_plan(plan).joins
