"""Join graph structure and validation."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.jaql.blocks import SOURCE_INTERMEDIATE, SOURCE_TABLE, BlockLeaf, JoinBlock
from repro.jaql.expr import JoinCondition, ref
from repro.optimizer.joingraph import JoinGraph


def leaf(alias, table="t"):
    return BlockLeaf(frozenset((alias,)), SOURCE_TABLE, table)


def chain_block(n=4):
    """a - b - c - d ... linear chain."""
    leaves = tuple(leaf(chr(ord("a") + i)) for i in range(n))
    conditions = tuple(
        JoinCondition(ref(chr(ord("a") + i), "k"),
                      ref(chr(ord("a") + i + 1), "k"))
        for i in range(n - 1)
    )
    return JoinBlock("chain", leaves, conditions)


def star_block(points=4):
    """hub h joined to p0..pN."""
    leaves = (leaf("h"),) + tuple(leaf(f"p{i}") for i in range(points))
    conditions = tuple(
        JoinCondition(ref("h", f"k{i}"), ref(f"p{i}", "k"))
        for i in range(points)
    )
    return JoinBlock("star", leaves, conditions)


def cyclic_block():
    leaves = (leaf("a"), leaf("b"), leaf("c"))
    conditions = (
        JoinCondition(ref("a", "k"), ref("b", "k")),
        JoinCondition(ref("b", "j"), ref("c", "j")),
        JoinCondition(ref("c", "i"), ref("a", "i")),
    )
    return JoinBlock("cycle", leaves, conditions)


class TestStructure:
    def test_chain_adjacency(self):
        graph = JoinGraph.build(chain_block(4))
        assert graph.adjacency[0] == {1}
        assert graph.adjacency[1] == {0, 2}
        assert graph.size == 4

    def test_star_adjacency(self):
        graph = JoinGraph.build(star_block(3))
        assert graph.adjacency[0] == {1, 2, 3}

    def test_connectivity(self):
        graph = JoinGraph.build(chain_block(4))
        assert graph.is_connected(frozenset((0, 1, 2)))
        assert not graph.is_connected(frozenset((0, 2)))
        assert graph.is_connected(frozenset((1,)))
        assert not graph.is_connected(frozenset())

    def test_edges_between(self):
        graph = JoinGraph.build(chain_block(4))
        assert graph.edges_between(frozenset((0, 1)), frozenset((2, 3)))
        assert not graph.edges_between(frozenset((0,)), frozenset((2, 3)))

    def test_neighbors_of_set(self):
        graph = JoinGraph.build(chain_block(4))
        assert graph.neighbors_of_set(frozenset((1, 2))) == {0, 3}

    def test_aliases_of(self):
        graph = JoinGraph.build(chain_block(3))
        assert graph.aliases_of(frozenset((0, 2))) == {"a", "c"}

    def test_intermediate_leaf_internal_condition_ignored(self):
        merged = BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE, "f")
        other = leaf("c")
        block = JoinBlock("b", (merged, other), (
            JoinCondition(ref("a", "k"), ref("b", "k")),  # internal
            JoinCondition(ref("b", "j"), ref("c", "j")),
        ))
        graph = JoinGraph.build(block)
        assert graph.adjacency[0] == {1}


class TestValidation:
    def test_valid_tree_passes(self):
        JoinGraph.build(chain_block(5)).validate()
        JoinGraph.build(star_block(5)).validate()

    def test_cycle_rejected_like_q5(self):
        with pytest.raises(UnsupportedQueryError):
            JoinGraph.build(cyclic_block()).validate()

    def test_disconnected_rejected(self):
        block = JoinBlock("d", (leaf("a"), leaf("b"), leaf("c")), (
            JoinCondition(ref("a", "k"), ref("b", "k")),
        ))
        with pytest.raises(UnsupportedQueryError):
            JoinGraph.build(block).validate()

    def test_single_leaf_valid(self):
        JoinGraph.build(JoinBlock("s", (leaf("a"),), ())).validate()

    def test_parallel_conditions_are_not_a_cycle(self):
        # Two conditions between the same pair (composite key) are one edge.
        block = JoinBlock("p", (leaf("a"), leaf("b")), (
            JoinCondition(ref("a", "k1"), ref("b", "k1")),
            JoinCondition(ref("a", "k2"), ref("b", "k2")),
        ))
        JoinGraph.build(block).validate()
