"""Join-block extraction and manipulation."""

import pytest

from repro.errors import PlanError, UnsupportedQueryError
from repro.jaql.blocks import (
    SOURCE_INTERMEDIATE,
    SOURCE_TABLE,
    BlockLeaf,
    JoinBlock,
    extract_query,
)
from repro.jaql.expr import (
    Aggregate,
    Comparison,
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    ref,
)
from repro.jaql.rewrites import push_down_filters


def two_way_spec():
    tree = Filter(
        Join(
            Scan("left", "a"), Scan("right", "b"),
            (JoinCondition(ref("a", "id"), ref("b", "lid")),),
        ),
        Comparison(ref("a", "color"), "=", "red"),
    )
    return QuerySpec("q", push_down_filters(tree))


class TestBlockLeaf:
    def test_base_leaf(self):
        leaf = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "left")
        assert leaf.is_base
        assert leaf.alias == "a"

    def test_intermediate_leaf_multi_alias(self):
        leaf = BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE, "f")
        assert not leaf.is_base
        with pytest.raises(PlanError):
            leaf.alias  # noqa: B018 - property access raises

    def test_intermediate_cannot_carry_predicates(self):
        pred = Comparison(ref("a", "x"), "=", 1)
        with pytest.raises(PlanError):
            BlockLeaf(frozenset(("a",)), SOURCE_INTERMEDIATE, "f", (pred,))

    def test_empty_aliases_rejected(self):
        with pytest.raises(PlanError):
            BlockLeaf(frozenset(), SOURCE_TABLE, "left")

    def test_signature_is_alias_independent(self):
        pred_a = Comparison(ref("a", "color"), "=", "red")
        pred_b = Comparison(ref("b", "color"), "=", "red")
        leaf_a = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t", (pred_a,))
        leaf_b = BlockLeaf(frozenset(("b",)), SOURCE_TABLE, "t", (pred_b,))
        assert leaf_a.signature() == leaf_b.signature()

    def test_signature_differs_with_predicates(self):
        pred = Comparison(ref("a", "color"), "=", "red")
        plain = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t")
        filtered = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t", (pred,))
        assert plain.signature() != filtered.signature()

    def test_qualify_and_filter(self):
        pred = Comparison(ref("a", "color"), "=", "red")
        leaf = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t", (pred,))
        assert leaf.qualify_and_filter({"color": "red"}) == \
            {"a.color": "red"}
        assert leaf.qualify_and_filter({"color": "blue"}) is None

    def test_intermediate_passthrough(self):
        leaf = BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE, "f")
        row = {"a.x": 1, "b.y": 2}
        assert leaf.qualify_and_filter(row) is row


class TestExtraction:
    def test_two_way(self):
        extracted = extract_query(two_way_spec())
        block = extracted.block
        assert len(block.leaves) == 2
        assert len(block.conditions) == 1
        assert block.leaf_for("a").predicates
        assert not block.leaf_for("b").predicates

    def test_stages_collected_in_execution_order(self):
        tree = Project(
            OrderBy(
                GroupBy(
                    two_way_spec().root,
                    (ref("a", "color"),),
                    (Aggregate("count", None, "n"),),
                ),
                (ref("", "n"),),
            ),
            ((ref("a", "color"), "color"),),
        )
        extracted = extract_query(QuerySpec("q", tree))
        kinds = [type(stage).__name__ for stage in extracted.stages]
        assert kinds == ["GroupBy", "OrderBy", "Project"]

    def test_group_below_join_rejected(self):
        grouped = GroupBy(Scan("right", "b"), (ref("b", "lid"),),
                          (Aggregate("count", None, "n"),))
        tree = Join(Scan("left", "a"), grouped,
                    (JoinCondition(ref("a", "id"), ref("b", "lid")),))
        with pytest.raises(UnsupportedQueryError):
            extract_query(QuerySpec("q", tree))

    def test_single_scan_query(self):
        tree = Filter(Scan("left", "a"),
                      Comparison(ref("a", "id"), ">", 0))
        extracted = extract_query(QuerySpec("q", push_down_filters(tree)))
        assert len(extracted.block.leaves) == 1

    def test_non_local_predicate_recorded(self):
        cross = Comparison(ref("a", "id"), "<", ref("b", "size"))
        tree = Filter(
            Join(Scan("left", "a"), Scan("right", "b"),
                 (JoinCondition(ref("a", "id"), ref("b", "lid")),)),
            cross,
        )
        extracted = extract_query(QuerySpec("q", push_down_filters(tree)))
        assert extracted.block.non_local_predicates == (cross,)


class TestJoinBlockInvariants:
    def make_block(self):
        return extract_query(two_way_spec()).block

    def test_alias_covered_twice_rejected(self):
        leaf = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "left")
        with pytest.raises(PlanError):
            JoinBlock("b", (leaf, leaf), ())

    def test_condition_over_unknown_alias_rejected(self):
        leaf = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "left")
        condition = JoinCondition(ref("a", "x"), ref("z", "y"))
        with pytest.raises(PlanError):
            JoinBlock("b", (leaf,), (condition,))

    def test_conditions_between(self):
        block = self.make_block()
        found = block.conditions_between(frozenset(("a",)),
                                         frozenset(("b",)))
        assert len(found) == 1
        assert block.conditions_between(frozenset(("a",)),
                                        frozenset(("a",))) == ()

    def test_leaf_for_unknown_alias(self):
        with pytest.raises(PlanError):
            self.make_block().leaf_for("zz")


class TestSubstitute:
    def three_leaf_block(self):
        tree = Join(
            Join(Scan("t1", "a"), Scan("t2", "b"),
                 (JoinCondition(ref("a", "k"), ref("b", "k")),)),
            Scan("t3", "c"),
            (JoinCondition(ref("b", "j"), ref("c", "j")),),
        )
        return extract_query(QuerySpec("q", tree)).block

    def test_substitute_merges_leaves(self):
        block = self.three_leaf_block()
        updated = block.substitute(frozenset(("a", "b")), "file1", ())
        assert len(updated.leaves) == 2
        merged = updated.leaf_for("a")
        assert merged.aliases == {"a", "b"}
        assert merged.source_name == "file1"
        # Condition a-b disappeared, b-c survives.
        assert len(updated.conditions) == 1

    def test_substitute_removes_applied_predicates(self):
        cross = Comparison(ref("a", "x"), "<", ref("b", "y"))
        block = self.three_leaf_block()
        block = JoinBlock(block.name, block.leaves, block.conditions,
                          (cross,))
        updated = block.substitute(frozenset(("a", "b")), "f", (cross,))
        assert updated.non_local_predicates == ()

    def test_substitute_misaligned_aliases_rejected(self):
        block = self.three_leaf_block()
        merged = block.substitute(frozenset(("a", "b")), "f", ())
        with pytest.raises(PlanError):
            # 'a' is now inside an intermediate covering {a, b}.
            merged.substitute(frozenset(("a", "c")), "g", ())

    def test_substitute_all_leaves(self):
        block = self.three_leaf_block()
        final = block.substitute(frozenset(("a", "b", "c")), "out", ())
        assert len(final.leaves) == 1
        assert final.conditions == ()


class TestSignatureLiteralNormalization:
    """Regression: signatures used to be normalized by a raw substring
    ``replace(f"{alias}.", "$.")`` over the rendered predicate, which
    mangled string literals containing ``<alias>.`` -- alias ``l`` inside
    the literal ``'ml.example'`` became ``'m$.example'``, so distinct
    predicates could collide and identical ones could miss reuse."""

    def leaf(self, alias, predicate):
        return BlockLeaf(frozenset((alias,)), SOURCE_TABLE, "t",
                         (predicate,))

    def test_literal_containing_alias_dot_survives_intact(self):
        pred = Comparison(ref("l", "domain"), "=", "ml.example")
        signature = self.leaf("l", pred).signature()
        assert "ml.example" in signature
        assert "$.example" not in signature

    def test_old_collision_pair_now_distinct(self):
        # Under substring replacement both rendered as ($.x = 'a$.b').
        leaf_l = self.leaf("l", Comparison(ref("l", "x"), "=", "al.b"))
        leaf_m = self.leaf("m", Comparison(ref("m", "x"), "=", "a$.b"))
        assert leaf_l.signature() != leaf_m.signature()

    def test_alias_independence_still_holds_with_tricky_literal(self):
        pred_l = Comparison(ref("l", "x"), "=", "zl.q")
        pred_k = Comparison(ref("k", "x"), "=", "zl.q")
        assert self.leaf("l", pred_l).signature() == \
            self.leaf("k", pred_k).signature()

    def test_compound_and_udf_predicates_normalize(self):
        from repro.jaql.expr import And, Or, UdfPredicate
        from repro.jaql.functions import Udf

        udf = Udf("touch", lambda value: True)
        pred_a = And((
            Or((Comparison(ref("a", "x"), "=", "ra.w"),
                Comparison(ref("a", "y"), "<", 3))),
            UdfPredicate(udf, (ref("a", "z"),)),
        ))
        pred_b = And((
            Or((Comparison(ref("b", "x"), "=", "ra.w"),
                Comparison(ref("b", "y"), "<", 3))),
            UdfPredicate(udf, (ref("b", "z"),)),
        ))
        assert self.leaf("a", pred_a).signature() == \
            self.leaf("b", pred_b).signature()
        assert "ra.w" in self.leaf("a", pred_a).signature()

    def test_column_to_column_comparison_normalizes_both_sides(self):
        pred_a = Comparison(ref("a", "x"), "<", ref("a", "y"))
        pred_b = Comparison(ref("b", "x"), "<", ref("b", "y"))
        assert self.leaf("a", pred_a).signature() == \
            self.leaf("b", pred_b).signature()


class TestLeafProvenance:
    def test_base_leaf_rejects_provenance(self):
        with pytest.raises(PlanError):
            BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t",
                      provenance="table:t|")

    def test_substitute_carries_provenance(self):
        pred = Comparison(ref("a", "color"), "=", "red")
        leaf_a = BlockLeaf(frozenset(("a",)), SOURCE_TABLE, "t", (pred,))
        leaf_b = BlockLeaf(frozenset(("b",)), SOURCE_TABLE, "u")
        block = JoinBlock(
            "q", (leaf_a, leaf_b),
            (JoinCondition(ref("a", "id"), ref("b", "aid")),),
        )
        updated = block.substitute(frozenset(("a",)), "pilot0.out", (),
                                   provenance=leaf_a.signature())
        substituted = updated.leaf_for("a")
        assert not substituted.is_base
        assert substituted.provenance == leaf_a.signature()
        # Join-result substitutions carry none.
        plain = block.substitute(frozenset(("a",)), "pilot0.out", ())
        assert plain.leaf_for("a").provenance is None
