"""PlanCache regressions: LRU eviction, missing-leaf fingerprints,
bounded per-block hit attribution, and correction-token salting.

Three of these are failing-before/passing-after regressions:

* eviction used to be FIFO (plain dict insertion order, no refresh on
  hit or overwrite), so the *hottest* entry was the first evicted once
  the cache filled;
* ``statistics_fingerprint`` indexed ``leaf_stats[signature]`` directly
  and raised ``KeyError`` when a contributing leaf had no statistics
  (possible under concurrent invalidation), killing the driver thread
  instead of missing;
* ``hits_by_block`` grew without bound -- block names are per-query
  prefixed in the service, so a long-lived service leaked one entry per
  query forever.
"""

from dataclasses import replace

import pytest

from repro.core.dyno import Dyno
from repro.data.tpch import generate_tpch
from repro.service.plan_cache import PlanCache, statistics_fingerprint
from repro.stats.statistics import TableStats


@pytest.fixture(scope="module")
def dyno():
    return Dyno(generate_tpch(0.01, seed=2014).tables)


def make_block(dyno, region: str, name: str = "query"):
    """A two-leaf join block; ``region`` varies the canonical key."""
    sql = (
        "SELECT n.n_name AS n FROM nation n, region r "
        "WHERE n.n_regionkey = r.r_regionkey "
        f"AND r.r_name = '{region}'"
    )
    return dyno.prepare(sql, name=name).block


def stats_for(block):
    return {leaf.signature(): TableStats(100.0, 1000.0)
            for leaf in block.leaves}


class TestLruEviction:
    def test_hit_refreshes_recency(self, dyno):
        """Regression: FIFO evicted the oldest *stored* entry even when it
        was the most recently *used* one."""
        cache = PlanCache(max_entries=2)
        block_a = make_block(dyno, "ASIA")
        block_b = make_block(dyno, "EUROPE")
        block_c = make_block(dyno, "AFRICA")
        cache.store(block_a, stats_for(block_a), plan="plan-a", cost=1.0)
        cache.store(block_b, stats_for(block_b), plan="plan-b", cost=1.0)
        # Touch A: it is now the most recently used entry.
        assert cache.lookup(block_a, stats_for(block_a)) is not None
        # C evicts the LRU entry -- B, not A.
        cache.store(block_c, stats_for(block_c), plan="plan-c", cost=1.0)
        assert cache.lookup(block_a, stats_for(block_a)) is not None
        assert cache.lookup(block_b, stats_for(block_b)) is None
        assert cache.lookup(block_c, stats_for(block_c)) is not None

    def test_overwrite_refreshes_recency(self, dyno):
        cache = PlanCache(max_entries=2)
        block_a = make_block(dyno, "ASIA")
        block_b = make_block(dyno, "EUROPE")
        block_c = make_block(dyno, "AFRICA")
        cache.store(block_a, stats_for(block_a), plan="plan-a", cost=1.0)
        cache.store(block_b, stats_for(block_b), plan="plan-b", cost=1.0)
        # Re-storing A (same key) must move it to the MRU end.
        cache.store(block_a, stats_for(block_a), plan="plan-a2", cost=2.0)
        cache.store(block_c, stats_for(block_c), plan="plan-c", cost=1.0)
        refreshed = cache.lookup(block_a, stats_for(block_a))
        assert refreshed is not None and refreshed.plan == "plan-a2"
        assert cache.lookup(block_b, stats_for(block_b)) is None

    def test_capacity_is_enforced(self, dyno):
        cache = PlanCache(max_entries=3)
        regions = ["ASIA", "EUROPE", "AFRICA", "AMERICA", "MIDDLE EAST"]
        for region in regions:
            block = make_block(dyno, region)
            cache.store(block, stats_for(block), plan=region, cost=1.0)
        assert len(cache) == 3


class TestMissingLeafStatistics:
    def test_fingerprint_degrades_to_none(self, dyno):
        """Regression: a contributing leaf without statistics raised
        KeyError instead of reporting 'no fingerprint'."""
        block = make_block(dyno, "ASIA")
        incomplete = stats_for(block)
        incomplete.pop(next(iter(incomplete)))
        assert statistics_fingerprint(block, incomplete) is None
        assert statistics_fingerprint(block, {}) is None

    def test_lookup_becomes_a_miss_not_a_crash(self, dyno):
        cache = PlanCache()
        block = make_block(dyno, "ASIA")
        cache.store(block, stats_for(block), plan="plan", cost=1.0)
        assert cache.lookup(block, {}) is None
        assert cache.summary()["misses"] == 1
        # The complete mapping still hits: the entry was not disturbed.
        assert cache.lookup(block, stats_for(block)) is not None

    def test_store_without_statistics_is_a_noop(self, dyno):
        cache = PlanCache()
        block = make_block(dyno, "ASIA")
        cache.store(block, {}, plan="plan", cost=1.0)
        assert len(cache) == 0


class TestHitsByBlockBound:
    def test_many_prefixed_queries_stay_bounded(self, dyno):
        """Regression: per-query prefixed block names accumulated in
        ``hits_by_block`` forever (a slow leak in a long-lived service)."""
        cache = PlanCache(max_block_stats=50)
        block = make_block(dyno, "ASIA")
        stats = stats_for(block)
        cache.store(block, stats, plan="plan", cost=1.0)
        for query in range(2000):
            prefixed = replace(block, name=f"b0.q{query:04d}.Q")
            assert cache.lookup(prefixed, stats) is not None
        assert len(cache.hits_by_block) <= 50
        # Attribution still works for the *recent* (in-flight) names.
        assert cache.hits_for_prefix("b0.q1999.") == 1
        assert cache.summary()["hits"] == 2000


class TestCorrectionSalt:
    def test_salt_partitions_the_fingerprint(self, dyno):
        block = make_block(dyno, "ASIA")
        stats = stats_for(block)
        cache = PlanCache()
        cache.store(block, stats, plan="uncorrected", cost=1.0)
        # A corrected optimizer state must not see the uncorrected plan.
        assert cache.lookup(block, stats, salt="abc123") is None
        cache.store(block, stats, plan="corrected", cost=0.5, salt="abc123")
        hit = cache.lookup(block, stats, salt="abc123")
        assert hit is not None and hit.plan == "corrected"
        hit = cache.lookup(block, stats)
        assert hit is not None and hit.plan == "uncorrected"

    def test_empty_salt_matches_unsalted(self, dyno):
        block = make_block(dyno, "ASIA")
        stats = stats_for(block)
        assert statistics_fingerprint(block, stats, "") == \
            statistics_fingerprint(block, stats)
