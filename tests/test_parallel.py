"""Parallel data-path executor: levels, equivalence with serial, failures.

The contract under test (docs/performance.md): with
``ExecutorConfig.parallel_jobs`` enabled, ``execute_batch`` produces
*byte-identical* results to serial execution -- same output rows in the
same order, same counters, same collected statistics, same simulated
makespans -- and failures (broadcast-build overflow in particular)
propagate exactly as they do serially.
"""

from dataclasses import replace

import pytest

from repro.cluster.job import BroadcastBuild, MapReduceJob, TaskContext
from repro.cluster.parallel import (
    JobSkipped,
    ParallelJobExecutor,
    dependency_levels,
    topological_order,
)
from repro.cluster.runtime import ClusterRuntime
from repro.config import DEFAULT_CONFIG, ClusterConfig, DynoConfig, ExecutorConfig
from repro.core.dynopt import MODE_DYNOPT
from repro.core.pilot import PILR_MT, PilotRunner
from repro.data.schema import INT, STRING, Schema
from repro.errors import BroadcastBuildOverflowError, JobError
from repro.storage.dfs import DistributedFileSystem
from repro.workloads.queries import q8_prime
from tests.conftest import assert_same_rows

SCHEMA = Schema.of(key=INT, value=STRING)


class _Named:
    def __init__(self, name):
        self.name = name


def _names(levels):
    return [[job.name for job in level] for level in levels]


class TestDependencyLevels:
    def test_independent_jobs_share_one_level(self):
        jobs = [_Named("a"), _Named("b"), _Named("c")]
        assert _names(dependency_levels(jobs, {})) == [["a", "b", "c"]]

    def test_chain_is_one_job_per_level(self):
        jobs = [_Named("a"), _Named("b"), _Named("c")]
        deps = {"b": ["a"], "c": ["b"]}
        assert _names(dependency_levels(jobs, deps)) == [["a"], ["b"], ["c"]]

    def test_diamond(self):
        jobs = [_Named(n) for n in "abcd"]
        deps = {"b": ["a"], "c": ["a"], "d": ["b", "c"]}
        assert _names(dependency_levels(jobs, deps)) == \
            [["a"], ["b", "c"], ["d"]]

    def test_batch_order_preserved_within_level(self):
        jobs = [_Named("z"), _Named("m"), _Named("a")]
        assert _names(dependency_levels(jobs, {})) == [["z", "m", "a"]]

    def test_missing_dependency_rejected(self):
        with pytest.raises(JobError, match="depends on 'ghost'"):
            dependency_levels([_Named("a")], {"a": ["ghost"]})

    def test_cycle_rejected(self):
        jobs = [_Named("a"), _Named("b")]
        with pytest.raises(JobError, match="cycle"):
            dependency_levels(jobs, {"a": ["b"], "b": ["a"]})

    def test_topological_order_flattens_levels(self):
        jobs = [_Named(n) for n in "abcd"]
        deps = {"b": ["a"], "c": ["a"], "d": ["b", "c"]}
        order = [job.name for job in topological_order(jobs, deps)]
        assert order == ["a", "b", "c", "d"]


class TestExecutorOutcomes:
    def test_results_keyed_by_job_name(self):
        executor = ParallelJobExecutor(ExecutorConfig(parallel_jobs=True))
        levels = [[_Named("a"), _Named("b")]]
        outcomes = executor.run(levels, {}, lambda job, gate: job.name.upper())
        assert outcomes == {"a": "A", "b": "B"}

    def test_failure_skips_later_levels(self):
        executor = ParallelJobExecutor(ExecutorConfig(parallel_jobs=True))
        levels = [[_Named("a"), _Named("b")], [_Named("c"), _Named("d")]]

        def data_pass(job, gate):
            if job.name == "b":
                raise ValueError("boom")
            return job.name

        outcomes = executor.run(levels, {}, data_pass)
        assert outcomes["a"] == "a"
        assert isinstance(outcomes["b"], ValueError)
        assert isinstance(outcomes["c"], JobSkipped)
        assert isinstance(outcomes["d"], JobSkipped)

    def test_narrow_levels_run_inline_after_failure(self):
        executor = ParallelJobExecutor(ExecutorConfig(parallel_jobs=True))
        levels = [[_Named("a")], [_Named("b")]]

        def data_pass(job, gate):
            if job.name == "a":
                raise ValueError("boom")
            return job.name  # pragma: no cover - must be skipped

        outcomes = executor.run(levels, {}, data_pass)
        assert isinstance(outcomes["a"], ValueError)
        assert isinstance(outcomes["b"], JobSkipped)

    def test_gates_are_routed_to_their_job(self):
        executor = ParallelJobExecutor(ExecutorConfig(parallel_jobs=True))
        levels = [[_Named("a"), _Named("b")]]
        gates = {"a": "gate-a", "b": "gate-b"}
        outcomes = executor.run(levels, gates, lambda job, gate: gate)
        assert outcomes == {"a": "gate-a", "b": "gate-b"}

    def test_process_pool_degrades_to_threads_on_unpicklable_work(self):
        executor = ParallelJobExecutor(
            ExecutorConfig(parallel_jobs=True, pool="process")
        )
        captured = []
        levels = [[_Named("a"), _Named("b")]]
        outcomes = executor.run(
            levels, {}, lambda job, gate: captured.append(job.name) or job.name
        )
        # A closure over `captured` cannot be pickled; the thread fallback
        # shares memory so the appends are visible here.
        assert outcomes == {"a": "a", "b": "b"}
        assert sorted(captured) == ["a", "b"]


# ---------------------------------------------------------------------------
# Serial/parallel equivalence through the cluster runtime
# ---------------------------------------------------------------------------

N_ROWS = 120


def small_config(parallel: bool) -> DynoConfig:
    config = DynoConfig(cluster=ClusterConfig(block_size_bytes=256,
                                              task_memory_bytes=4096))
    return config.with_parallel_execution() if parallel else config


def make_runtime(config: DynoConfig) -> ClusterRuntime:
    dfs = DistributedFileSystem(config.cluster.block_size_bytes)
    dfs.write_rows(
        "input", SCHEMA,
        [{"key": i % 10, "value": f"v{i}"} for i in range(N_ROWS)],
    )
    return ClusterRuntime(dfs, config)


def identity_mapper(context: TaskContext, source: str, rows) -> None:
    for row in rows:
        context.emit(None, row)


def keyed_mapper(context: TaskContext, source: str, rows) -> None:
    for row in rows:
        context.emit(row["key"], row)


def counting_reducer(context: TaskContext, key, values) -> None:
    context.emit(None, {"key": key, "value": f"n{len(values)}"})


def mixed_batch() -> list[MapReduceJob]:
    """Independent jobs covering map-only, stats collection, and reduce."""
    return [
        MapReduceJob("copy", ["input"], identity_mapper, "copy.out", SCHEMA),
        MapReduceJob("stats", ["input"], identity_mapper, "stats.out", SCHEMA,
                     stats_columns=["key", "value"]),
        MapReduceJob("group", ["input"], keyed_mapper, "group.out", SCHEMA,
                     reducer=counting_reducer, num_reducers=4,
                     stats_columns=["key"]),
    ]


def batch_observables(runtime: ClusterRuntime, batch):
    """Everything a caller can see from one executed batch."""
    observed = {"makespan": batch.makespan}
    for name, result in batch.results.items():
        stats = result.collected_stats
        observed[name] = {
            "rows": runtime.dfs.open(result.output_name).rows,
            "output_bytes": result.output_bytes,
            "counters": result.counters.as_dict(),
            "map_seconds": result.map_task_seconds,
            "reduce_seconds": result.reduce_task_seconds,
            "stats": stats.to_dict() if stats is not None else None,
            "elapsed": result.elapsed_seconds,
        }
    return observed


class TestRuntimeEquivalence:
    def test_parallel_batch_byte_identical_to_serial(self):
        serial_rt = make_runtime(small_config(parallel=False))
        parallel_rt = make_runtime(small_config(parallel=True))
        serial = serial_rt.execute_batch(mixed_batch())
        parallel = parallel_rt.execute_batch(mixed_batch())
        assert batch_observables(parallel_rt, parallel) == \
            batch_observables(serial_rt, serial)
        assert parallel_rt.dfs.bytes_read == serial_rt.dfs.bytes_read
        assert parallel_rt.dfs.bytes_written == serial_rt.dfs.bytes_written

    def test_dependent_jobs_still_ordered(self):
        """A consumer of a parallel level's output reads finalized data."""

        def build_jobs():
            first = mixed_batch()
            consumer = MapReduceJob(
                "consume", ["copy.out"], keyed_mapper, "consume.out", SCHEMA,
                reducer=counting_reducer, num_reducers=2,
            )
            return first + [consumer], {"consume": ["copy", "group"]}

        serial_rt = make_runtime(small_config(parallel=False))
        parallel_rt = make_runtime(small_config(parallel=True))
        jobs, deps = build_jobs()
        serial = serial_rt.execute_batch(jobs, deps)
        jobs, deps = build_jobs()
        parallel = parallel_rt.execute_batch(jobs, deps)
        assert batch_observables(parallel_rt, parallel) == \
            batch_observables(serial_rt, serial)

    def test_single_job_batch_never_uses_pool(self):
        runtime = make_runtime(small_config(parallel=True))
        job = MapReduceJob("solo", ["input"], identity_mapper, "solo.out",
                           SCHEMA)
        assert not runtime._use_parallel([[job]])
        result = runtime.execute(job)
        assert result.output_rows == N_ROWS

    def test_overflow_propagates_from_worker(self):
        """BroadcastBuildOverflowError surfaces exactly as in serial mode."""

        def overflowing_jobs():
            build = BroadcastBuild(
                input_file="input",
                loader=lambda rows: [
                    dict(row, value=row["value"] * 200) for row in rows
                ],
                description="oversized build",
            )
            bad = MapReduceJob("bad", ["input"], identity_mapper, "bad.out",
                               SCHEMA, broadcast_builds=[build])
            good = MapReduceJob("good", ["input"], identity_mapper,
                                "good.out", SCHEMA)
            return [good, bad]

        serial_rt = make_runtime(small_config(parallel=False))
        with pytest.raises(BroadcastBuildOverflowError) as serial_err:
            serial_rt.execute_batch(overflowing_jobs())

        parallel_rt = make_runtime(small_config(parallel=True))
        with pytest.raises(BroadcastBuildOverflowError) as parallel_err:
            parallel_rt.execute_batch(overflowing_jobs())

        assert str(parallel_err.value) == str(serial_err.value)

    def test_failed_batch_finalizes_no_successor(self):
        """Jobs after a failure are never finalized (no output files)."""

        def exploding_mapper(context, source, rows):
            raise ValueError("mapper exploded")

        jobs = [
            MapReduceJob("boom", ["input"], exploding_mapper, "boom.out",
                         SCHEMA),
            MapReduceJob("other", ["input"], identity_mapper, "other.out",
                         SCHEMA),
            MapReduceJob("after", ["input"], identity_mapper, "after.out",
                         SCHEMA),
        ]
        deps = {"after": ["boom"]}
        runtime = make_runtime(small_config(parallel=True))
        with pytest.raises(ValueError, match="mapper exploded"):
            runtime.execute_batch(jobs, deps)
        assert not runtime.dfs.exists("after.out")


# ---------------------------------------------------------------------------
# End-to-end equivalence: pilots and DYNOPT
# ---------------------------------------------------------------------------


def parallel_variants():
    return [
        pytest.param(DEFAULT_CONFIG, id="serial"),
        pytest.param(DEFAULT_CONFIG.with_parallel_execution(), id="threads"),
        pytest.param(
            DEFAULT_CONFIG.with_parallel_execution(pool="process"),
            id="process-degraded",
        ),
    ]


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def serial_pilots(self, tpch_tables):
        return self._run_pilots(tpch_tables, DEFAULT_CONFIG)

    @staticmethod
    def _run_pilots(tables, config):
        from repro.core.dyno import Dyno

        workload = q8_prime()
        dyno = Dyno(tables, config=config, udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        runner = PilotRunner(dyno.runtime, dyno.metastore, config)
        return runner.run(block, mode=PILR_MT)

    @pytest.mark.parametrize("config", parallel_variants()[1:])
    def test_pilr_mt_identical_under_parallel_execution(
            self, tpch_tables, serial_pilots, config):
        report = self._run_pilots(tpch_tables, config)
        assert report.simulated_seconds == serial_pilots.simulated_seconds
        assert set(report.outcomes) == set(serial_pilots.outcomes)
        for signature, outcome in report.outcomes.items():
            reference = serial_pilots.outcomes[signature]
            assert outcome.stats.to_dict() == reference.stats.to_dict()
            assert outcome.output_rows == reference.output_rows
            assert outcome.scanned_fraction == reference.scanned_fraction

    @pytest.fixture(scope="class")
    def serial_dynopt(self, tpch_tables):
        return self._run_dynopt(tpch_tables, DEFAULT_CONFIG)

    @staticmethod
    def _run_dynopt(tables, config):
        from repro.core.dyno import Dyno

        workload = q8_prime()
        # A tight memory budget keeps several leaf jobs in one DYNOPT step,
        # so the parallel executor actually engages.
        tight = replace(
            config,
            cluster=replace(config.cluster, task_memory_bytes=8 * 1024),
            optimizer=replace(config.optimizer,
                              max_broadcast_bytes=8 * 1024),
        )
        dyno = Dyno(tables, config=tight, udfs=workload.udfs)
        return dyno.execute(workload.final_spec, mode=MODE_DYNOPT)

    @pytest.mark.parametrize("config", parallel_variants()[1:])
    def test_q8_dynopt_identical_under_parallel_execution(
            self, tpch_tables, serial_dynopt, config):
        execution = self._run_dynopt(tpch_tables, config)
        assert execution.rows == serial_dynopt.rows
        assert execution.total_seconds == serial_dynopt.total_seconds
        assert_same_rows(execution.rows, serial_dynopt.rows)
