"""Statistics metastore: signature store and persistence."""

import pytest

from repro.errors import StatisticsError
from repro.stats.metastore import StatisticsMetastore
from repro.stats.statistics import ColumnStats, TableStats


def sample_stats():
    return TableStats(100.0, 5000.0, {
        "a.x": ColumnStats("a.x", 10.0, 1, 99, 0.05),
    }, exact=True)


class TestStore:
    def test_put_get(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        assert "sig" in store
        assert store.get("sig").row_count == 100.0
        assert store.get("missing") is None

    def test_len_and_iter(self):
        store = StatisticsMetastore()
        store.put("b", sample_stats())
        store.put("a", sample_stats())
        assert len(store) == 2
        assert list(store) == ["a", "b"]

    def test_empty_signature_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsMetastore().put("", sample_stats())

    def test_overwrite_updates(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.put("sig", TableStats(1.0, 1.0))
        assert store.get("sig").row_count == 1.0

    def test_invalidate(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.invalidate("sig")
        assert "sig" not in store
        store.invalidate("sig")  # idempotent

    def test_clear(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.clear()
        assert len(store) == 0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = StatisticsMetastore()
        store.put("table:orders|", sample_stats())
        store.put("intermediate:x", TableStats(7.0, 70.0))
        path = tmp_path / "stats.json"
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert len(restored) == 2
        entry = restored.get("table:orders|")
        assert entry.exact
        assert entry.column("a.x").min_value == 1
        assert entry.column("a.x").null_fraction == pytest.approx(0.05)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(tmp_path / "ghost.json")

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(path)

    def test_load_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(path)

    def test_save_is_atomic_on_failure(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous file untouched
        (save used to truncate the target in place)."""
        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        store.put("keep-me", sample_stats())
        store.save(path)
        before = path.read_text()

        import repro.stats.metastore as module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(module.os, "replace", exploding_replace)
        store.put("new-entry", TableStats(1.0, 1.0))
        with pytest.raises(OSError):
            store.save(path)
        assert path.read_text() == before
        # The staging file is cleaned up, not left littering the directory.
        assert list(tmp_path.iterdir()) == [path]

    def test_save_overwrites_previous_contents(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.save(path)
        store.clear()
        store.put("only", TableStats(2.0, 20.0))
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert list(restored) == ["only"]


class TestThreadSafety:
    """Regression: save() used to iterate the live entries dict while
    serializing, so a concurrent put() raised "dictionary changed size
    during iteration" and could leave a truncated file behind."""

    def test_writers_racing_save(self, tmp_path):
        import sys
        import threading

        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        for index in range(2000):
            store.put(f"seed-{index}", TableStats(float(index), 1.0))

        errors = []
        writers_done = threading.Event()
        stats = TableStats(1.0, 2.0)

        def writer(worker):
            try:
                for index in range(20000):
                    store.put(f"w{worker}-{index}", stats)
            except Exception as error:  # pragma: no cover - the bug
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(worker,))
                   for worker in range(4)]

        def run_writers():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            writers_done.set()

        # A tiny switch interval widens the race window enough that the
        # old unlocked save() reliably died with "dictionary changed size
        # during iteration".
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        driver = threading.Thread(target=run_writers)
        driver.start()
        try:
            while not writers_done.is_set():
                store.save(path)
        except Exception as error:  # pragma: no cover - the bug
            errors.append(error)
        finally:
            driver.join()
            sys.setswitchinterval(interval)
        assert errors == []
        # Every save wrote a loadable snapshot; the final one is complete.
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert len(restored) == 2000 + 4 * 20000
        assert "seed-0" in restored and "w3-19999" in restored

    def test_subscribers_see_every_put(self):
        seen = []
        store = StatisticsMetastore()
        store.subscribe(lambda signature, stats: seen.append(signature))
        store.put("a", TableStats(1.0, 1.0))
        store.put("b", TableStats(2.0, 2.0))
        store.put("a", TableStats(3.0, 3.0))  # updates notify too
        assert seen == ["a", "b", "a"]

    def test_listener_may_reenter_the_store(self):
        store = StatisticsMetastore()
        store.subscribe(lambda signature, stats: len(store))
        store.put("a", TableStats(1.0, 1.0))  # must not deadlock
        assert "a" in store
