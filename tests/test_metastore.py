"""Statistics metastore: signature store, CDC delta folds, persistence."""

import pytest

from repro.errors import StatisticsError
from repro.stats.metastore import (
    StatisticsMetastore,
    bare_table_signature,
    table_signature_prefix,
)
from repro.stats.statistics import ColumnStats, TableStats


def sample_stats():
    return TableStats(100.0, 5000.0, {
        "a.x": ColumnStats("a.x", 10.0, 1, 99, 0.05),
    }, exact=True)


class TestStore:
    def test_put_get(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        assert "sig" in store
        assert store.get("sig").row_count == 100.0
        assert store.get("missing") is None

    def test_len_and_iter(self):
        store = StatisticsMetastore()
        store.put("b", sample_stats())
        store.put("a", sample_stats())
        assert len(store) == 2
        assert list(store) == ["a", "b"]

    def test_empty_signature_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsMetastore().put("", sample_stats())

    def test_overwrite_updates(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.put("sig", TableStats(1.0, 1.0))
        assert store.get("sig").row_count == 1.0

    def test_invalidate(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.invalidate("sig")
        assert "sig" not in store
        store.invalidate("sig")  # idempotent

    def test_clear(self):
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.clear()
        assert len(store) == 0


class TestInvalidationNotifies:
    def test_listener_sees_effective_invalidations_with_none(self):
        events = []
        store = StatisticsMetastore()
        store.subscribe(lambda sig, stats: events.append((sig, stats)))
        store.put("sig", sample_stats())
        store.invalidate("sig")
        assert events[-1] == ("sig", None)

    def test_noop_invalidation_stays_silent(self):
        """Dropping a signature that was never stored must not wake the
        caches -- they would scan every shard for nothing."""
        events = []
        store = StatisticsMetastore()
        store.subscribe(lambda sig, stats: events.append(sig))
        store.invalidate("ghost")
        assert events == []


class TestEpochs:
    def test_epochs_start_at_zero_and_count_up(self):
        store = StatisticsMetastore()
        assert store.table_epoch("orders") == 0
        assert store.bump_table_epoch("orders") == 1
        assert store.bump_table_epoch("orders") == 2
        assert store.table_epoch("orders") == 2
        assert store.table_epoch("other") == 0

    def test_epochs_are_not_persisted(self, tmp_path):
        """Epochs guard in-memory caches; a fresh session re-pilots
        anyway, so they deliberately stay out of the JSON file."""
        store = StatisticsMetastore()
        store.put(bare_table_signature("orders"), sample_stats())
        store.bump_table_epoch("orders")
        path = tmp_path / "stats.json"
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert restored.table_epoch("orders") == 0


class TestSignaturesForTable:
    def test_prefix_excludes_delta_tables(self):
        """`table:orders@delta0|...` is a different table (the batch's
        delta file), not a predicated signature over `orders` -- the '@'
        falls outside the `table:orders|` prefix, so a CDC fold over the
        base table can never clobber delta-file statistics."""
        store = StatisticsMetastore()
        store.put(bare_table_signature("orders"), sample_stats())
        store.put("table:orders|price>5", sample_stats())
        store.put("table:orders@delta0|", sample_stats())
        store.put("table:orders2|", sample_stats())
        assert store.signatures_for_table("orders") == [
            "table:orders|", "table:orders|price>5",
        ]
        assert table_signature_prefix("orders") == "table:orders|"


class TestApplyTableDelta:
    def seeded(self):
        store = StatisticsMetastore()
        store.put(bare_table_signature("orders"), sample_stats())
        store.put("table:orders|price>5",
                  TableStats(40.0, 2000.0, exact=True))
        store.put("table:orders@delta0|", TableStats(3.0, 30.0))
        return store

    def test_append_only_merges_bare_and_invalidates_predicated(self):
        store = self.seeded()
        actions = store.apply_table_delta("orders", delta_rows=10.0,
                                          delta_bytes=500.0,
                                          append_only=True)
        assert actions == {
            "table:orders|": "merged",
            "table:orders|price>5": "invalidated",
        }
        merged = store.get("table:orders|")
        assert merged.row_count == 110.0
        assert merged.size_bytes == 5500.0
        # synopses survive the merge but can no longer claim exactness:
        # distinct counts/extrema under-report the appended rows.
        assert not merged.exact
        assert merged.column("a.x").distinct_values == 10.0
        assert store.get("table:orders|price>5") is None
        assert store.table_epoch("orders") == 1

    def test_deletes_invalidate_everything(self):
        """Synopses cannot un-count: any batch with deletes or updates
        must force re-piloting of every signature over the table, the
        bare scan included."""
        store = self.seeded()
        actions = store.apply_table_delta("orders", delta_rows=5.0,
                                          delta_bytes=0.0,
                                          append_only=False)
        assert actions == {
            "table:orders|": "invalidated",
            "table:orders|price>5": "invalidated",
        }
        assert store.get("table:orders|") is None
        assert store.get("table:orders|price>5") is None
        assert store.table_epoch("orders") == 1

    def test_delta_file_signatures_are_untouched(self):
        store = self.seeded()
        store.apply_table_delta("orders", delta_rows=5.0, delta_bytes=0.0,
                                append_only=False)
        assert store.get("table:orders@delta0|").row_count == 3.0

    def test_fold_notifies_listeners_per_signature(self):
        store = self.seeded()
        events = []
        store.subscribe(lambda sig, stats: events.append((sig, stats is None)))
        store.apply_table_delta("orders", delta_rows=1.0, delta_bytes=10.0,
                                append_only=True)
        assert ("table:orders|", False) in events      # merged -> put
        assert ("table:orders|price>5", True) in events  # invalidated

    def test_unknown_table_is_a_noop_with_an_epoch_bump(self):
        store = StatisticsMetastore()
        assert store.apply_table_delta("ghost", 1.0, 1.0,
                                       append_only=True) == {}
        assert store.table_epoch("ghost") == 1


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = StatisticsMetastore()
        store.put("table:orders|", sample_stats())
        store.put("intermediate:x", TableStats(7.0, 70.0))
        path = tmp_path / "stats.json"
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert len(restored) == 2
        entry = restored.get("table:orders|")
        assert entry.exact
        assert entry.column("a.x").min_value == 1
        assert entry.column("a.x").null_fraction == pytest.approx(0.05)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(tmp_path / "ghost.json")

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(path)

    def test_load_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(StatisticsError):
            StatisticsMetastore.load(path)

    def test_save_is_atomic_on_failure(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous file untouched
        (save used to truncate the target in place)."""
        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        store.put("keep-me", sample_stats())
        store.save(path)
        before = path.read_text()

        import repro.stats.metastore as module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(module.os, "replace", exploding_replace)
        store.put("new-entry", TableStats(1.0, 1.0))
        with pytest.raises(OSError):
            store.save(path)
        assert path.read_text() == before
        # The staging file is cleaned up, not left littering the directory.
        assert list(tmp_path.iterdir()) == [path]

    def test_save_overwrites_previous_contents(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        store.put("sig", sample_stats())
        store.save(path)
        store.clear()
        store.put("only", TableStats(2.0, 20.0))
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert list(restored) == ["only"]


class TestThreadSafety:
    """Regression: save() used to iterate the live entries dict while
    serializing, so a concurrent put() raised "dictionary changed size
    during iteration" and could leave a truncated file behind."""

    def test_writers_racing_save(self, tmp_path):
        import sys
        import threading

        path = tmp_path / "stats.json"
        store = StatisticsMetastore()
        for index in range(2000):
            store.put(f"seed-{index}", TableStats(float(index), 1.0))

        errors = []
        writers_done = threading.Event()
        stats = TableStats(1.0, 2.0)

        def writer(worker):
            try:
                for index in range(20000):
                    store.put(f"w{worker}-{index}", stats)
            except Exception as error:  # pragma: no cover - the bug
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(worker,))
                   for worker in range(4)]

        def run_writers():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            writers_done.set()

        # A tiny switch interval widens the race window enough that the
        # old unlocked save() reliably died with "dictionary changed size
        # during iteration".
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        driver = threading.Thread(target=run_writers)
        driver.start()
        try:
            while not writers_done.is_set():
                store.save(path)
        except Exception as error:  # pragma: no cover - the bug
            errors.append(error)
        finally:
            driver.join()
            sys.setswitchinterval(interval)
        assert errors == []
        # Every save wrote a loadable snapshot; the final one is complete.
        store.save(path)
        restored = StatisticsMetastore.load(path)
        assert len(restored) == 2000 + 4 * 20000
        assert "seed-0" in restored and "w3-19999" in restored

    def test_subscribers_see_every_put(self):
        seen = []
        store = StatisticsMetastore()
        store.subscribe(lambda signature, stats: seen.append(signature))
        store.put("a", TableStats(1.0, 1.0))
        store.put("b", TableStats(2.0, 2.0))
        store.put("a", TableStats(3.0, 3.0))  # updates notify too
        assert seen == ["a", "b", "a"]

    def test_listener_may_reenter_the_store(self):
        store = StatisticsMetastore()
        store.subscribe(lambda signature, stats: len(store))
        store.put("a", TableStats(1.0, 1.0))  # must not deadlock
        assert "a" in store
