"""Backends change timing, never results; policies change nothing either."""

from dataclasses import replace

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.validation import verify_workload
from repro.workloads.queries import q7, q9_prime, q10

FACTORIES = [q7, q9_prime, q10]


@pytest.mark.parametrize("factory", FACTORIES)
def test_hive_backend_matches_oracle(tpch_tables, factory):
    workload = factory()
    dyno = Dyno(tpch_tables, config=DEFAULT_CONFIG.with_backend("hive"),
                udfs=workload.udfs)
    report = verify_workload(dyno, workload.final_spec)
    assert report.matches, report.describe()


@pytest.mark.parametrize("factory", FACTORIES[:2])
def test_fair_scheduler_matches_oracle(tpch_tables, factory):
    workload = factory()
    config = replace(
        DEFAULT_CONFIG,
        cluster=replace(DEFAULT_CONFIG.cluster, scheduler_policy="fair"),
    )
    dyno = Dyno(tpch_tables, config=config, udfs=workload.udfs)
    report = verify_workload(dyno, workload.final_spec)
    assert report.matches, report.describe()


# The legacy config-level failure knob now consumes the task-attempt
# budget (an exhausted task kills its job); a generous budget keeps these
# equivalence tests exercising pure time inflation. Exhaustion-at-default
# is covered in tests/test_runtime.py, end-to-end recovery in
# tests/test_fault_matrix.py.
def test_failure_injection_matches_oracle(tpch_tables):
    workload = q10()
    config = replace(
        DEFAULT_CONFIG,
        cluster=replace(DEFAULT_CONFIG.cluster, task_failure_rate=0.3,
                        max_task_attempts=64),
    )
    dyno = Dyno(tpch_tables, config=config, udfs=workload.udfs)
    report = verify_workload(dyno, workload.final_spec)
    assert report.matches, report.describe()


def test_failure_injection_costs_time_not_rows(tpch_tables):
    workload = q10()
    clean_dyno = Dyno(tpch_tables, udfs=workload.udfs)
    clean = clean_dyno.execute(workload.final_spec, mode="simple")

    flaky_config = replace(
        DEFAULT_CONFIG,
        cluster=replace(DEFAULT_CONFIG.cluster, task_failure_rate=0.4,
                        max_task_attempts=64),
    )
    flaky_dyno = Dyno(tpch_tables, config=flaky_config, udfs=workload.udfs)
    flaky = flaky_dyno.execute(workload.final_spec, mode="simple")
    assert flaky.execution_seconds > clean.execution_seconds
    assert len(flaky.rows) == len(clean.rows)
