"""Log-analysis workload: nested structs, bot UDF, correlated predicates."""

import pytest

from repro.core.dyno import Dyno
from repro.workloads.cords import discover_correlations
from repro.workloads.weblogs import (
    ENGINE_OF_BROWSER,
    generate_weblogs,
    is_human,
    weblog_engagement,
    weblog_premium_blink,
)
from tests.conftest import assert_same_rows, reference_rows


@pytest.fixture(scope="module")
def weblogs():
    return generate_weblogs(user_count=100, page_count=50,
                            event_count=3000, seed=23)


class TestGenerator:
    def test_deterministic(self):
        first = generate_weblogs(event_count=100, seed=1)
        second = generate_weblogs(event_count=100, seed=1)
        assert first["pageviews"].rows == second["pageviews"].rows

    def test_nested_client_struct(self, weblogs):
        row = weblogs["pageviews"].rows[0]
        assert set(row["client"]) == {"ua", "browser", "engine", "ip"}
        assert isinstance(row["tags"], list)

    def test_browser_determines_engine(self, weblogs):
        for row in weblogs["pageviews"].rows:
            client = row["client"]
            assert ENGINE_OF_BROWSER[client["browser"]] == client["engine"]

    def test_referential_integrity(self, weblogs):
        user_ids = {row["userid"] for row in weblogs["users"]}
        urls = {row["url"] for row in weblogs["pages"]}
        for row in weblogs["pageviews"].rows[:500]:
            assert row["userid"] in user_ids
            assert row["url"] in urls

    def test_bot_fraction_realized(self, weblogs):
        bots = sum(1 for row in weblogs["pageviews"].rows
                   if not is_human(row["client"]["ua"]))
        fraction = bots / len(weblogs["pageviews"])
        assert fraction == pytest.approx(0.3, abs=0.05)


class TestUdf:
    def test_is_human(self):
        assert is_human("chrome/117.0")
        assert not is_human("bot/99.0")
        assert not is_human(None)
        assert not is_human(42)


class TestQueries:
    def test_engagement_matches_reference(self, weblogs):
        workload = weblog_engagement()
        dyno = Dyno(weblogs, udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(weblogs, workload.final_spec)
        assert len(execution.rows) == len(expected)
        assert (sorted(round(r["dwell"], 1) for r in execution.rows)
                == sorted(round(r["dwell"], 1) for r in expected))

    def test_pilot_measures_bot_filter(self, weblogs):
        workload = weblog_engagement()
        dyno = Dyno(weblogs, udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        report = dyno.executor.pilot_runner.run(block)
        pv = block.leaf_for("pv")
        estimated = report.outcomes[pv.signature()].stats.row_count
        truth = sum(
            1 for row in weblogs["pageviews"].rows
            if is_human(row["client"]["ua"]) and row["dwell_ms"] >= 1000
        )
        assert estimated == pytest.approx(truth, rel=0.35)

    def test_premium_blink_matches_reference(self, weblogs):
        workload = weblog_premium_blink()
        dyno = Dyno(weblogs, udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(weblogs, workload.final_spec)
        assert_same_rows(execution.rows, expected)

    def test_correlated_predicates_on_nested_paths(self, weblogs):
        """Independence underestimates chrome+blink by the engine factor."""
        from repro.core.baselines import oracle_leaf_stats, relopt_leaf_stats

        workload = weblog_premium_blink()
        dyno = Dyno(weblogs, udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        pv = block.leaf_for("pv")
        believed = relopt_leaf_stats(dyno.tables, block)[pv.signature()]
        truth = oracle_leaf_stats(dyno.tables, block)[pv.signature()]
        assert believed.row_count < 0.7 * truth.row_count


class TestCordsOnLogs:
    def test_discovers_browser_engine_dependency(self, weblogs):
        findings = discover_correlations(
            weblogs["pageviews"],
            columns=["browser", "engine"],
            value_of=lambda row, name: row["client"][name],
        )
        assert any(f.x == "browser" and f.y == "engine"
                   and f.is_soft_functional_dependency
                   for f in findings)
