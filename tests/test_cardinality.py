"""Cardinality model: group estimates, composite keys, predicate selectivity."""

import pytest

from repro.errors import StatisticsError
from repro.jaql.blocks import SOURCE_TABLE, BlockLeaf, JoinBlock
from repro.jaql.expr import And, Comparison, JoinCondition, Or, UdfPredicate, ref
from repro.jaql.functions import Udf
from repro.optimizer.cardinality import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    UDF_SELECTIVITY,
    CardinalityModel,
)
from repro.stats.statistics import ColumnStats, TableStats, composite_name


def leaf(alias, table="t"):
    return BlockLeaf(frozenset((alias,)), SOURCE_TABLE, table)


def stats(rows, width=100.0, **columns):
    return TableStats(rows, rows * width, {
        name: ColumnStats(name, dv) for name, dv in columns.items()
    })


def fk_block():
    """fact f (1000 rows, fk over 10 dims) joined to dim d (10 rows)."""
    leaves = (leaf("f", "fact"), leaf("d", "dim"))
    conditions = (JoinCondition(ref("f", "fk"), ref("d", "pk")),)
    block = JoinBlock("b", leaves, conditions)
    leaf_stats = {
        leaves[0].signature(): stats(1000.0, **{"f.fk": 10.0}),
        leaves[1].signature(): stats(10.0, **{"d.pk": 10.0}),
    }
    return block, leaf_stats


class TestGroupEstimates:
    def test_single_leaf(self):
        block, leaf_stats = fk_block()
        model = CardinalityModel(block, leaf_stats)
        estimate = model.estimate(frozenset(("f",)))
        assert estimate.rows == 1000.0

    def test_fk_join_preserves_fact_cardinality(self):
        block, leaf_stats = fk_block()
        model = CardinalityModel(block, leaf_stats)
        estimate = model.estimate(frozenset(("f", "d")))
        assert estimate.rows == pytest.approx(1000.0)

    def test_bytes_use_combined_width(self):
        block, leaf_stats = fk_block()
        model = CardinalityModel(block, leaf_stats)
        estimate = model.estimate(frozenset(("f", "d")))
        assert estimate.bytes == pytest.approx(1000.0 * 200.0)

    def test_estimate_is_order_free_and_cached(self):
        block, leaf_stats = fk_block()
        model = CardinalityModel(block, leaf_stats)
        first = model.estimate(frozenset(("f", "d")))
        second = model.estimate(frozenset(("d", "f")))
        assert first is second  # cached by set

    def test_missing_leaf_stats_raises(self):
        block, leaf_stats = fk_block()
        leaf_stats.pop(block.leaves[0].signature())
        with pytest.raises(StatisticsError):
            CardinalityModel(block, leaf_stats)

    def test_unknown_alias_raises(self):
        block, leaf_stats = fk_block()
        model = CardinalityModel(block, leaf_stats)
        with pytest.raises(StatisticsError):
            model.estimate(frozenset(("zz",)))


class TestCompositeKeys:
    def make(self, with_composite_stats: bool):
        leaves = (leaf("l", "lineitem"), leaf("ps", "partsupp"))
        conditions = (
            JoinCondition(ref("l", "pk"), ref("ps", "pk")),
            JoinCondition(ref("l", "sk"), ref("ps", "sk")),
        )
        block = JoinBlock("b", leaves, conditions)
        l_columns = {
            "l.pk": ColumnStats("l.pk", 100.0),
            "l.sk": ColumnStats("l.sk", 50.0),
        }
        if with_composite_stats:
            comp = composite_name(["l.pk", "l.sk"])
            l_columns[comp] = ColumnStats(comp, 400.0)
        leaf_stats = {
            leaves[0].signature(): TableStats(10000.0, 1e6, l_columns),
            leaves[1].signature(): stats(400.0, **{"ps.pk": 100.0,
                                                   "ps.sk": 50.0}),
        }
        return block, leaf_stats

    def test_composite_stats_preferred(self):
        block, leaf_stats = self.make(with_composite_stats=True)
        model = CardinalityModel(block, leaf_stats)
        estimate = model.estimate(frozenset(("l", "ps")))
        # sel = 1/max(dv_pair=400, dv_ps=400) -> 10000*400/400.
        assert estimate.rows == pytest.approx(10000.0)

    def test_product_capped_by_cardinality_without_composite(self):
        block, leaf_stats = self.make(with_composite_stats=False)
        model = CardinalityModel(block, leaf_stats)
        estimate = model.estimate(frozenset(("l", "ps")))
        # dv product = 5000 on l side, capped at 400 rows on ps side;
        # sel = 1/5000.
        assert estimate.rows == pytest.approx(10000.0 * 400.0 / 5000.0)


class TestPredicateSelectivity:
    def model(self):
        block, leaf_stats = fk_block()
        leaf_stats[block.leaves[0].signature()] = TableStats(
            1000.0, 1e5, {
                "f.fk": ColumnStats("f.fk", 10.0),
                "f.num": ColumnStats("f.num", 100.0, 0, 100),
                "f.cat": ColumnStats("f.cat", 4.0),
            },
        )
        return CardinalityModel(block, leaf_stats)

    def test_equality_uses_distinct(self):
        model = self.model()
        pred = Comparison(ref("f", "cat"), "=", "x")
        assert model.predicate_selectivity(pred) == pytest.approx(0.25)

    def test_equality_default_without_stats(self):
        model = self.model()
        pred = Comparison(ref("f", "unknown"), "=", 1)
        assert model.predicate_selectivity(pred) == DEFAULT_EQ_SELECTIVITY

    def test_inequality(self):
        model = self.model()
        pred = Comparison(ref("f", "cat"), "!=", "x")
        assert model.predicate_selectivity(pred) == pytest.approx(0.75)

    def test_range_interpolates_min_max(self):
        model = self.model()
        assert model.predicate_selectivity(
            Comparison(ref("f", "num"), "<", 25)
        ) == pytest.approx(0.25)
        assert model.predicate_selectivity(
            Comparison(ref("f", "num"), ">=", 25)
        ) == pytest.approx(0.75)

    def test_range_default_for_strings(self):
        model = self.model()
        pred = Comparison(ref("f", "cat"), "<", "m")
        assert model.predicate_selectivity(pred) == \
            DEFAULT_RANGE_SELECTIVITY

    def test_udf_is_opaque(self):
        model = self.model()
        udf = Udf("u", lambda v: False)  # actual selectivity zero!
        pred = UdfPredicate(udf, (ref("f", "cat"),))
        assert model.predicate_selectivity(pred) == UDF_SELECTIVITY

    def test_and_multiplies(self):
        model = self.model()
        pred = And((
            Comparison(ref("f", "cat"), "=", "x"),
            Comparison(ref("f", "num"), "<", 50),
        ))
        assert model.predicate_selectivity(pred) == pytest.approx(0.125)

    def test_or_combines(self):
        model = self.model()
        pred = Or((
            Comparison(ref("f", "cat"), "=", "x"),
            Comparison(ref("f", "cat"), "=", "y"),
        ))
        assert model.predicate_selectivity(pred) == pytest.approx(
            1 - 0.75 * 0.75
        )

    def test_column_to_column_equality(self):
        model = self.model()
        pred = Comparison(ref("f", "fk"), "=", ref("d", "pk"))
        assert model.predicate_selectivity(pred) == pytest.approx(0.1)

    def test_non_local_predicate_reduces_group_estimate(self):
        block, leaf_stats = fk_block()
        pred = Comparison(ref("f", "fk"), "!=", ref("d", "pk"))
        block = JoinBlock(block.name, block.leaves, block.conditions, (pred,))
        model = CardinalityModel(block, leaf_stats)
        with_pred = model.estimate(frozenset(("f", "d"))).rows
        assert with_pred < 1000.0
