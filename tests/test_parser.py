"""SQL-dialect parser: clauses, paths, UDFs, join-tree heuristic."""

import pytest

from repro.errors import ParseError, PlanError
from repro.jaql.expr import (
    Filter,
    GroupBy,
    Join,
    Or,
    OrderBy,
    Project,
    Scan,
    UdfPredicate,
    walk,
)
from repro.jaql.functions import Udf, UdfRegistry
from repro.jaql.parser import parse_query


def registry():
    reg = UdfRegistry()
    reg.register(Udf("check", lambda *args: True))
    return reg


def scans_of(spec):
    return [node for node in walk(spec.root) if isinstance(node, Scan)]


class TestBasics:
    def test_simple_select(self):
        spec = parse_query("SELECT t.a FROM tbl t")
        assert isinstance(spec.root, Project)
        assert isinstance(spec.root.child, Scan)
        assert spec.alias_tables == {"t": "tbl"}

    def test_alias_defaults_to_table_name(self):
        spec = parse_query("SELECT tbl.a FROM tbl")
        assert scans_of(spec)[0].alias == "tbl"

    def test_select_alias(self):
        spec = parse_query("SELECT t.a AS label FROM tbl t")
        assert spec.root.outputs[0][1] == "label"

    def test_where_comparison_literal_types(self):
        spec = parse_query(
            "SELECT t.a FROM tbl t "
            "WHERE t.a = 5 AND t.b = 1.5 AND t.c = 'text'"
        )
        predicates = [node.predicate for node in walk(spec.root)
                      if isinstance(node, Filter)]
        literals = {pred.right for pred in predicates}
        assert literals == {5, 1.5, "text"}

    def test_nested_path(self):
        spec = parse_query(
            "SELECT r.name FROM restaurant r WHERE r.addr[0].zip = 94301"
        )
        predicate = next(node.predicate for node in walk(spec.root)
                         if isinstance(node, Filter))
        assert predicate.left.steps == (0, "zip")
        assert predicate.left.column == "addr"

    def test_string_escape(self):
        spec = parse_query("SELECT t.a FROM tbl t WHERE t.a = 'it\\'s'")
        predicate = next(node.predicate for node in walk(spec.root)
                         if isinstance(node, Filter))
        assert predicate.right == "it's"

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FROM tbl t")
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM tbl t WHERE")
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM tbl t trailing nonsense ???")


class TestJoins:
    def test_two_way_join(self):
        spec = parse_query(
            "SELECT a.x FROM t1 a, t2 b WHERE a.id = b.aid"
        )
        joins = [n for n in walk(spec.root) if isinstance(n, Join)]
        assert len(joins) == 1
        assert joins[0].conditions[0].describe() == "a.id = b.aid"

    def test_from_order_heuristic_avoids_cartesian(self):
        # b has no condition with a, but c does; Jaql picks c first.
        spec = parse_query(
            "SELECT a.x FROM t1 a, t2 b, t3 c "
            "WHERE a.id = c.aid AND c.id = b.cid"
        )
        aliases = [scan.alias for scan in scans_of(spec)]
        assert aliases == ["a", "c", "b"]

    def test_pure_cartesian_rejected(self):
        with pytest.raises(PlanError):
            parse_query("SELECT a.x FROM t1 a, t2 b")

    def test_self_join_aliases(self):
        spec = parse_query(
            "SELECT n1.name FROM nation n1, nation n2, link l "
            "WHERE n1.id = l.left AND n2.id = l.right"
        )
        aliases = {scan.alias for scan in scans_of(spec)}
        assert aliases == {"n1", "n2", "l"}

    def test_multi_condition_join_collected_together(self):
        spec = parse_query(
            "SELECT a.x FROM t1 a, t2 b "
            "WHERE a.k1 = b.k1 AND a.k2 = b.k2"
        )
        join = next(n for n in walk(spec.root) if isinstance(n, Join))
        assert len(join.conditions) == 2

    def test_filter_equality_between_same_alias_is_filter(self):
        spec = parse_query(
            "SELECT a.x FROM t1 a, t2 b WHERE a.id = b.aid AND a.x = a.y"
        )
        filters = [n for n in walk(spec.root) if isinstance(n, Filter)]
        assert len(filters) == 1


class TestUdfSyntax:
    def test_udf_call(self):
        spec = parse_query(
            "SELECT t.a FROM tbl t WHERE check(t.a, t.b)", udfs=registry()
        )
        predicate = next(node.predicate for node in walk(spec.root)
                         if isinstance(node, Filter))
        assert isinstance(predicate, UdfPredicate)
        assert [arg.describe() for arg in predicate.args] == ["t.a", "t.b"]

    def test_udf_equals_label_sugar(self):
        spec = parse_query(
            "SELECT t.a FROM tbl t WHERE check(t.a) = positive",
            udfs=registry(),
        )
        predicate = next(node.predicate for node in walk(spec.root)
                         if isinstance(node, Filter))
        assert isinstance(predicate, UdfPredicate)

    def test_unknown_udf_rejected(self):
        with pytest.raises(PlanError):
            parse_query("SELECT t.a FROM tbl t WHERE nosuch(t.a)")


class TestOrGroups:
    def test_parenthesized_disjunction(self):
        spec = parse_query(
            "SELECT a.x FROM t1 a, t2 b WHERE a.id = b.aid AND "
            "((a.x = 1 AND b.y = 2) OR (a.x = 2 AND b.y = 1))"
        )
        predicate = next(node.predicate for node in walk(spec.root)
                         if isinstance(node, Filter))
        assert isinstance(predicate, Or)
        assert len(predicate.parts) == 2

    def test_single_branch_group_unwraps(self):
        spec = parse_query(
            "SELECT t.a FROM tbl t WHERE (t.a = 1 AND t.b = 2)"
        )
        predicates = [n.predicate for n in walk(spec.root)
                      if isinstance(n, Filter)]
        assert len(predicates) == 1
        assert not isinstance(predicates[0], Or)


class TestGroupOrder:
    def test_group_by_with_aggregates(self):
        spec = parse_query(
            "SELECT t.a, sum(t.b) AS total, count(*) AS n "
            "FROM tbl t GROUP BY t.a"
        )
        group = next(n for n in walk(spec.root) if isinstance(n, GroupBy))
        assert [k.describe() for k in group.keys] == ["t.a"]
        assert [a.output_name for a in group.aggregates] == ["total", "n"]

    def test_count_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(*) FROM tbl t")

    def test_order_by_desc_limit(self):
        spec = parse_query(
            "SELECT t.a FROM tbl t ORDER BY t.a DESC LIMIT 7"
        )
        order = next(n for n in walk(spec.root) if isinstance(n, OrderBy))
        assert order.descending
        assert order.limit == 7

    def test_order_by_bare_output_name(self):
        spec = parse_query(
            "SELECT t.a, sum(t.b) AS total FROM tbl t "
            "GROUP BY t.a ORDER BY total DESC"
        )
        order = next(n for n in walk(spec.root) if isinstance(n, OrderBy))
        assert order.keys[0].qualified == "total"

    def test_aggregate_without_group_by(self):
        spec = parse_query("SELECT count(*) AS n FROM tbl t")
        group = next(n for n in walk(spec.root) if isinstance(n, GroupBy))
        assert group.keys == ()


class TestPaperQueries:
    def test_q1_from_the_paper_parses(self):
        from repro.jaql.functions import default_registry

        spec = parse_query(
            """
            SELECT rs.name
            FROM restaurant rs, review rv, tweet t
            WHERE rs.id = rv.rsid AND rv.tid = t.id
            AND rs.addr[0].zip = 94301 AND rs.addr[0].state = 'CA'
            AND sentanalysis(rv.text) = positive
            AND checkid(t.verified, rv.stars)
            """,
            name="Q1", udfs=default_registry(),
        )
        assert spec.name == "Q1"
        assert len(scans_of(spec)) == 3

    def test_all_tpch_workloads_parse(self):
        from repro.workloads.queries import TPCH_WORKLOADS

        for factory in TPCH_WORKLOADS.values():
            workload = factory()
            assert workload.stages
