"""Running statistics, merging, extrapolation, composite columns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.statistics import (
    ColumnStats,
    RunningStats,
    TableStats,
    composite_name,
    composite_parts,
    requalify_stats,
    stats_from_table_scan,
)


def rows_for(values, column="x"):
    return [{column: value} for value in values]


def collect(values, columns=("x",), kmv_size=1024):
    running = RunningStats(columns, kmv_size)
    for row in rows_for(values):
        running.update(row, 10)
    return running


class TestRunningStats:
    def test_row_and_byte_counts(self):
        running = collect(range(5))
        assert running.row_count == 5
        assert running.size_bytes == 50

    def test_min_max(self):
        stats = collect([5, 1, 9, 3]).freeze()
        column = stats.column("x")
        assert column.min_value == 1
        assert column.max_value == 9

    def test_strings_min_max(self):
        stats = collect(["b", "a", "c"]).freeze()
        assert stats.column("x").min_value == "a"
        assert stats.column("x").max_value == "c"

    def test_null_fraction(self):
        stats = collect([1, None, None, 2]).freeze()
        assert stats.column("x").null_fraction == pytest.approx(0.5)

    def test_distinct_exact_small(self):
        stats = collect([1, 1, 2, 2, 3]).freeze()
        assert stats.column("x").distinct_values == pytest.approx(3)

    def test_f1_f2_profile(self):
        stats = collect([1, 2, 2, 3, 3, 3]).freeze()
        column = stats.column("x")
        assert column.f1 == 1  # value 1 appears once
        assert column.f2 == 1  # value 2 appears twice

    def test_merge_mismatched_columns_rejected(self):
        with pytest.raises(StatisticsError):
            RunningStats(["a"]).merge(RunningStats(["b"]))

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200),
           st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_partitioned_merge_equals_whole(self, values, parts):
        whole = collect(values).freeze()
        merged = None
        for offset in range(parts):
            part = collect(values[offset::parts])
            merged = part if merged is None else merged.merge(part)
        combined = merged.freeze()
        assert combined.row_count == whole.row_count
        assert combined.column("x").distinct_values == pytest.approx(
            whole.column("x").distinct_values
        )
        assert combined.column("x").min_value == whole.column("x").min_value
        assert combined.column("x").max_value == whole.column("x").max_value


class TestCompositeColumns:
    def test_composite_name_round_trip(self):
        name = composite_name(["b.y", "a.x"])
        assert composite_parts(name) == ["a.x", "b.y"]

    def test_composite_distinct_counts_pairs(self):
        name = composite_name(["a", "b"])
        running = RunningStats([name])
        for a in range(3):
            for b in range(4):
                running.update({"a": a, "b": b}, 1)
        stats = running.freeze()
        assert stats.column(name).distinct_values == pytest.approx(12)

    def test_composite_all_none_is_null(self):
        name = composite_name(["a", "b"])
        running = RunningStats([name])
        running.update({"a": None, "b": None}, 1)
        running.update({"a": 1, "b": None}, 1)
        stats = running.freeze()
        assert stats.column(name).null_fraction == pytest.approx(0.5)


class TestExtrapolation:
    def test_downscale_is_linear(self):
        column = ColumnStats("x", 100.0, f1=10.0, f2=5.0,
                             split_overlap=0.5, sample_count=1000.0)
        assert column.scaled(0.1).distinct_values == pytest.approx(10.0)

    def test_no_profile_falls_back_to_linear(self):
        column = ColumnStats("x", 100.0)
        assert column.scaled(5.0).distinct_values == pytest.approx(500.0)

    def test_saturated_column_does_not_grow(self):
        # All 50 values recur in every split: overlap tiny, no singletons.
        column = ColumnStats("x", 50.0, f1=0.0, f2=0.0,
                             split_overlap=0.05, sample_count=5000.0)
        assert column.scaled(30.0).distinct_values == pytest.approx(50.0)

    def test_clustered_column_scales_linearly(self):
        # Disjoint across splits, duplicated within (4 rows per value).
        column = ColumnStats("x", 250.0, f1=0.0, f2=0.0,
                             split_overlap=1.0, sample_count=1000.0)
        assert column.scaled(10.0).distinct_values == pytest.approx(2500.0)

    def test_sparse_sample_uses_chao(self):
        # Random draws from a moderately sized domain: Chao d + f1^2/2f2.
        column = ColumnStats("x", 700.0, f1=500.0, f2=125.0,
                             split_overlap=0.8, sample_count=1000.0)
        expected = 700.0 + 500.0 ** 2 / (2 * 125.0)
        assert column.scaled(20.0).distinct_values == pytest.approx(expected)

    def test_estimate_capped_by_linear(self):
        column = ColumnStats("x", 10.0, f1=10.0, f2=0.0,
                             split_overlap=0.5, sample_count=10.0)
        scaled = column.scaled(2.0)
        assert scaled.distinct_values <= 20.0 + 1e-9

    def test_estimate_never_below_observed(self):
        column = ColumnStats("x", 100.0, f1=1.0, f2=0.0,
                             split_overlap=0.5, sample_count=1000.0)
        assert column.scaled(50.0).distinct_values >= 100.0

    def test_zero_distinct_stays_zero(self):
        column = ColumnStats("x", 0.0)
        assert column.scaled(10.0).distinct_values == 0.0

    def test_min_max_preserved(self):
        column = ColumnStats("x", 10.0, min_value=1, max_value=9)
        scaled = column.scaled(10.0)
        assert scaled.min_value == 1
        assert scaled.max_value == 9

    def test_end_to_end_fact_table_dv(self):
        """Block-sampled fact table: saturated FK stays near its true DV."""
        import random

        rng = random.Random(1)
        running = None
        # 20 splits of 100 rows; fk drawn from 50 values (saturates).
        for _ in range(20):
            part = RunningStats(["fk"])
            for _ in range(100):
                part.update({"fk": rng.randrange(50)}, 10)
            running = part if running is None else running.merge(part)
        stats = running.freeze(exact=False)
        extrapolated = stats.scaled_to(stats.row_count * 25,
                                       stats.size_bytes * 25)
        dv = extrapolated.column("fk").distinct_values
        assert dv == pytest.approx(50, rel=0.2)


class TestTableStats:
    def test_avg_row_size(self):
        stats = TableStats(10.0, 500.0)
        assert stats.avg_row_size == 50.0
        assert TableStats(0.0, 0.0).avg_row_size == 0.0

    def test_distinct_values_defaults_to_cardinality(self):
        stats = TableStats(42.0, 100.0)
        assert stats.distinct_values("missing") == 42.0

    def test_distinct_values_capped_by_rows(self):
        stats = TableStats(5.0, 100.0,
                           {"x": ColumnStats("x", 50.0)})
        assert stats.distinct_values("x") == 5.0

    def test_scaled_to(self):
        stats = TableStats(10.0, 100.0, {"x": ColumnStats("x", 10.0)})
        scaled = stats.scaled_to(100.0, 1000.0)
        assert scaled.row_count == 100.0
        assert scaled.column("x").distinct_values == pytest.approx(100.0)
        assert not scaled.exact

    def test_round_trip_dict(self):
        stats = TableStats(10.0, 100.0,
                           {"x": ColumnStats("x", 3.0, 1, 9, 0.1)},
                           exact=True)
        restored = TableStats.from_dict(stats.to_dict())
        assert restored.row_count == 10.0
        assert restored.exact
        assert restored.column("x").min_value == 1

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(StatisticsError):
            TableStats.from_dict({"size_bytes": 1.0})


class TestRequalify:
    def test_renames_alias_prefix(self):
        stats = TableStats(5.0, 50.0, {
            "n1.n_name": ColumnStats("n1.n_name", 5.0),
            composite_name(["n1.a", "n1.b"]): ColumnStats(
                composite_name(["n1.a", "n1.b"]), 4.0
            ),
        })
        requalified = requalify_stats(stats, "n2")
        assert requalified.column("n2.n_name").distinct_values == 5.0
        assert requalified.column(composite_name(["n2.a", "n2.b"])) \
            is not None

    def test_identity_for_same_alias(self):
        stats = TableStats(5.0, 50.0,
                           {"n1.x": ColumnStats("n1.x", 5.0)})
        assert requalify_stats(stats, "n1").column("n1.x") is not None


class TestTableScan:
    def test_stats_from_table_scan(self):
        rows = [{"x": i % 5, "y": i} for i in range(100)]
        stats = stats_from_table_scan(rows, ["x", "y"], lambda row: 12)
        assert stats.exact
        assert stats.row_count == 100
        assert stats.size_bytes == 1200
        assert stats.column("x").distinct_values == pytest.approx(5)
        assert stats.column("y").distinct_values == pytest.approx(100)


class TestHistogram:
    def test_equi_depth_construction(self):
        from repro.stats.statistics import Histogram

        counts = {value: 1 for value in range(100)}
        histogram = Histogram.from_counts(counts, buckets=4)
        assert histogram is not None
        assert len(histogram.counts) == 4
        assert histogram.total == 100
        assert histogram.boundaries[0] == 0.0
        assert histogram.boundaries[-1] == 99.0

    def test_fraction_below_uniform(self):
        from repro.stats.statistics import Histogram

        histogram = Histogram.from_counts({v: 1 for v in range(100)},
                                          buckets=8)
        assert histogram.fraction_below(50) == pytest.approx(0.5, abs=0.06)
        assert histogram.fraction_below(-1) == 0.0
        assert histogram.fraction_below(1000) == 1.0

    def test_fraction_below_skewed_beats_interpolation(self):
        """99% of the mass near zero, one outlier at 1e6: min/max
        interpolation is off by orders of magnitude; the equi-depth
        histogram is not."""
        from repro.stats.statistics import Histogram

        counts = {float(v): 1 for v in range(99)}
        counts[1_000_000.0] = 1
        histogram = Histogram.from_counts(counts, buckets=8)
        truth = 0.5  # half the values are below 50
        histogram_estimate = histogram.fraction_below(50)
        interpolation = 50 / 1_000_000
        assert abs(histogram_estimate - truth) < 0.15
        assert abs(interpolation - truth) > 0.4

    def test_non_numeric_returns_none(self):
        from repro.stats.statistics import Histogram

        assert Histogram.from_counts({"a": 1, "b": 2}) is None
        assert Histogram.from_counts({1: 1, "b": 2}) is None
        assert Histogram.from_counts({1: 5}) is None  # single value

    def test_round_trip_lists(self):
        from repro.stats.statistics import Histogram

        histogram = Histogram.from_counts({v: 1 for v in range(20)})
        restored = Histogram.from_lists(histogram.to_lists())
        assert restored == histogram
        assert Histogram.from_lists(None) is None

    def test_collected_during_running_stats(self):
        running = collect(list(range(50)) * 2)
        stats = running.freeze()
        histogram = stats.column("x").histogram
        assert histogram is not None
        assert histogram.total == 100

    def test_persisted_through_table_stats(self):
        running = collect(list(range(50)))
        stats = running.freeze()
        restored = TableStats.from_dict(stats.to_dict())
        assert restored.column("x").histogram is not None

    def test_range_selectivity_uses_histogram(self):
        """Skewed column: histogram-based estimate close to truth."""
        from repro.jaql.blocks import SOURCE_TABLE, BlockLeaf, JoinBlock
        from repro.jaql.expr import Comparison, ref
        from repro.optimizer.cardinality import CardinalityModel

        values = [1.0] * 90 + [1000.0] * 10
        running = collect(values)
        table_stats = running.freeze()
        leaf = BlockLeaf(frozenset(("t",)), SOURCE_TABLE, "tbl")
        # Requalification renames the 'x' column to 't.x'.
        from repro.stats.statistics import requalify_stats

        qualified = TableStats(
            table_stats.row_count, table_stats.size_bytes,
            {"t.x": ColumnStats(
                "t.x", table_stats.column("x").distinct_values,
                table_stats.column("x").min_value,
                table_stats.column("x").max_value,
                histogram=table_stats.column("x").histogram,
            )},
        )
        block = JoinBlock("b", (leaf,), ())
        model = CardinalityModel(block, {leaf.signature(): qualified})
        selectivity = model.predicate_selectivity(
            Comparison(ref("t", "x"), "<", 500.0)
        )
        assert selectivity == pytest.approx(0.9, abs=0.1)
        # Interpolation alone would have said ~0.5.


class TestHistogramProperties:
    """Regression: ``from_counts`` could close its last bucket on the final
    value and then append the final boundary again -- producing a duplicated
    boundary with a zero-count, zero-width trailing bucket that distorted
    ``fraction_below`` at the domain's upper edge."""

    @given(
        counts=st.dictionaries(
            st.integers(min_value=-1000, max_value=1000),
            st.integers(min_value=1, max_value=50),
            min_size=2, max_size=60,
        ),
        buckets=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_shape_invariants(self, counts, buckets):
        from repro.stats.statistics import Histogram

        histogram = Histogram.from_counts(counts, buckets=buckets)
        assert histogram is not None
        # One more boundary than buckets; boundaries non-decreasing.
        assert len(histogram.boundaries) == len(histogram.counts) + 1
        assert list(histogram.boundaries) == sorted(histogram.boundaries)
        # Every value is accounted for exactly once.
        assert sum(histogram.counts) == sum(counts.values())
        assert histogram.total == sum(counts.values())
        # The trailing bucket owns the maximum value: it can never be a
        # zero-count artifact.
        assert histogram.counts[-1] > 0
        # End boundaries bracket the data exactly.
        assert histogram.boundaries[0] == float(min(counts))
        assert histogram.boundaries[-1] == float(max(counts))

    def test_regression_final_value_closing_a_bucket(self):
        """Minimal failing case of the old code: the heavy final value
        closed a bucket AND was appended as the final boundary, yielding
        boundaries [0, 0, 10, 10] with counts [1, 5, 0]."""
        from repro.stats.statistics import Histogram

        histogram = Histogram.from_counts({0: 1, 10: 5}, buckets=4)
        assert histogram is not None
        assert histogram.counts[-1] > 0
        assert histogram.boundaries[-2] != histogram.boundaries[-1]
        assert sum(histogram.counts) == 6
