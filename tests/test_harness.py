"""Benchmark harness: variant runners and table formatting."""

import pytest

from repro.bench.harness import (
    ALL_VARIANTS,
    VARIANT_DYNOPT,
    VARIANT_RELOPT,
    VARIANT_SIMPLE,
    VARIANT_STATIC_HIVE,
    VARIANT_STATIC_JAQL,
    ExperimentTable,
    dataset_for,
    normalized,
    run_workload,
)
from repro.errors import PlanError
from repro.workloads.queries import q2, q10
from tests.conftest import assert_same_rows


class TestTableFormatting:
    def test_format_aligns_columns(self):
        table = ExperimentTable(
            "T1", "demo", ["Name", "Value"],
            [["alpha", 1.2345], ["b", 100]],
            notes=["a note"],
        )
        text = table.format()
        lines = text.splitlines()
        assert lines[0].startswith("== T1: demo ==")
        assert "1.23" in text
        assert "note: a note" in text
        # Header and separator share a width.
        assert len(lines[1]) == len(lines[2])

    def test_normalized(self):
        assert normalized(50.0, 100.0) == 0.5
        assert normalized(1.0, 0.0) == float("inf")


class TestDatasetCache:
    def test_cached_instance_reused(self):
        assert dataset_for(0.01) is dataset_for(0.01)
        assert dataset_for(0.01) is not dataset_for(0.01, seed=99)


class TestRunWorkload:
    @pytest.fixture(scope="class")
    def tables(self):
        return dataset_for(0.05).tables

    def test_all_variants_return_same_rows(self, tables):
        rows_by_variant = {}
        for variant in ALL_VARIANTS + (VARIANT_STATIC_HIVE,):
            run = run_workload(tables, q10(), variant, static_top_k=1)
            assert run.seconds > 0
            assert run.variant == variant
            rows_by_variant[variant] = run.rows
        baseline = rows_by_variant[VARIANT_STATIC_JAQL]

        def revenue_set(rows):
            return sorted(round(row["revenue"], 2) for row in rows)

        for variant, rows in rows_by_variant.items():
            assert revenue_set(rows) == revenue_set(baseline), variant

    def test_multi_stage_workload_all_variants(self, tables):
        results = {}
        for variant in (VARIANT_STATIC_JAQL, VARIANT_RELOPT,
                        VARIANT_SIMPLE, VARIANT_DYNOPT):
            run = run_workload(tables, q2(), variant, static_top_k=1)
            results[variant] = run.rows
        for variant, rows in results.items():
            assert_same_rows(rows, results[VARIANT_STATIC_JAQL])

    def test_dyno_variant_records_overheads(self, tables):
        run = run_workload(tables, q10(), VARIANT_DYNOPT)
        assert run.pilot_seconds > 0
        assert run.optimizer_seconds > 0
        assert run.seconds == pytest.approx(
            run.pilot_seconds + run.optimizer_seconds
            + run.execution_seconds
        )

    def test_relopt_reports_execution_only(self, tables):
        run = run_workload(tables, q10(), VARIANT_RELOPT)
        assert run.seconds == pytest.approx(run.execution_seconds)
        assert run.pilot_seconds == 0.0

    def test_static_details_include_order(self, tables):
        run = run_workload(tables, q10(), VARIANT_STATIC_JAQL,
                           static_top_k=2)
        assert run.details["orders"]
        assert run.details["candidates_ranked"] > 0

    def test_unknown_variant_rejected(self, tables):
        with pytest.raises(PlanError):
            run_workload(tables, q10(), "QUANTUM")
