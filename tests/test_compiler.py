"""Plan compiler: job-graph shapes and execution correctness."""

import pytest

from repro.core.baselines import oracle_leaf_stats
from repro.jaql.compiler import PlanCompiler
from repro.jaql.expr import Aggregate, GroupBy, ref
from repro.optimizer.plans import summarize_plan
from repro.optimizer.search import JoinOptimizer
from tests.conftest import assert_same_rows


def prepare(dyno, workload):
    extracted = dyno.prepare(workload.final_spec)
    stats = oracle_leaf_stats(dyno.tables, extracted.block)
    optimizer = JoinOptimizer(extracted.block, stats,
                              dyno.config.optimizer)
    plan = optimizer.optimize().plan
    compiler = PlanCompiler(dyno.dfs, dyno.config, "test")
    return extracted, plan, compiler.compile_block(plan)


def run_graph(dyno, graph):
    completed = set()
    while len(completed) < graph.job_count:
        ready = graph.leaf_jobs(completed)
        assert ready, "job graph made no progress"
        for compiled in ready:
            dyno.runtime.execute(compiled.job)
            completed.add(compiled.name)
    return dyno.dfs.read_all(graph.final_output)


class TestGraphShapes:
    def test_chain_collapses_into_few_jobs(self, dyno_factory):
        from repro.workloads.queries import q9_prime

        workload = q9_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        _, plan, graph = prepare(dyno, workload)
        summary = summarize_plan(plan)
        # One job per unchained join, plus pre-filter jobs for big builds.
        unchained = summary.joins - summary.chained_joins
        assert graph.job_count >= unchained
        assert graph.job_count <= summary.joins + len(plan.leaves())

    def test_final_output_job_marked(self, dyno_factory):
        from repro.workloads.queries import q10

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph = prepare(dyno, workload)
        finals = [c for c in graph.jobs if c.final]
        assert len(finals) == 1
        assert finals[0].job.output_name == graph.final_output

    def test_dependencies_reference_graph_jobs(self, dyno_factory):
        from repro.workloads.queries import q8_prime

        workload = q8_prime()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph = prepare(dyno, workload)
        names = {compiled.name for compiled in graph.jobs}
        for compiled in graph.jobs:
            assert set(compiled.depends_on) <= names

    def test_uncertainty_metric_counts_joins(self, dyno_factory):
        from repro.workloads.queries import q10

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        _, plan, graph = prepare(dyno, workload)
        assert (sum(compiled.join_count for compiled in graph.jobs)
                == summarize_plan(plan).joins)

    def test_describe_lists_jobs(self, dyno_factory):
        from repro.workloads.queries import q10

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        _, _, graph = prepare(dyno, workload)
        text = graph.describe()
        for compiled in graph.jobs:
            assert compiled.name in text


class TestExecutionCorrectness:
    @pytest.mark.parametrize("factory_name",
                             ["q7", "q8_prime", "q9_prime", "q10"])
    def test_optimizer_plan_matches_interpreter(self, dyno_factory,
                                                tpch_tables, factory_name):
        import repro.workloads.queries as queries

        workload = getattr(queries, factory_name)()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted, _, graph = prepare(dyno, workload)
        rows = run_graph(dyno, graph)

        # Reference: interpreter over the join block only (no stages).
        from repro.jaql.rewrites import push_down_filters

        spec = workload.final_spec
        pushed = push_down_filters(spec.root)
        # Strip stages (Project/OrderBy/GroupBy) to reach the join tree.
        from repro.jaql.expr import GroupBy as G, OrderBy as O, Project as P

        node = pushed
        while isinstance(node, (G, O, P)):
            node = node.children()[0]
        from repro.jaql.interpreter import Interpreter

        expected = Interpreter(tpch_tables).evaluate(node)
        assert_same_rows(rows, expected)

    def test_every_left_deep_order_is_correct(self, dyno_factory,
                                              tpch_tables):
        """Any valid order the compiler executes returns the same rows."""
        from repro.core.baselines import (
            build_left_deep_plan,
            enumerate_connected_orders,
            jaql_file_size_stats,
        )
        from repro.workloads.queries import q10

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        block = extracted.block
        stats = jaql_file_size_stats(dyno.tables, block)
        file_sizes = {
            leaf.source_name: dyno.dfs.file_size(leaf.source_name)
            for leaf in block.base_leaves()
        }
        orders = list(enumerate_connected_orders(block))[:4]
        results = []
        for index, order in enumerate(orders):
            plan = build_left_deep_plan(block, order, stats, file_sizes,
                                        dyno.config)
            compiler = PlanCompiler(dyno.dfs, dyno.config, f"ord{index}")
            graph = compiler.compile_block(plan)
            results.append(run_graph(dyno, graph))
        for rows in results[1:]:
            assert_same_rows(rows, results[0])


class TestGroupByJob:
    def test_group_by_job_matches_interpreter(self, dyno_factory,
                                              tpch_tables):
        dyno = dyno_factory()
        # Materialize a qualified scan of orders, then group by priority.
        rows = [
            {"o.o_orderpriority": row["o_orderpriority"],
             "o.o_totalprice": row["o_totalprice"]}
            for row in tpch_tables["orders"].rows
        ]
        from repro.core.dyno import infer_schema

        dyno.dfs.write_rows("qualified_orders", infer_schema(rows), rows)
        stage = GroupBy(
            None,  # child unused by compile_group_by
            (ref("o", "o_orderpriority"),),
            (Aggregate("count", None, "n"),
             Aggregate("sum", ref("o", "o_totalprice"), "total")),
        )
        compiler = PlanCompiler(dyno.dfs, dyno.config, "gb")
        compiled = compiler.compile_group_by("qualified_orders", stage)
        dyno.runtime.execute(compiled.job)
        output = dyno.dfs.read_all(compiled.job.output_name)

        from collections import defaultdict

        counts = defaultdict(int)
        totals = defaultdict(float)
        for row in rows:
            counts[row["o.o_orderpriority"]] += 1
            totals[row["o.o_orderpriority"]] += row["o.o_totalprice"]
        assert {r["o.o_orderpriority"]: r["n"] for r in output} == counts
        for row in output:
            assert row["total"] == pytest.approx(
                totals[row["o.o_orderpriority"]]
            )
