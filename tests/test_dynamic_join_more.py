"""Dynamic join operator: plan surgery internals."""

import pytest

from repro.core.dynamic_join import _lowest_ready_join, _replace_subtree
from repro.errors import PlanError
from repro.jaql.blocks import SOURCE_INTERMEDIATE, SOURCE_TABLE, BlockLeaf
from repro.jaql.expr import JoinCondition, ref
from repro.optimizer.plans import BROADCAST, PhysJoin, PhysLeaf


def leaf(alias):
    block_leaf = BlockLeaf(frozenset((alias,)), SOURCE_TABLE, alias)
    return PhysLeaf(aliases=frozenset((alias,)), est_rows=1.0,
                    est_bytes=10.0, cost=0.0, leaf=block_leaf)


def join(left, right):
    condition = JoinCondition(
        ref(sorted(left.aliases)[0], "k"), ref(sorted(right.aliases)[0], "k")
    )
    return PhysJoin(aliases=left.aliases | right.aliases, est_rows=1.0,
                    est_bytes=10.0, cost=0.0, method=BROADCAST,
                    left=left, right=right, conditions=(condition,))


class TestLowestReadyJoin:
    def test_left_deep_returns_bottom(self):
        plan = join(join(leaf("a"), leaf("b")), leaf("c"))
        assert _lowest_ready_join(plan).aliases == {"a", "b"}

    def test_right_nested(self):
        plan = join(leaf("a"), join(leaf("b"), leaf("c")))
        assert _lowest_ready_join(plan).aliases == {"b", "c"}

    def test_single_join(self):
        plan = join(leaf("a"), leaf("b"))
        assert _lowest_ready_join(plan) is plan

    def test_leaf_only_rejected(self):
        with pytest.raises(PlanError):
            _lowest_ready_join(leaf("a"))


class TestReplaceSubtree:
    def test_replaces_matching_aliases(self):
        plan = join(join(leaf("a"), leaf("b")), leaf("c"))
        replacement = PhysLeaf(
            aliases=frozenset(("a", "b")), est_rows=2.0, est_bytes=20.0,
            cost=0.0,
            leaf=BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE,
                           "out1"),
        )
        updated = _replace_subtree(plan, frozenset(("a", "b")), replacement)
        assert isinstance(updated.left, PhysLeaf)
        assert updated.left.leaf.source_name == "out1"
        assert updated.right.aliases == {"c"}

    def test_untouched_when_no_match(self):
        plan = join(leaf("a"), leaf("b"))
        replacement = PhysLeaf(
            aliases=frozenset(("z",)), est_rows=1.0, est_bytes=1.0,
            cost=0.0,
            leaf=BlockLeaf(frozenset(("z",)), SOURCE_INTERMEDIATE, "z"),
        )
        updated = _replace_subtree(plan, frozenset(("z",)), replacement)
        assert updated.aliases == {"a", "b"}

    def test_whole_plan_replaceable(self):
        plan = join(leaf("a"), leaf("b"))
        replacement = PhysLeaf(
            aliases=frozenset(("a", "b")), est_rows=1.0, est_bytes=1.0,
            cost=0.0,
            leaf=BlockLeaf(frozenset(("a", "b")), SOURCE_INTERMEDIATE,
                           "all"),
        )
        updated = _replace_subtree(plan, frozenset(("a", "b")), replacement)
        assert updated is replacement
