"""Reference interpreter vs brute-force semantics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.errors import PlanError
from repro.jaql.expr import (
    Aggregate,
    Comparison,
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    ref,
)
from repro.jaql.interpreter import Interpreter, order_key


def make_tables(seed=0, left_rows=40, right_rows=60):
    rng = random.Random(seed)
    left = Table("l", Schema.of(k=INT, v=STRING), [
        {"k": rng.randrange(10), "v": rng.choice("abc")}
        for _ in range(left_rows)
    ])
    right = Table("r", Schema.of(k=INT, w=INT), [
        {"k": rng.randrange(10), "w": rng.randrange(100)}
        for _ in range(right_rows)
    ])
    return {"l": left, "r": right}


def join_tree():
    return Join(Scan("l", "a"), Scan("r", "b"),
                (JoinCondition(ref("a", "k"), ref("b", "k")),))


class TestScanFilter:
    def test_scan_qualifies(self):
        tables = make_tables()
        rows = Interpreter(tables).evaluate(Scan("l", "x"))
        assert all(set(row) == {"x.k", "x.v"} for row in rows)

    def test_unknown_table(self):
        with pytest.raises(PlanError):
            Interpreter({}).evaluate(Scan("ghost", "g"))

    def test_filter(self):
        tables = make_tables()
        rows = Interpreter(tables).evaluate(
            Filter(Scan("l", "a"), Comparison(ref("a", "k"), "=", 3))
        )
        assert all(row["a.k"] == 3 for row in rows)


class TestJoin:
    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_matches_nested_loop(self, seed):
        tables = make_tables(seed)
        fast = Interpreter(tables).evaluate(join_tree())
        slow = []
        for lrow in tables["l"].rows:
            for rrow in tables["r"].rows:
                if lrow["k"] == rrow["k"]:
                    slow.append({"a.k": lrow["k"], "a.v": lrow["v"],
                                 "b.k": rrow["k"], "b.w": rrow["w"]})

        def canon(rows):
            return sorted(tuple(sorted(r.items())) for r in rows)

        assert canon(fast) == canon(slow)

    def test_none_keys_never_match(self):
        tables = {
            "l": Table("l", Schema.of(k=INT), [{"k": None}, {"k": 1}]),
            "r": Table("r", Schema.of(k=INT), [{"k": None}, {"k": 1}]),
        }
        rows = Interpreter(tables).evaluate(
            Join(Scan("l", "a"), Scan("r", "b"),
                 (JoinCondition(ref("a", "k"), ref("b", "k")),))
        )
        assert len(rows) == 1

    def test_multi_condition_join(self):
        tables = make_tables()
        tree = Join(Scan("l", "a"), Scan("l", "b"),
                    (JoinCondition(ref("a", "k"), ref("b", "k")),
                     JoinCondition(ref("a", "v"), ref("b", "v"))))
        rows = Interpreter(tables).evaluate(tree)
        assert all(row["a.k"] == row["b.k"] and row["a.v"] == row["b.v"]
                   for row in rows)


class TestGroupOrder:
    def test_group_by_counts(self):
        tables = make_tables()
        tree = GroupBy(Scan("l", "a"), (ref("a", "v"),),
                       (Aggregate("count", None, "n"),))
        rows = Interpreter(tables).evaluate(tree)
        assert sum(row["n"] for row in rows) == len(tables["l"])

    def test_group_all(self):
        tables = make_tables()
        tree = GroupBy(Scan("l", "a"), (),
                       (Aggregate("sum", ref("a", "k"), "total"),))
        rows = Interpreter(tables).evaluate(tree)
        assert len(rows) == 1
        assert rows[0]["total"] == sum(r["k"] for r in tables["l"].rows)

    def test_order_by_limit(self):
        tables = make_tables()
        tree = OrderBy(Scan("r", "b"), (ref("b", "w"),), descending=True,
                       limit=5)
        rows = Interpreter(tables).evaluate(tree)
        assert len(rows) == 5
        values = [row["b.w"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_project(self):
        tables = make_tables()
        tree = Project(Scan("l", "a"), ((ref("a", "v"), "val"),))
        rows = Interpreter(tables).evaluate(tree)
        assert all(set(row) == {"val"} for row in rows)

    def test_run_uses_spec_root(self):
        tables = make_tables()
        spec = QuerySpec("q", Scan("l", "a"))
        assert len(Interpreter(tables).run(spec)) == len(tables["l"])


class TestOrderKey:
    def test_type_ranking(self):
        values = ["text", 5, None, True, [1, 2]]
        ranked = sorted(values, key=order_key)
        assert ranked[0] is None
        assert ranked[1] is True
        assert ranked[2] == 5

    def test_mixed_sort_is_total(self):
        values = [3, "a", None, 2.5, (1,), {"k": 1}, False]
        sorted(values, key=order_key)  # must not raise
