"""Error hierarchy: catchability and diagnostic payloads."""

import pytest

from repro.errors import (
    BroadcastBuildOverflowError,
    CoordinationError,
    DynoError,
    JobError,
    OptimizerError,
    ParseError,
    PlanError,
    SchemaError,
    StatisticsError,
    StorageError,
    UnsupportedQueryError,
)

ALL_ERRORS = [
    SchemaError, StorageError, JobError, ParseError, PlanError,
    OptimizerError, UnsupportedQueryError, StatisticsError,
    CoordinationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_dyno_error(self, error_type):
        assert issubclass(error_type, DynoError)

    def test_overflow_is_a_job_error(self):
        assert issubclass(BroadcastBuildOverflowError, JobError)

    def test_unsupported_query_is_optimizer_error(self):
        assert issubclass(UnsupportedQueryError, OptimizerError)


class TestPayloads:
    def test_overflow_carries_diagnostics(self):
        error = BroadcastBuildOverflowError(
            2048, 1024, job_name="j1", build_description="dim=2048B"
        )
        assert error.build_bytes == 2048
        assert error.memory_budget == 1024
        assert "j1" in str(error)
        assert "dim=2048B" in str(error)
        assert "spill" in str(error)

    def test_overflow_without_context(self):
        error = BroadcastBuildOverflowError(10, 5)
        assert "10 bytes" in str(error)

    def test_parse_error_position(self):
        error = ParseError("unexpected token", position=42)
        assert error.position == 42
        assert "42" in str(error)

    def test_parse_error_without_position(self):
        error = ParseError("something broke")
        assert error.position is None
        assert "something broke" in str(error)
