"""Shared fixtures: small deterministic datasets and ready-made systems."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.data.tpch import generate_restaurants, generate_tpch
from repro.jaql.expr import QuerySpec
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import push_down_filters

#: Small scale factor: big enough for meaningful joins, fast enough for CI.
TEST_SCALE_FACTOR = 0.05


@pytest.fixture(scope="session")
def tpch():
    """The shared TPC-H dataset (session-scoped; treat as read-only)."""
    return generate_tpch(TEST_SCALE_FACTOR, seed=2014)


@pytest.fixture(scope="session")
def tpch_tables(tpch):
    return tpch.tables


@pytest.fixture(scope="session")
def restaurant_tables():
    return generate_restaurants(restaurant_count=300, tweet_count=3000,
                                seed=7)


@pytest.fixture()
def dyno_factory(tpch_tables):
    """Builds a fresh Dyno over the shared TPC-H tables."""

    def build(udfs=None, config=DEFAULT_CONFIG, tables=None):
        return Dyno(tables if tables is not None else tpch_tables,
                    config=config, udfs=udfs)

    return build


def reference_rows(tables, spec: QuerySpec):
    """Oracle evaluation: interpret the pushed-down query tree locally."""
    pushed = QuerySpec(spec.name, push_down_filters(spec.root))
    return Interpreter(tables).run(pushed)


def normalized_rows(rows, float_places: int = 4):
    """Order-insensitive, float-tolerant canonical form of a row set."""
    def canonical(value):
        if isinstance(value, float):
            return round(value, float_places)
        if isinstance(value, list):
            return tuple(canonical(item) for item in value)
        if isinstance(value, dict):
            return tuple(sorted(
                (key, canonical(item)) for key, item in value.items()
            ))
        return value

    return sorted(
        tuple(sorted((key, canonical(value)) for key, value in row.items()))
        for row in rows
    )


def assert_same_rows(actual, expected):
    assert normalized_rows(actual) == normalized_rows(expected)
