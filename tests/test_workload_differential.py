"""Differential execution tests: every engine path vs the interpreter.

The Jaql interpreter evaluates a query tree directly over in-memory
tables; it shares no code with the MapReduce compilation, the optimizer,
or the cluster runtime. Running every paper workload through every
execution path -- DYNOPT, DYNOPT-SIMPLE (SO and MO), and the parallel
leaf-job executor -- and demanding row-identical results is therefore an
end-to-end differential oracle for the whole engine stack.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import infer_schema
from repro.data.table import Table
from repro.jaql.expr import QuerySpec
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import push_down_filters
from repro.workloads.queries import TPCH_WORKLOADS
from tests.conftest import assert_same_rows
from tests.oracle import oracle_tables, run_workload

#: (label, mode, strategy, parallel, columnar) for every engine path;
#: the columnar legs run the same queries over the batch data path.
ENGINE_PATHS = [
    ("dynopt-unc1", "dynopt", "UNC-1", False, False),
    ("dynopt-cheap1", "dynopt", "CHEAP-1", False, False),
    ("dynopt-all-at-once", "dynopt", "ALL", False, False),
    ("simple-so", "simple", "SIMPLE_SO", False, False),
    ("simple-mo", "simple", "SIMPLE_MO", False, False),
    ("dynopt-parallel", "dynopt", "UNC-1", True, False),
    ("dynopt-columnar", "dynopt", "UNC-1", False, True),
    ("dynopt-columnar-cheap1", "dynopt", "CHEAP-1", False, True),
    ("simple-so-columnar", "simple", "SIMPLE_SO", False, True),
    ("dynopt-columnar-parallel", "dynopt", "UNC-1", True, True),
]


def interpreter_reference(tables, workload):
    """Evaluate all stages with the interpreter, like execute_multi does:
    each intermediate result registers as a new base table."""
    tables = dict(tables)
    rows = None
    for spec, output_name in workload.stages:
        pushed = QuerySpec(spec.name, push_down_filters(spec.root))
        rows = Interpreter(tables).run(pushed)
        if output_name is not None:
            tables[output_name] = Table(output_name, infer_schema(rows),
                                        rows)
    return rows


@pytest.fixture(scope="module")
def tables():
    """SF 0.1 (not the 0.05 session dataset): Q2's correlated aggregation
    subquery only survives with non-empty results at this scale."""
    return oracle_tables()


@pytest.fixture(scope="module")
def reference_cache():
    return {}


@pytest.mark.parametrize("label,mode,strategy,parallel,columnar",
                         ENGINE_PATHS,
                         ids=[path[0] for path in ENGINE_PATHS])
@pytest.mark.parametrize("query", sorted(TPCH_WORKLOADS))
def test_engine_matches_interpreter(tables, reference_cache, query,
                                    label, mode, strategy, parallel,
                                    columnar):
    if query not in reference_cache:
        reference_cache[query] = interpreter_reference(
            tables, TPCH_WORKLOADS[query]())
    config = DEFAULT_CONFIG
    if columnar:
        config = config.with_columnar()
    if parallel:
        config = config.with_parallel_execution()
    _, execution = run_workload(tables, query, strategy,
                                config=config, mode=mode)
    assert_same_rows(execution.rows, reference_cache[query])


def test_reference_is_nontrivial(tables):
    """Guard: the differential suite must compare real result sets.

    Q9' is known-empty at every test scale (its UDF predicate is that
    selective); matching empty-vs-empty is still a meaningful check, but
    every other workload must produce rows.
    """
    for query in sorted(set(TPCH_WORKLOADS) - {"Q9'"}):
        rows = interpreter_reference(tables, TPCH_WORKLOADS[query]())
        assert rows, f"{query} returned no rows at the test scale factor"
