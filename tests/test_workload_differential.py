"""Differential execution tests: every engine path vs the interpreter.

The Jaql interpreter evaluates a query tree directly over in-memory
tables; it shares no code with the MapReduce compilation, the optimizer,
or the cluster runtime. Running every paper workload through every
execution path -- DYNOPT, DYNOPT-SIMPLE (SO and MO), and the parallel
leaf-job executor -- and demanding row-identical results is therefore an
end-to-end differential oracle for the whole engine stack.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import infer_schema
from repro.data.table import Table
from repro.jaql.expr import QuerySpec
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import push_down_filters
from repro.workloads.queries import TPCH_WORKLOADS
from repro.workloads.skewed import SKEWED_WORKLOADS
from tests.conftest import assert_same_rows
from tests.oracle import oracle_tables, run_workload, skewed_oracle_tables

#: (label, mode, strategy, parallel, columnar) for every engine path;
#: the columnar legs run the same queries over the batch data path.
ENGINE_PATHS = [
    ("dynopt-unc1", "dynopt", "UNC-1", False, False),
    ("dynopt-cheap1", "dynopt", "CHEAP-1", False, False),
    ("dynopt-all-at-once", "dynopt", "ALL", False, False),
    ("simple-so", "simple", "SIMPLE_SO", False, False),
    ("simple-mo", "simple", "SIMPLE_MO", False, False),
    ("dynopt-parallel", "dynopt", "UNC-1", True, False),
    ("dynopt-columnar", "dynopt", "UNC-1", False, True),
    ("dynopt-columnar-cheap1", "dynopt", "CHEAP-1", False, True),
    ("simple-so-columnar", "simple", "SIMPLE_SO", False, True),
    ("dynopt-columnar-parallel", "dynopt", "UNC-1", True, True),
]


def interpreter_reference(tables, workload):
    """Evaluate all stages with the interpreter, like execute_multi does:
    each intermediate result registers as a new base table."""
    tables = dict(tables)
    rows = None
    for spec, output_name in workload.stages:
        pushed = QuerySpec(spec.name, push_down_filters(spec.root))
        rows = Interpreter(tables).run(pushed)
        if output_name is not None:
            tables[output_name] = Table(output_name, infer_schema(rows),
                                        rows)
    return rows


@pytest.fixture(scope="module")
def tables():
    """SF 0.1 (not the 0.05 session dataset): Q2's correlated aggregation
    subquery only survives with non-empty results at this scale."""
    return oracle_tables()


@pytest.fixture(scope="module")
def reference_cache():
    return {}


@pytest.mark.parametrize("label,mode,strategy,parallel,columnar",
                         ENGINE_PATHS,
                         ids=[path[0] for path in ENGINE_PATHS])
@pytest.mark.parametrize("query", sorted(TPCH_WORKLOADS))
def test_engine_matches_interpreter(tables, reference_cache, query,
                                    label, mode, strategy, parallel,
                                    columnar):
    if query not in reference_cache:
        reference_cache[query] = interpreter_reference(
            tables, TPCH_WORKLOADS[query]())
    config = DEFAULT_CONFIG
    if columnar:
        config = config.with_columnar()
    if parallel:
        config = config.with_parallel_execution()
    _, execution = run_workload(tables, query, strategy,
                                config=config, mode=mode)
    assert_same_rows(execution.rows, reference_cache[query])


@pytest.fixture(scope="module")
def skew_tables():
    return skewed_oracle_tables()


@pytest.fixture(scope="module")
def skew_reference_cache():
    return {}


@pytest.mark.parametrize("label,mode,strategy,parallel,columnar",
                         ENGINE_PATHS,
                         ids=[path[0] for path in ENGINE_PATHS])
@pytest.mark.parametrize("query", sorted(SKEWED_WORKLOADS))
def test_skewed_engine_matches_interpreter(skew_tables,
                                           skew_reference_cache, query,
                                           label, mode, strategy,
                                           parallel, columnar):
    """The hot-key workloads through every engine path vs the interpreter.

    The dynopt paths plan these with a skew join (asserted below), so
    this sweep differentially proves the whole SKEWJOIN pipeline --
    heavy-hitter stats, costing, split-routing compilation, and the
    map-side-output runtime -- on both data paths, serial and parallel.
    """
    from repro.optimizer.plans import summarize_plan

    if query not in skew_reference_cache:
        skew_reference_cache[query] = interpreter_reference(
            skew_tables, SKEWED_WORKLOADS[query]())
    config = DEFAULT_CONFIG
    if columnar:
        config = config.with_columnar()
    if parallel:
        config = config.with_parallel_execution()
    _, execution = run_workload(skew_tables, query, strategy,
                                config=config, mode=mode)
    assert_same_rows(execution.rows, skew_reference_cache[query])
    if mode == "dynopt":
        # Pilot statistics expose the hot keys, so the dynamic optimizer
        # must pick the skew join; the static 'simple' plans (no pilot)
        # legitimately fall back to repartition.
        skew_joins = sum(summarize_plan(plan).skew_joins
                         for block in execution.block_results
                         for plan in block.plans)
        assert skew_joins >= 1, f"{label}: no skew join planned"


class TestMidjobReplanTrigger:
    """DynoConfig.midjob_qerror_threshold semantics."""

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_midjob_trigger(0.99)

    def test_unreachable_threshold_is_execution_identical(self,
                                                          skew_tables):
        """A finite-but-huge threshold exercises the audit arithmetic on
        every job yet never fires: plans, iteration structure and rows
        must be exactly the default run's."""
        baseline_dyno, baseline = run_workload(skew_tables, "SkewFunnel",
                                               "UNC-1")
        armed_dyno, armed = run_workload(
            skew_tables, "SkewFunnel", "UNC-1",
            config=DEFAULT_CONFIG.with_midjob_trigger(1e12))
        for base_block, armed_block in zip(baseline.block_results,
                                           armed.block_results):
            assert armed_block.midjob_replans == []
            assert ([it.plan_signature for it in armed_block.iterations]
                    == [it.plan_signature
                        for it in base_block.iterations])
            assert ([it.jobs_executed for it in armed_block.iterations]
                    == [it.jobs_executed for it in base_block.iterations])
        from tests.oracle import fingerprint
        assert fingerprint(armed_dyno, armed) == \
            fingerprint(baseline_dyno, baseline)

    def test_trigger_fires_on_misestimates_and_results_match(
            self, skew_tables, skew_reference_cache):
        """At the floor threshold any estimation error fires the trigger
        mid-graph; the replanned execution must still match the
        interpreter row-for-row, and the trigger must be observable
        through the trace and metrics channels."""
        from repro.core.dyno import Dyno
        from repro.obs import MemorySink, MetricsRegistry, Tracer

        if "SkewFunnel" not in skew_reference_cache:
            skew_reference_cache["SkewFunnel"] = interpreter_reference(
                skew_tables, SKEWED_WORKLOADS["SkewFunnel"]())
        sink = MemorySink()
        metrics = MetricsRegistry()
        workload = SKEWED_WORKLOADS["SkewFunnel"]()
        dyno = Dyno(skew_tables,
                    config=DEFAULT_CONFIG.with_midjob_trigger(1.0),
                    udfs=workload.udfs, tracer=Tracer(sink),
                    metrics=metrics)
        execution = dyno.execute(workload.final_spec, mode="dynopt",
                                 strategy="UNC-1", name="SkewFunnel")

        fired = [name for block in execution.block_results
                 for name in block.midjob_replans]
        assert fired, "floor threshold never fired mid-graph"
        events = [record for record in sink.records
                  if record["name"] == "midjob_replan"]
        assert [event["attrs"]["job"] for event in events] == fired
        assert all(event["attrs"]["q_error"] >= 1.0 for event in events)
        assert all(event["attrs"]["threshold"] == 1.0
                   for event in events)
        assert metrics.counter("dynopt.midjob_replans") == len(fired)
        assert_same_rows(execution.rows,
                         skew_reference_cache["SkewFunnel"])


def test_reference_is_nontrivial(tables):
    """Guard: the differential suite must compare real result sets.

    Q9' is known-empty at every test scale (its UDF predicate is that
    selective); matching empty-vs-empty is still a meaningful check, but
    every other workload must produce rows.
    """
    for query in sorted(set(TPCH_WORKLOADS) - {"Q9'"}):
        rows = interpreter_reference(tables, TPCH_WORKLOADS[query]())
        assert rows, f"{query} returned no rows at the test scale factor"
