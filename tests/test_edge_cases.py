"""Edge cases across the stack: empty inputs, degenerate queries, unicode."""

from repro.core.dyno import Dyno
from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table


def tiny_tables(left_rows, right_rows):
    return {
        "left": Table("left", Schema.of(k=INT, v=STRING), left_rows),
        "right": Table("right", Schema.of(k=INT, w=STRING), right_rows),
    }


JOIN_SQL = ("SELECT a.v AS v, b.w AS w FROM left a, right b "
            "WHERE a.k = b.k")


class TestEmptyInputs:
    def test_join_with_empty_side(self):
        tables = tiny_tables([{"k": 1, "v": "x"}], [])
        dyno = Dyno(tables)
        execution = dyno.execute(JOIN_SQL)
        assert execution.rows == []

    def test_both_sides_empty(self):
        dyno = Dyno(tiny_tables([], []))
        execution = dyno.execute(JOIN_SQL)
        assert execution.rows == []

    def test_filter_eliminates_everything(self):
        tables = tiny_tables(
            [{"k": i, "v": "x"} for i in range(50)],
            [{"k": i, "w": "y"} for i in range(50)],
        )
        dyno = Dyno(tables)
        execution = dyno.execute(JOIN_SQL + " AND a.v = 'nope'")
        assert execution.rows == []

    def test_group_by_over_empty_result(self):
        dyno = Dyno(tiny_tables([], []))
        execution = dyno.execute(
            "SELECT a.v AS v, count(*) AS n FROM left a, right b "
            "WHERE a.k = b.k GROUP BY a.v"
        )
        assert execution.rows == []

    def test_pilot_over_empty_table_is_exact_zero(self):
        dyno = Dyno(tiny_tables([], [{"k": 1, "w": "y"}]))
        extracted = dyno.prepare(JOIN_SQL)
        report = dyno.executor.pilot_runner.run(extracted.block)
        left_leaf = extracted.block.leaf_for("a")
        stats = report.outcomes[left_leaf.signature()].stats
        assert stats.row_count == 0
        assert stats.exact


class TestDegenerateShapes:
    def test_single_row_tables(self):
        tables = tiny_tables([{"k": 7, "v": "only"}],
                             [{"k": 7, "w": "match"}])
        execution = Dyno(tables).execute(JOIN_SQL)
        assert execution.rows == [{"v": "only", "w": "match"}]

    def test_many_to_many_join(self):
        tables = tiny_tables(
            [{"k": 1, "v": f"l{i}"} for i in range(5)],
            [{"k": 1, "w": f"r{i}"} for i in range(4)],
        )
        execution = Dyno(tables).execute(JOIN_SQL)
        assert len(execution.rows) == 20

    def test_null_join_keys_never_match(self):
        tables = tiny_tables(
            [{"k": None, "v": "null"}, {"k": 1, "v": "one"}],
            [{"k": None, "w": "null"}, {"k": 1, "w": "one"}],
        )
        execution = Dyno(tables).execute(JOIN_SQL)
        assert len(execution.rows) == 1

    def test_local_or_predicate_pushes_and_runs(self):
        tables = tiny_tables(
            [{"k": i, "v": ["red", "blue", "green"][i % 3]}
             for i in range(30)],
            [{"k": i, "w": "y"} for i in range(30)],
        )
        dyno = Dyno(tables)
        sql = (JOIN_SQL + " AND (a.v = 'red' OR a.v = 'blue')")
        extracted = dyno.prepare(sql)
        assert extracted.block.leaf_for("a").predicates  # pushed down
        execution = dyno.execute(sql)
        assert all(row["v"] in ("red", "blue") for row in execution.rows)
        assert len(execution.rows) == 20

    def test_duplicate_rows_preserved(self):
        tables = tiny_tables(
            [{"k": 1, "v": "dup"}, {"k": 1, "v": "dup"}],
            [{"k": 1, "w": "y"}],
        )
        execution = Dyno(tables).execute(JOIN_SQL)
        assert len(execution.rows) == 2


class TestUnicode:
    def test_unicode_values_flow_through(self):
        tables = tiny_tables(
            [{"k": 1, "v": "héllo wörld 漢字"}],
            [{"k": 1, "w": "ünïcode ✓"}],
        )
        execution = Dyno(tables).execute(JOIN_SQL)
        assert execution.rows[0]["v"] == "héllo wörld 漢字"

    def test_unicode_literals_in_sql(self):
        tables = tiny_tables(
            [{"k": 1, "v": "日本"}, {"k": 2, "v": "other"}],
            [{"k": 1, "w": "y"}, {"k": 2, "w": "z"}],
        )
        execution = Dyno(tables).execute(
            JOIN_SQL + " AND a.v = '日本'"
        )
        assert len(execution.rows) == 1

    def test_kmv_hash_handles_unicode(self):
        from repro.stats.kmv import kmv_hash

        assert kmv_hash("héllo") == kmv_hash("héllo")
        assert kmv_hash("héllo") != kmv_hash("hello")
