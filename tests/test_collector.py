"""Task-level statistics collection and publication (Section 5.4)."""

import pytest

from repro.cluster.coordination import CoordinationService
from repro.errors import StatisticsError
from repro.stats.collector import (
    TaskStatsCollector,
    merge_published_stats,
    stats_scope,
)


def make_collector(service, task_id="task-0", columns=("x",)):
    return TaskStatsCollector("job1", task_id, columns, service)


class TestCollector:
    def test_observe_and_publish(self):
        service = CoordinationService()
        collector = make_collector(service)
        collector.observe({"x": 1}, 10)
        collector.observe({"x": 2}, 10)
        collector.publish()
        entries = service.entries(stats_scope("job1"))
        assert list(entries) == ["task-0"]
        assert entries["task-0"].row_count == 2

    def test_observe_after_publish_rejected(self):
        service = CoordinationService()
        collector = make_collector(service)
        collector.publish()
        with pytest.raises(StatisticsError):
            collector.observe({"x": 1}, 10)

    def test_merge_combines_partials(self):
        service = CoordinationService()
        for task in range(3):
            collector = make_collector(service, f"task-{task}")
            for i in range(10):
                collector.observe({"x": task * 10 + i}, 5)
            collector.publish()
        merged = merge_published_stats("job1", service)
        assert merged.row_count == 30
        assert merged.size_bytes == 150
        assert merged.column("x").distinct_values == pytest.approx(30)
        assert merged.column("x").min_value == 0
        assert merged.column("x").max_value == 29

    def test_merge_clears_scope(self):
        service = CoordinationService()
        collector = make_collector(service)
        collector.observe({"x": 1}, 1)
        collector.publish()
        merge_published_stats("job1", service)
        assert service.entries(stats_scope("job1")) == {}

    def test_merge_without_entries_returns_none(self):
        assert merge_published_stats("ghost", CoordinationService()) is None

    def test_merge_exact_flag(self):
        service = CoordinationService()
        collector = make_collector(service)
        collector.observe({"x": 1}, 1)
        collector.publish()
        merged = merge_published_stats("job1", service, exact=False)
        assert not merged.exact
