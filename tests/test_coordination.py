"""Coordination service and Hadoop-style counters."""

import pytest

from repro.cluster.coordination import CoordinationService
from repro.cluster.counters import Counters
from repro.errors import CoordinationError


class TestSharedCounter:
    def test_increment(self):
        service = CoordinationService()
        counter = service.counter("k")
        assert counter.increment() == 1
        assert counter.increment(5) == 6
        assert counter.value == 6

    def test_counter_identity_by_name(self):
        service = CoordinationService()
        assert service.counter("a") is service.counter("a")
        assert service.counter("a") is not service.counter("b")

    def test_negative_increment_rejected(self):
        with pytest.raises(CoordinationError):
            CoordinationService().counter("k").increment(-1)

    def test_reset(self):
        service = CoordinationService()
        service.counter("k").increment(10)
        service.reset_counter("k")
        assert service.counter("k").value == 0


class TestRegistry:
    def test_publish_and_read(self):
        service = CoordinationService()
        service.publish("stats/job1", "task-0", {"rows": 5})
        service.publish("stats/job1", "task-1", {"rows": 7})
        entries = service.entries("stats/job1")
        assert entries == {"task-0": {"rows": 5}, "task-1": {"rows": 7}}

    def test_duplicate_publish_rejected(self):
        service = CoordinationService()
        service.publish("scope", "key", 1)
        with pytest.raises(CoordinationError):
            service.publish("scope", "key", 2)

    def test_scopes_are_isolated(self):
        service = CoordinationService()
        service.publish("a", "k", 1)
        assert service.entries("b") == {}

    def test_clear_scope(self):
        service = CoordinationService()
        service.publish("a", "k", 1)
        service.clear_scope("a")
        assert service.entries("a") == {}
        service.publish("a", "k", 2)  # republish allowed after clear


class TestCounters:
    def test_group_increment_and_get(self):
        counters = Counters()
        counters.increment("map", Counters.MAP_INPUT_RECORDS, 10)
        counters.increment("map", Counters.MAP_INPUT_RECORDS, 5)
        assert counters.get("map", Counters.MAP_INPUT_RECORDS) == 15

    def test_missing_counter_is_zero(self):
        counters = Counters()
        assert counters.get("map", "NOPE") == 0
        assert counters.get("nope", "NOPE") == 0

    def test_total_across_groups(self):
        counters = Counters()
        counters.increment("map", "X", 3)
        counters.increment("reduce", "X", 4)
        assert counters.total("X") == 7

    def test_as_dict(self):
        counters = Counters()
        counters.increment("map", "A", 1)
        counters.increment("reduce", "B", 2)
        snapshot = counters.as_dict()
        assert snapshot == {"map": {"A": 1}, "reduce": {"B": 2}}
