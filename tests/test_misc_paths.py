"""Smaller behaviours not covered elsewhere."""

import pytest

from repro.errors import PlanError


class TestJobGraphLookups:
    def test_job_named(self, dyno_factory):
        from repro.core.baselines import oracle_leaf_stats
        from repro.jaql.compiler import PlanCompiler
        from repro.optimizer.search import JoinOptimizer
        from repro.workloads.queries import q10

        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec)
        stats = oracle_leaf_stats(dyno.tables, extracted.block)
        plan = JoinOptimizer(extracted.block, stats,
                             dyno.config.optimizer).optimize().plan
        graph = PlanCompiler(dyno.dfs, dyno.config, "misc").compile_block(
            plan
        )
        first = graph.jobs[0]
        assert graph.job_named(first.name) is first
        with pytest.raises(PlanError):
            graph.job_named("ghost")


class TestStageErrors:
    def test_group_after_client_stage_rejected(self, dyno_factory):
        """A GroupBy stage cannot follow a client-side stage."""
        from repro.jaql.expr import (
            Aggregate,
            GroupBy,
            OrderBy,
            Project,
            QuerySpec,
            Scan,
            ref,
        )

        dyno = dyno_factory()
        tree = Project(
            GroupBy(
                OrderBy(Scan("nation", "n"), (ref("n", "n_name"),)),
                (ref("n", "n_regionkey"),),
                (Aggregate("count", None, "c"),),
            ),
            ((ref("n", "n_regionkey"), "rk"),),
        )
        with pytest.raises(PlanError):
            dyno.execute(QuerySpec("bad", tree))


class TestInterpreterErrors:
    def test_unknown_expression_type(self):
        from repro.jaql.expr import Expr
        from repro.jaql.interpreter import Interpreter

        class Mystery(Expr):
            def children(self):
                return ()

        with pytest.raises(PlanError):
            Interpreter({}).evaluate(Mystery())


class TestWorkloadAccessors:
    def test_final_spec_is_last_stage(self):
        from repro.workloads.queries import q2

        workload = q2()
        assert workload.final_spec is workload.stages[-1][0]


class TestSchedulerDetermination:
    def test_same_batch_same_result(self):
        from repro.cluster.scheduler import ScheduledJob, SlotScheduler

        jobs = [
            ScheduledJob("a", [3.0, 2.0], [1.0], startup_seconds=1.0),
            ScheduledJob("b", [4.0], depends_on=["a"]),
            ScheduledJob("c", [2.0, 2.0, 2.0]),
        ]
        first = SlotScheduler(2, 2).schedule(jobs)
        second = SlotScheduler(2, 2).schedule(jobs)
        assert first.makespan == second.makespan
        for job_id in ("a", "b", "c"):
            assert (first.timelines[job_id].finish_time
                    == second.timelines[job_id].finish_time)


class TestEstimateMissed:
    def test_threshold_boundary(self, dyno_factory):
        from dataclasses import replace

        from repro.jaql.compiler import CompiledJob

        dyno = dyno_factory()
        executor = dyno.executor
        executor.config = replace(executor.config,
                                  reoptimization_threshold=0.5)

        class _Job:
            name = "x"

        compiled = CompiledJob(
            job=_Job(), depends_on=[], output_aliases=frozenset(("a",)),
            applied_predicates=(), join_count=1, estimated_cost=0.0,
            estimated_rows=100.0,
        )

        class _Result:
            def __init__(self, rows):
                self.output_rows = rows

        assert not executor._estimate_missed(compiled, _Result(140))
        assert executor._estimate_missed(compiled, _Result(151))
        assert executor._estimate_missed(compiled, _Result(40))
