"""Memory-governed execution: spill join, accounting, backpressure.

The PR-5 acceptance scenario: a workload whose broadcast build side lands
between ``task_memory_bytes`` and ``spill_overflow_factor`` times it must
complete through the spillable hybrid hash join with zero replans -- the
trace shows ``spill`` events and no ``BroadcastBuildOverflowError`` --
and produce exactly the rows of a repartition-only plan. Around that
scenario, these tests pin down each layer: the coherent memory config,
the hybrid cost formulas, the optimizer's choice, the runtime's
degrade-in-place, the scheduler's cluster memory pool, and the service's
admission backpressure.
"""

import json
import threading

import pytest

from repro.cluster.counters import Counters
from repro.cluster.job import BroadcastBuild, MapReduceJob, TaskContext
from repro.cluster.runtime import ClusterRuntime
from repro.cluster.scheduler import ScheduledJob, SlotScheduler
from repro.config import DEFAULT_CONFIG, ClusterConfig, DynoConfig
from repro.core.dyno import Dyno
from repro.core.dynopt import MODE_DYNOPT
from repro.data.schema import INT, STRING, Schema
from repro.errors import BroadcastBuildOverflowError, JobError
from repro.obs import MemorySink, Tracer
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.plans import summarize_plan
from repro.optimizer.search import JoinOptimizer
from repro.service import QueryRequest, QueryService
from repro.storage.dfs import DistributedFileSystem

SCHEMA = Schema.of(key=INT, value=STRING)

SPILL_SQL = """
    SELECT o.o_orderkey AS okey, c.c_name AS cname
    FROM orders o, customer c
    WHERE o.o_custkey = c.c_custkey
"""


def canonical(rows):
    return sorted(json.dumps(row, sort_keys=True, default=str)
                  for row in rows)


def trace_events(sink, name):
    return [record for record in sink.records
            if record["kind"] == "event" and record["name"] == name]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


class TestMemoryConfig:
    def test_with_memory_moves_both_budgets(self):
        config = DEFAULT_CONFIG.with_memory(task_memory_bytes=8192)
        assert config.cluster.task_memory_bytes == 8192
        assert config.optimizer.max_broadcast_bytes == 8192

    def test_with_memory_sets_cluster_pool(self):
        config = DEFAULT_CONFIG.with_memory(cluster_memory_bytes=123456)
        assert config.cluster.effective_cluster_memory_bytes == 123456

    def test_default_pool_is_slots_times_task_memory(self):
        cluster = DEFAULT_CONFIG.cluster
        assert cluster.cluster_memory_bytes == 0
        assert cluster.effective_cluster_memory_bytes == \
            cluster.total_map_slots * cluster.task_memory_bytes

    def test_with_memory_rejects_nonpositive_task_budget(self):
        with pytest.raises(ValueError, match="task_memory_bytes"):
            DEFAULT_CONFIG.with_memory(task_memory_bytes=0)


# ---------------------------------------------------------------------------
# hybrid join cost model
# ---------------------------------------------------------------------------


class TestHybridCostModel:
    def model(self, mmax=8192):
        from dataclasses import replace

        return JoinCostModel(
            replace(DEFAULT_CONFIG.optimizer, max_broadcast_bytes=mmax)
        )

    def test_spilled_fraction_zero_when_fitting(self):
        model = self.model()
        assert model.spilled_fraction(1000.0) == 0.0

    def test_spilled_fraction_grows_with_build(self):
        model = self.model()
        small = model.spilled_fraction(10_000.0)
        large = model.spilled_fraction(20_000.0)
        assert 0.0 < small < large < 1.0

    def test_fits_with_spill_is_wider_than_memory(self):
        model = self.model()
        build = 12_000.0  # over Mmax, within 4x margin
        assert not model.fits_in_memory(build)
        assert model.fits_with_spill(build)
        assert not model.fits_with_spill(40_000.0)

    def test_cost_ordering_broadcast_hybrid_repartition(self):
        """For a marginally oversized build the hybrid join must sit
        strictly between broadcast and repartition, so the optimizer
        degrades rather than jumping straight to repartition."""
        model = self.model()
        probe, build, out = 100_000.0, 12_000.0, 50_000.0
        assert model.broadcast_cost(probe, build, out) \
            < model.hybrid_cost(probe, build, out) \
            < model.repartition_cost(probe, build, out)

    def test_hybrid_equals_broadcast_when_nothing_spills(self):
        model = self.model()
        assert model.hybrid_cost(1000.0, 500.0, 100.0) == \
            model.broadcast_cost(1000.0, 500.0, 100.0)


class TestHybridPlanChoice:
    def optimize(self, dyno_factory, mmax, banned=frozenset()):
        from repro.core.baselines import oracle_leaf_stats

        dyno = dyno_factory()
        spec = dyno.parse(SPILL_SQL, name="QSPILL")
        block = dyno.prepare(spec).block
        stats = oracle_leaf_stats(dyno.tables, block)
        config = DEFAULT_CONFIG.with_memory(task_memory_bytes=mmax)
        optimizer = JoinOptimizer(block, stats, config.optimizer,
                                  banned_broadcast=banned)
        return optimizer.optimize()

    def test_marginal_build_chooses_hybrid(self, dyno_factory):
        result = self.optimize(dyno_factory, mmax=8192)
        summary = summarize_plan(result.plan)
        assert summary.hybrid_joins == 1
        assert summary.repartition_joins == 0

    def test_tiny_budget_falls_back_to_repartition(self, dyno_factory):
        result = self.optimize(dyno_factory, mmax=1024)
        summary = summarize_plan(result.plan)
        assert summary.hybrid_joins == 0
        assert summary.repartition_joins == 1

    def test_large_budget_still_broadcasts(self, dyno_factory):
        result = self.optimize(dyno_factory, mmax=96 * 1024)
        summary = summarize_plan(result.plan)
        assert summary.broadcast_joins == 1
        assert summary.hybrid_joins == 0

    def test_ban_covers_hybrid_joins_too(self, dyno_factory):
        """PR-2's ban-and-replan must exclude the hybrid variant as well:
        after a pathological overflow the replanned join may not retry
        any in-memory hash build over the banned aliases."""
        result = self.optimize(dyno_factory, mmax=8192)
        banned = frozenset({frozenset(result.plan.aliases)})
        rebanned = self.optimize(dyno_factory, mmax=8192, banned=banned)
        summary = summarize_plan(rebanned.plan)
        assert summary.hybrid_joins == 0
        assert summary.broadcast_joins == 0
        assert summary.repartition_joins == 1


# ---------------------------------------------------------------------------
# runtime degrade-in-place
# ---------------------------------------------------------------------------


def spill_runtime(task_memory=4096):
    config = DynoConfig(cluster=ClusterConfig(block_size_bytes=256,
                                              task_memory_bytes=task_memory))
    dfs = DistributedFileSystem(config.cluster.block_size_bytes)
    dfs.write_rows(
        "probe", SCHEMA,
        [{"key": i % 50, "value": f"p{i}"} for i in range(200)],
    )
    dfs.write_rows(
        "build", SCHEMA,
        [{"key": i, "value": "b" * 40} for i in range(50)],
    )
    return ClusterRuntime(dfs, config), config


def join_job(runtime):
    build = BroadcastBuild("build", lambda rows: list(rows))

    def mapper(context: TaskContext, source: str, rows) -> None:
        table = {row["key"]: row for row in build.built_rows()}
        for row in rows:
            match = table.get(row["key"])
            if match is not None:
                context.emit(None, {**row, "build_value": match["value"]})

    return MapReduceJob("join", ["probe"], mapper, "out", SCHEMA,
                        broadcast_builds=[build])


class TestRuntimeSpill:
    def test_marginal_overflow_spills_instead_of_dying(self):
        runtime, config = spill_runtime(task_memory=2048)
        result = runtime.execute(join_job(runtime))
        assert result.spilled_bytes > 0
        assert result.in_memory_build_bytes == 2048
        assert result.counters.get("map", Counters.SPILLED_BYTES) == \
            result.spilled_bytes
        assert runtime.dfs.spill_bytes_written == result.spilled_bytes
        assert runtime.dfs.spill_bytes_read == result.spilled_bytes

    def test_spill_output_matches_in_memory_run(self):
        spilling, _ = spill_runtime(task_memory=2048)
        roomy, _ = spill_runtime(task_memory=1024 * 1024)
        spilled = spilling.execute(join_job(spilling))
        in_memory = roomy.execute(join_job(roomy))
        assert in_memory.spilled_bytes == 0
        assert canonical(spilling.dfs.read_all("out")) == \
            canonical(roomy.dfs.read_all("out"))
        assert spilled.output_rows == in_memory.output_rows

    def test_spilling_costs_extra_time(self):
        spilling, _ = spill_runtime(task_memory=2048)
        roomy, _ = spill_runtime(task_memory=1024 * 1024)
        slow = spilling.execute(join_job(spilling))
        fast = roomy.execute(join_job(roomy))
        assert sum(slow.map_task_seconds) > sum(fast.map_task_seconds)

    def test_pathological_overflow_still_raises(self):
        runtime, _ = spill_runtime(task_memory=256)  # build >> 4x budget
        with pytest.raises(BroadcastBuildOverflowError):
            runtime.execute(join_job(runtime))

    def test_fitting_build_neither_spills_nor_charges(self):
        runtime, _ = spill_runtime(task_memory=1024 * 1024)
        result = runtime.execute(join_job(runtime))
        assert result.spilled_bytes == 0
        assert result.counters.get("map", Counters.SPILLED_BYTES) == 0
        assert runtime.dfs.spill_bytes_written == 0


# ---------------------------------------------------------------------------
# scheduler memory pool
# ---------------------------------------------------------------------------


class TestSchedulerMemoryPool:
    def test_pool_serializes_overcommitted_jobs(self):
        jobs = [
            ScheduledJob("a", [10.0], memory_bytes=60),
            ScheduledJob("b", [10.0], memory_bytes=60),
        ]
        free = SlotScheduler(4, 4).schedule(jobs)
        governed = SlotScheduler(4, 4, memory_pool_bytes=100).schedule(jobs)
        assert free.makespan < governed.makespan
        assert governed.timelines["b"].memory_wait_seconds > 0.0
        assert governed.timelines["a"].memory_wait_seconds == 0.0

    def test_fitting_jobs_run_concurrently(self):
        jobs = [
            ScheduledJob("a", [10.0], memory_bytes=40),
            ScheduledJob("b", [10.0], memory_bytes=40),
        ]
        result = SlotScheduler(4, 4, memory_pool_bytes=100).schedule(jobs)
        assert result.timelines["b"].memory_wait_seconds == 0.0

    def test_zero_demand_jobs_ignore_the_pool(self):
        jobs = [
            ScheduledJob("a", [10.0]),
            ScheduledJob("b", [10.0]),
        ]
        result = SlotScheduler(4, 4, memory_pool_bytes=1).schedule(jobs)
        assert result.makespan == pytest.approx(10.0)

    def test_oversized_demand_is_clamped_to_run_alone(self):
        """A job declaring more than the whole pool must still run --
        alone -- rather than wait forever."""
        jobs = [
            ScheduledJob("big", [10.0], memory_bytes=10_000),
            ScheduledJob("small", [10.0], memory_bytes=50),
        ]
        result = SlotScheduler(4, 4, memory_pool_bytes=100).schedule(jobs)
        assert result.timelines["big"].finish_time > 0.0
        assert result.timelines["small"].memory_wait_seconds > 0.0

    def test_fifo_queue_admits_no_bypass(self):
        """A later small job may not overtake an earlier blocked one."""
        jobs = [
            ScheduledJob("first", [10.0], memory_bytes=80),
            ScheduledJob("second", [10.0], memory_bytes=80),
            ScheduledJob("third", [10.0], memory_bytes=10),
        ]
        result = SlotScheduler(4, 4, memory_pool_bytes=100).schedule(jobs)
        assert result.timelines["third"].start_time >= \
            result.timelines["second"].start_time

    def test_negative_pool_is_rejected(self):
        with pytest.raises(JobError, match="memory"):
            SlotScheduler(1, 1, memory_pool_bytes=-1)


# ---------------------------------------------------------------------------
# end-to-end acceptance: spill join under DYNOPT
# ---------------------------------------------------------------------------


class TestEndToEndSpill:
    def run(self, tables, task_memory, tracer=None):
        config = DEFAULT_CONFIG.with_memory(task_memory_bytes=task_memory)
        dyno = Dyno(tables, config=config, tracer=tracer)
        spec = dyno.parse(SPILL_SQL, name="QSPILL")
        return dyno.execute(spec, mode=MODE_DYNOPT, strategy="UNC-1")

    @pytest.fixture(scope="class")
    def spill_run(self, tpch_tables):
        sink = MemorySink()
        execution = self.run(tpch_tables, 8192, tracer=Tracer(sink))
        return execution, sink

    def test_completes_via_hybrid_with_zero_replans(self, spill_run):
        execution, _ = spill_run
        block = execution.block_results[0]
        assert block.replanned_failures == []
        final = summarize_plan(block.plans[-1])
        assert final.hybrid_joins == 1

    def test_trace_shows_spill_and_no_overflow(self, spill_run):
        _, sink = spill_run
        spills = trace_events(sink, "spill")
        assert spills, "expected at least one spill event"
        for event in spills:
            attrs = event["attrs"]
            assert attrs["spilled_bytes"] > 0
            assert attrs["in_memory_build_bytes"] == \
                attrs["task_memory_bytes"]
        assert not [record for record in sink.records
                    if "BroadcastBuildOverflowError" in json.dumps(record)]

    def test_rows_identical_to_repartition_only_plan(self, spill_run,
                                                     tpch_tables):
        execution, _ = spill_run
        repartition = self.run(tpch_tables, 1024)
        summary = summarize_plan(repartition.block_results[0].plans[-1])
        assert summary.repartition_joins == 1
        assert summary.hybrid_joins == 0
        assert canonical(execution.rows) == canonical(repartition.rows)


# ---------------------------------------------------------------------------
# service admission backpressure
# ---------------------------------------------------------------------------


class TestServiceBackpressure:
    def requests(self, demand):
        return [
            QueryRequest.single(f"S{index}", SPILL_SQL,
                                memory_demand_bytes=demand)
            for index in range(3)
        ]

    def run_batch(self, tables, workers, pool, demand, sink=None):
        config = DEFAULT_CONFIG.with_memory(cluster_memory_bytes=pool)
        tracer = Tracer(sink) if sink is not None else None
        service = QueryService(tables, config=config, workers=workers,
                               tracer=tracer)
        return service.run_batch(self.requests(demand))

    def test_backpressure_preserves_results(self, tpch_tables):
        # A pool of 100 KB admits one 60 KB query at a time.
        serial = self.run_batch(tpch_tables, 1, 100 * 1024, 60 * 1024)
        concurrent = self.run_batch(tpch_tables, 3, 100 * 1024, 60 * 1024)
        assert [outcome.error for outcome in concurrent] == [None] * 3
        for left, right in zip(serial, concurrent):
            assert canonical(left.rows) == canonical(right.rows)

    def test_waits_are_traced_as_admission_spans(self, tpch_tables):
        # Occupy most of the pool up front so the first query *must*
        # block -- forcing contention deterministically instead of hoping
        # the worker threads overlap (a fast engine can finish one query
        # before the next thread even reaches admission).
        sink = MemorySink()
        config = DEFAULT_CONFIG.with_memory(cluster_memory_bytes=100 * 1024)
        service = QueryService(tpch_tables, config=config, workers=3,
                               tracer=Tracer(sink))
        gate = service._memory_gate
        held = 60 * 1024
        assert gate.try_acquire(held)
        releaser = threading.Timer(0.05, gate.release, args=(held,))
        releaser.start()
        try:
            outcomes = service.run_batch(self.requests(60 * 1024))
        finally:
            releaser.join()
        assert [outcome.error for outcome in outcomes] == [None] * 3
        waits = [record for record in sink.records
                 if record["kind"] == "span_end"
                 and record["name"] == "admission_wait"]
        assert waits, "expected blocked queries to trace admission_wait"
        for span in waits:
            assert span["attrs"]["demand_bytes"] == 60 * 1024
            assert span["attrs"]["waited_s"] >= 0.0

    def test_undeclared_queries_never_wait(self, tpch_tables):
        sink = MemorySink()
        self.run_batch(tpch_tables, 3, 100 * 1024, 0, sink=sink)
        assert not [record for record in sink.records
                    if record["name"] == "admission_wait"]
