"""Memo exploration and top-down search: optimality and plan shapes."""

import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizerError, UnsupportedQueryError
from repro.jaql.blocks import SOURCE_TABLE, BlockLeaf, JoinBlock
from repro.jaql.expr import JoinCondition, UdfPredicate, ref
from repro.jaql.functions import Udf
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.memo import LogicalJoin, LogicalLeaf, Memo
from repro.optimizer.plans import (
    BROADCAST,
    PhysJoin,
    PhysLeaf,
    summarize_plan,
)
from repro.optimizer.search import JoinOptimizer, simulated_optimizer_seconds
from repro.stats.statistics import ColumnStats, TableStats


def leaf(alias, table=None):
    # Distinct table per alias: leaves sharing a table (and predicates)
    # share a statistics signature, which these tests don't want.
    return BlockLeaf(frozenset((alias,)), SOURCE_TABLE, table or alias)


def chain_block(n, name="chain"):
    leaves = tuple(leaf(chr(ord("a") + i)) for i in range(n))
    conditions = tuple(
        JoinCondition(ref(chr(ord("a") + i), "k"),
                      ref(chr(ord("a") + i + 1), "k"))
        for i in range(n - 1)
    )
    return JoinBlock(name, leaves, conditions)


def stats_for(block, sizes):
    """sizes: alias -> (rows, bytes); join keys get key-like DVs."""
    result = {}
    for block_leaf in block.leaves:
        alias = block_leaf.alias
        rows, size = sizes[alias]
        columns = {}
        for condition in block.conditions:
            for side in (condition.left, condition.right):
                if side.alias == alias:
                    columns[side.qualified] = ColumnStats(
                        side.qualified, max(rows, 1.0)
                    )
        result[block_leaf.signature()] = TableStats(rows, size, columns)
    return result


def optimize(block, sizes, **config_kwargs):
    config = OptimizerConfig(**config_kwargs)
    return JoinOptimizer(block, stats_for(block, sizes), config).optimize()


class TestMemo:
    def test_leaf_group(self):
        graph = JoinGraph.build(chain_block(3))
        memo = Memo(graph)
        group = memo.explore(frozenset((1,)))
        assert group.expressions == [LogicalLeaf(1)]

    def test_pair_group_has_both_orders(self):
        graph = JoinGraph.build(chain_block(2))
        memo = Memo(graph)
        group = memo.explore(frozenset((0, 1)))
        joins = {(expr.left, expr.right) for expr in group.expressions
                 if isinstance(expr, LogicalJoin)}
        assert (frozenset((0,)), frozenset((1,))) in joins
        assert (frozenset((1,)), frozenset((0,))) in joins

    def test_disconnected_splits_excluded(self):
        graph = JoinGraph.build(chain_block(3))
        memo = Memo(graph)
        group = memo.explore(frozenset((0, 1, 2)))
        for expr in group.expressions:
            assert isinstance(expr, LogicalJoin)
            # {0,2} is disconnected, never a side.
            assert expr.left != frozenset((0, 2))
            assert expr.right != frozenset((0, 2))

    def test_exploration_idempotent(self):
        graph = JoinGraph.build(chain_block(3))
        memo = Memo(graph)
        first = memo.explore(frozenset((0, 1)))
        count = len(first.expressions)
        second = memo.explore(frozenset((0, 1)))
        assert len(second.expressions) == count

    def test_empty_group_key_rejected(self):
        memo = Memo(JoinGraph.build(chain_block(2)))
        with pytest.raises(OptimizerError):
            memo.group(frozenset())


def brute_force_best_cost(block, leaf_stats, config):
    """Exhaustively enumerate all bushy plans and return the best cost."""
    from repro.optimizer.cardinality import CardinalityModel
    from repro.optimizer.cost import JoinCostModel
    from repro.optimizer.rules import JoinContext, default_rules

    graph = JoinGraph.build(block)
    cardinality = CardinalityModel(block, leaf_stats)
    cost_model = JoinCostModel(config)
    rules = default_rules()

    def plans(members):
        if len(members) == 1:
            index = next(iter(members))
            block_leaf = graph.leaf(index)
            stats = cardinality.leaf_stats(block_leaf)
            yield PhysLeaf(aliases=block_leaf.aliases,
                           est_rows=stats.row_count,
                           est_bytes=stats.size_bytes, cost=0.0,
                           leaf=block_leaf)
            return
        members_list = sorted(members)
        anchorless = members_list[1:]
        for mask in range(0, 1 << len(anchorless)):
            subset = frozenset(
                [members_list[0]] + [anchorless[i]
                                     for i in range(len(anchorless))
                                     if mask & (1 << i)]
            )
            complement = members - subset
            if not complement:
                continue
            for left_key, right_key in ((subset, complement),
                                        (complement, subset)):
                if not (graph.is_connected(left_key)
                        and graph.is_connected(complement)
                        and graph.edges_between(left_key, right_key)):
                    continue
                left_aliases = graph.aliases_of(left_key)
                right_aliases = graph.aliases_of(right_key)
                combined = left_aliases | right_aliases
                estimate = cardinality.estimate(combined)
                context = JoinContext(
                    combined, estimate.rows, estimate.bytes,
                    block.conditions_between(left_aliases, right_aliases),
                    (),
                )
                for left_plan in plans(left_key):
                    for right_plan in plans(right_key):
                        for rule in rules:
                            candidate = rule.apply(left_plan, right_plan,
                                                   context, cost_model)
                            if candidate is not None:
                                yield candidate

    all_members = frozenset(range(graph.size))
    return min(
        cost_model.apply_chain_rule(plan).cost
        for plan in plans(all_members)
    )


class TestOptimality:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_brute_force_on_chains(self, n):
        block = chain_block(n)
        sizes = {chr(ord("a") + i): (100.0 * (i + 1), 1000.0 * (i + 1))
                 for i in range(n)}
        config = OptimizerConfig(max_broadcast_bytes=1500)
        leaf_stats = stats_for(block, sizes)
        result = JoinOptimizer(block, leaf_stats, config).optimize()
        best = brute_force_best_cost(block, leaf_stats, config)
        assert result.cost == pytest.approx(best)

    def test_pruning_does_not_change_result(self):
        block = chain_block(5)
        sizes = {chr(ord("a") + i): (50.0 * (i + 2), 700.0 * (i + 2))
                 for i in range(5)}
        pruned = optimize(block, sizes, enable_pruning=True)
        exhaustive = optimize(block, sizes, enable_pruning=False)
        assert pruned.cost == pytest.approx(exhaustive.cost)


class TestPlanShapes:
    def test_single_leaf_block(self):
        block = JoinBlock("one", (leaf("a"),), ())
        result = optimize(block, {"a": (10.0, 100.0)})
        assert isinstance(result.plan, PhysLeaf)
        assert result.cost == 0.0

    def test_small_builds_become_broadcast(self):
        block = chain_block(3)
        sizes = {"a": (10000.0, 500000.0), "b": (10.0, 100.0),
                 "c": (10.0, 100.0)}
        result = optimize(block, sizes, max_broadcast_bytes=1000)
        summary = summarize_plan(result.plan)
        assert summary.broadcast_joins == 2
        assert summary.repartition_joins == 0

    def test_large_builds_become_repartition(self):
        block = chain_block(2)
        sizes = {"a": (10000.0, 500000.0), "b": (10000.0, 500000.0)}
        result = optimize(block, sizes, max_broadcast_bytes=1000)
        assert summarize_plan(result.plan).repartition_joins == 1

    def test_probe_is_big_side_build_is_small_side(self):
        block = chain_block(2)
        sizes = {"a": (10000.0, 500000.0), "b": (10.0, 100.0)}
        result = optimize(block, sizes, max_broadcast_bytes=1000)
        plan = result.plan
        assert isinstance(plan, PhysJoin)
        assert plan.method == BROADCAST
        assert plan.build.aliases == {"b"}

    def test_star_produces_chain(self):
        leaves = (leaf("f"),) + tuple(leaf(f"d{i}") for i in range(3))
        conditions = tuple(
            JoinCondition(ref("f", f"k{i}"), ref(f"d{i}", "k"))
            for i in range(3)
        )
        block = JoinBlock("star", leaves, conditions)
        sizes = {"f": (100000.0, 5_000_000.0)}
        sizes.update({f"d{i}": (10.0, 100.0) for i in range(3)})
        result = optimize(block, sizes, max_broadcast_bytes=1000)
        summary = summarize_plan(result.plan)
        assert summary.broadcast_joins == 3
        assert summary.chained_joins == 2  # one map-only job

    def test_bushy_plan_produced_when_cheaper(self):
        # Two big relations each with a tiny dimension: joining the two
        # reduced sides is cheaper bushy than any left-deep order.
        leaves = (leaf("r"), leaf("s"), leaf("dr"), leaf("ds"))
        conditions = (
            JoinCondition(ref("r", "k"), ref("s", "k")),
            JoinCondition(ref("r", "a"), ref("dr", "a")),
            JoinCondition(ref("s", "b"), ref("ds", "b")),
        )
        block = JoinBlock("bushy", leaves, conditions)
        sizes = {"r": (50000.0, 3_000_000.0), "s": (50000.0, 3_000_000.0),
                 "dr": (5.0, 50.0), "ds": (5.0, 50.0)}
        result = optimize(block, sizes, max_broadcast_bytes=1000)
        assert not summarize_plan(result.plan).is_left_deep

    def test_cyclic_block_rejected(self):
        leaves = (leaf("a"), leaf("b"), leaf("c"))
        conditions = (
            JoinCondition(ref("a", "k"), ref("b", "k")),
            JoinCondition(ref("b", "j"), ref("c", "j")),
            JoinCondition(ref("c", "i"), ref("a", "i")),
        )
        block = JoinBlock("cycle", leaves, conditions)
        sizes = {x: (10.0, 100.0) for x in "abc"}
        with pytest.raises(UnsupportedQueryError):
            optimize(block, sizes)

    def test_non_local_predicate_placed_at_covering_join(self):
        block = chain_block(3)
        pred = UdfPredicate(Udf("u", lambda x, y: True),
                            (ref("a", "x"), ref("c", "y")))
        block = JoinBlock(block.name, block.leaves, block.conditions,
                          (pred,))
        sizes = {"a": (100.0, 1000.0), "b": (100.0, 1000.0),
                 "c": (100.0, 1000.0)}
        result = optimize(block, sizes)
        # The predicate must appear exactly once, at a join covering a+c.
        placements = []

        def visit(node):
            if isinstance(node, PhysJoin):
                if pred in node.applied_predicates:
                    placements.append(node)
                visit(node.left)
                visit(node.right)

        visit(result.plan)
        assert len(placements) == 1
        assert {"a", "c"} <= placements[0].aliases

    def test_diagnostics_populated(self):
        block = chain_block(4)
        sizes = {chr(ord("a") + i): (100.0, 1000.0) for i in range(4)}
        result = optimize(block, sizes)
        assert result.groups_explored >= 4
        assert result.plans_considered > 0
        assert result.simulated_seconds == pytest.approx(
            simulated_optimizer_seconds(4)
        )

    def test_simulated_seconds_grow_exponentially(self):
        assert simulated_optimizer_seconds(8) / \
            simulated_optimizer_seconds(5) == pytest.approx(27.0)
