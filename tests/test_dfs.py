"""Simulated DFS: files, splits, byte accounting."""

import pytest

from repro.data.schema import INT, STRING, Schema
from repro.data.table import Table
from repro.errors import StorageError
from repro.storage.dfs import DistributedFileSystem

SCHEMA = Schema.of(id=INT, payload=STRING)


def make_dfs(block_size: int = 256) -> DistributedFileSystem:
    return DistributedFileSystem(block_size_bytes=block_size)


def make_table(rows: int) -> Table:
    return Table(
        "data", SCHEMA,
        [{"id": i, "payload": "x" * 20} for i in range(rows)],
    )


class TestNamespace:
    def test_write_and_open(self):
        dfs = make_dfs()
        dfs.write_table(make_table(10))
        assert dfs.exists("data")
        assert dfs.open("data").row_count == 10

    def test_write_duplicate_rejected(self):
        dfs = make_dfs()
        dfs.write_table(make_table(1))
        with pytest.raises(StorageError):
            dfs.write_table(make_table(1))

    def test_overwrite_allowed_when_asked(self):
        dfs = make_dfs()
        dfs.write_table(make_table(1))
        dfs.write_table(make_table(5), overwrite=True)
        assert dfs.open("data").row_count == 5

    def test_open_missing_raises(self):
        with pytest.raises(StorageError):
            make_dfs().open("nope")

    def test_delete(self):
        dfs = make_dfs()
        dfs.write_table(make_table(1))
        dfs.delete("data")
        assert not dfs.exists("data")
        with pytest.raises(StorageError):
            dfs.delete("data")

    def test_list_files_sorted(self):
        dfs = make_dfs()
        dfs.write_rows("b", SCHEMA, [])
        dfs.write_rows("a", SCHEMA, [])
        assert dfs.list_files() == ["a", "b"]

    def test_empty_name_rejected(self):
        with pytest.raises(StorageError):
            make_dfs().write_rows("", SCHEMA, [])

    def test_bad_block_size_rejected(self):
        with pytest.raises(StorageError):
            DistributedFileSystem(block_size_bytes=0)


class TestSplits:
    def test_splits_cover_all_rows_disjointly(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        splits = dfs.file_splits("data")
        assert len(splits) > 1
        covered = []
        for split in splits:
            covered.extend(
                range(split.start_row, split.start_row + split.row_count)
            )
        assert covered == list(range(50))

    def test_split_sizes_respect_block_size(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        for split in dfs.file_splits("data"):
            assert split.size_bytes <= 200 or split.row_count == 1

    def test_single_block_for_small_file(self):
        dfs = make_dfs(block_size=1 << 20)
        dfs.write_table(make_table(10))
        assert len(dfs.file_splits("data")) == 1

    def test_empty_file_has_one_empty_split(self):
        dfs = make_dfs()
        dfs.write_rows("empty", SCHEMA, [])
        splits = dfs.file_splits("empty")
        assert len(splits) == 1
        assert splits[0].row_count == 0

    def test_file_size_matches_sum_of_splits(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        splits = dfs.file_splits("data")
        assert dfs.file_size("data") == sum(s.size_bytes for s in splits)

    def test_read_split_returns_its_rows(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        split = dfs.file_splits("data")[1]
        rows = dfs.read_split(split)
        assert rows[0]["id"] == split.start_row
        assert len(rows) == split.row_count

    def test_read_foreign_split_rejected(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        dfs.write_rows("other", SCHEMA, [{"id": 1, "payload": "y"}])
        split = dfs.file_splits("data")[0]
        with pytest.raises(StorageError):
            dfs.open("other").split_rows(split)


class TestAccounting:
    def test_bytes_written_accumulates(self):
        dfs = make_dfs()
        before = dfs.bytes_written
        dfs.write_table(make_table(20))
        assert dfs.bytes_written == before + dfs.file_size("data")

    def test_bytes_read_accumulates(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        before = dfs.bytes_read
        dfs.read_all("data")
        assert dfs.bytes_read == before + dfs.file_size("data")

    def test_read_split_accounts_split_bytes(self):
        dfs = make_dfs(block_size=200)
        dfs.write_table(make_table(50))
        split = dfs.file_splits("data")[0]
        before = dfs.bytes_read
        dfs.read_split(split)
        assert dfs.bytes_read == before + split.size_bytes

    def test_as_table_round_trip(self):
        dfs = make_dfs()
        dfs.write_table(make_table(5))
        table = dfs.open("data").as_table()
        assert len(table) == 5
        assert table.schema == SCHEMA
