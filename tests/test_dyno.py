"""Dyno facade: SQL execution, stages, multi-block queries."""

import pytest

from repro.core.dyno import Dyno, infer_schema
from repro.errors import PlanError
from repro.workloads.queries import q1_restaurants, q2, q10
from tests.conftest import assert_same_rows, reference_rows


class TestSqlPath:
    def test_execute_sql_string(self, dyno_factory, tpch_tables):
        dyno = dyno_factory()
        execution = dyno.execute(
            "SELECT n.n_name AS name, r.r_name AS region "
            "FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA'",
            name="asia",
        )
        assert execution.query_name == "asia"
        asia_nations = sum(
            1 for row in tpch_tables["nation"].rows
            if row["n_regionkey"] == 2
        )
        assert len(execution.rows) == asia_nations
        assert all(row["region"] == "ASIA" for row in execution.rows)

    def test_single_table_query(self, dyno_factory, tpch_tables):
        dyno = dyno_factory()
        execution = dyno.execute(
            "SELECT c.c_name AS name FROM customer c "
            "WHERE c.c_mktsegment = 'BUILDING'"
        )
        expected = sum(1 for row in tpch_tables["customer"].rows
                       if row["c_mktsegment"] == "BUILDING")
        assert len(execution.rows) == expected

    def test_group_order_limit_pipeline(self, dyno_factory, tpch_tables):
        dyno = dyno_factory()
        execution = dyno.execute(
            "SELECT o.o_orderpriority AS priority, count(*) AS n "
            "FROM orders o GROUP BY o.o_orderpriority "
            "ORDER BY n DESC LIMIT 3"
        )
        assert len(execution.rows) == 3
        counts = [row["n"] for row in execution.rows]
        assert counts == sorted(counts, reverse=True)
        assert execution.stage_seconds > 0  # the group-by ran as a job

    def test_restaurant_q1(self, dyno_factory, restaurant_tables):
        workload = q1_restaurants()
        dyno = dyno_factory(udfs=workload.udfs, tables=restaurant_tables)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(restaurant_tables, workload.final_spec)
        assert_same_rows(execution.rows, expected)


class TestStages:
    def test_q10_full_pipeline(self, dyno_factory, tpch_tables):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(tpch_tables, workload.final_spec)
        # Limit 20: interpreter sorts by the same key; revenue sets match.
        assert len(execution.rows) == len(expected)
        assert sorted(round(r["revenue"], 2) for r in execution.rows) == \
            sorted(round(r["revenue"], 2) for r in expected)

    def test_timing_properties(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        assert execution.total_seconds == pytest.approx(
            execution.pilot_seconds + execution.optimizer_seconds
            + execution.execution_seconds
        )
        assert execution.plans


class TestMultiBlock:
    def test_q2_matches_manual_two_phase_reference(self, dyno_factory,
                                                   tpch_tables):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute_multi(workload.stages)

        # Reference: run the inner block through the interpreter, register
        # its output, then interpret the outer query.
        from repro.data.table import Table
        from repro.jaql.interpreter import Interpreter
        from repro.jaql.rewrites import push_down_filters
        from repro.jaql.expr import QuerySpec

        inner_spec, inner_name = workload.stages[0]
        inner_rows = Interpreter(tpch_tables).run(
            QuerySpec("i", push_down_filters(inner_spec.root))
        )
        extended = dict(tpch_tables)
        extended[inner_name] = Table(inner_name, infer_schema(inner_rows),
                                     inner_rows)
        outer_spec, _ = workload.stages[1]
        expected = Interpreter(extended).run(
            QuerySpec("o", push_down_filters(outer_spec.root))
        )
        assert_same_rows(execution.rows, expected)
        assert len(execution.block_results) == 2

    def test_multi_requires_final_stage_unnamed(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        with pytest.raises(PlanError):
            dyno.execute_multi([(workload.final_spec, "oops")])

    def test_multi_requires_intermediate_names(self, dyno_factory):
        workload = q10()
        dyno = dyno_factory(udfs=workload.udfs)
        with pytest.raises(PlanError):
            dyno.execute_multi([
                (workload.final_spec, None),
                (workload.final_spec, None),
            ])

    def test_empty_stage_list_rejected(self, dyno_factory):
        with pytest.raises(PlanError):
            dyno_factory().execute_multi([])


class TestInferSchema:
    def test_types_inferred(self):
        schema = infer_schema([
            {"a": 1, "b": "x", "c": 1.5, "d": True},
        ])
        assert schema.type_of("a").kind == "int"
        assert schema.type_of("b").kind == "string"
        assert schema.type_of("c").kind == "float"
        assert schema.type_of("d").kind == "bool"

    def test_first_non_null_wins(self):
        schema = infer_schema([{"a": None}, {"a": 3}])
        assert schema.type_of("a").kind == "int"

    def test_union_of_fields(self):
        schema = infer_schema([{"a": 1}, {"b": 2}])
        assert set(schema.names) == {"a", "b"}


class TestRegisterTable:
    def test_registered_table_is_queryable(self, dyno_factory):
        from repro.data.schema import INT, Schema
        from repro.data.table import Table

        dyno = dyno_factory()
        dyno.register_table("tiny", Table(
            "tiny", Schema.of(k=INT), [{"k": 1}, {"k": 2}]
        ))
        execution = dyno.execute("SELECT t.k AS k FROM tiny t")
        assert sorted(row["k"] for row in execution.rows) == [1, 2]


class TestExplain:
    def test_explain_with_pilots(self, dyno_factory):
        from repro.workloads.queries import q10 as q10_factory

        workload = q10_factory()
        dyno = dyno_factory(udfs=workload.udfs)
        report = dyno.explain(workload.final_spec)
        assert "join block" in report
        assert "pilot runs:" in report
        assert "best plan" in report
        assert "job graph:" in report
        assert "then: groupby stage" in report

    def test_explain_with_oracle(self, dyno_factory):
        from repro.workloads.queries import q10 as q10_factory

        workload = q10_factory()
        dyno = dyno_factory(udfs=workload.udfs)
        report = dyno.explain(workload.final_spec, run_pilots=False)
        assert "oracle" in report
        assert "./" in report  # a join operator was rendered

    def test_explain_does_not_execute_the_plan(self, dyno_factory):
        dyno = dyno_factory()
        report = dyno.explain(
            "SELECT n.n_name AS x FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey",
            run_pilots=False,
        )
        assert report
        # Only base tables live in the DFS: nothing was materialized.
        outputs = [f for f in dyno.dfs.list_files() if ".out" in f]
        assert outputs == []


class TestStatisticsPersistence:
    def test_round_trip_skips_pilots(self, dyno_factory, tmp_path):
        from repro.workloads.queries import q10 as q10_factory

        workload = q10_factory()
        first = dyno_factory(udfs=workload.udfs)
        first.execute(workload.final_spec)
        path = tmp_path / "stats.json"
        first.save_statistics(path)

        second = dyno_factory(udfs=workload.udfs)
        count = second.load_statistics(path)
        assert count > 0
        execution = second.execute(workload.final_spec)
        # Every base-leaf signature was found: no pilot jobs ran.
        assert execution.pilot_seconds == 0.0
