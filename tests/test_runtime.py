"""Cluster runtime: job execution, counters, builds, gates, batches."""

import pytest

from repro.cluster.costmodel import ClusterCostModel, TaskWork
from repro.cluster.counters import Counters
from repro.cluster.job import BroadcastBuild, MapReduceJob, TaskContext
from repro.cluster.runtime import ClusterRuntime
from repro.config import DEFAULT_CONFIG, ClusterConfig, DynoConfig
from repro.data.schema import INT, STRING, Schema
from repro.errors import (
    BroadcastBuildOverflowError,
    JobError,
    TaskRetriesExhaustedError,
)
from repro.storage.dfs import DistributedFileSystem

SCHEMA = Schema.of(key=INT, value=STRING)


def small_config() -> DynoConfig:
    return DynoConfig(cluster=ClusterConfig(block_size_bytes=256,
                                            task_memory_bytes=4096))


def make_runtime(rows=100, config=None):
    config = config or small_config()
    dfs = DistributedFileSystem(config.cluster.block_size_bytes)
    dfs.write_rows(
        "input", SCHEMA,
        [{"key": i % 10, "value": f"v{i}"} for i in range(rows)],
    )
    return ClusterRuntime(dfs, config)


def identity_mapper(context: TaskContext, source: str, rows) -> None:
    for row in rows:
        context.emit(None, row)


def keyed_mapper(context: TaskContext, source: str, rows) -> None:
    for row in rows:
        context.emit(row["key"], row)


def counting_reducer(context: TaskContext, key, values) -> None:
    context.emit(None, {"key": key, "count": len(values)})


class TestMapOnly:
    def test_output_matches_input(self):
        runtime = make_runtime(50)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job)
        assert result.output_rows == 50
        assert runtime.dfs.open("out").row_count == 50

    def test_counters(self):
        runtime = make_runtime(50)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job)
        counters = result.counters
        assert counters.get("map", Counters.MAP_INPUT_RECORDS) == 50
        assert counters.get("map", Counters.MAP_OUTPUT_RECORDS) == 50
        assert counters.get("output", Counters.OUTPUT_RECORDS) == 50
        assert counters.get("map", Counters.MAP_INPUT_BYTES) == \
            runtime.dfs.file_size("input")

    def test_one_map_task_per_split(self):
        runtime = make_runtime(100)
        splits = len(runtime.dfs.file_splits("input"))
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job)
        assert len(result.map_task_seconds) == splits
        assert result.splits_processed == splits

    def test_filtering_mapper(self):
        runtime = make_runtime(100)

        def mapper(context, source, rows):
            for row in rows:
                if row["key"] == 0:
                    context.emit(None, row)

        job = MapReduceJob("j", ["input"], mapper, "out", SCHEMA)
        assert runtime.execute(job).output_rows == 10

    def test_clock_advances(self):
        runtime = make_runtime(50)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        runtime.execute(job)
        assert runtime.clock_seconds > 0
        assert runtime.jobs_executed == 1


class TestMapReduce:
    def test_group_counts(self):
        runtime = make_runtime(100)
        job = MapReduceJob(
            "j", ["input"], keyed_mapper, "out", SCHEMA,
            reducer=counting_reducer, num_reducers=3,
        )
        result = runtime.execute(job)
        rows = runtime.dfs.read_all("out")
        assert result.output_rows == 10
        assert sum(row["count"] for row in rows) == 100
        assert {row["key"] for row in rows} == set(range(10))

    def test_reduce_task_per_partition(self):
        runtime = make_runtime(100)
        job = MapReduceJob(
            "j", ["input"], keyed_mapper, "out", SCHEMA,
            reducer=counting_reducer, num_reducers=4,
        )
        result = runtime.execute(job)
        assert len(result.reduce_task_seconds) == 4
        assert result.counters.get(
            "reduce", Counters.REDUCE_INPUT_RECORDS) == 100

    def test_reducer_requires_reducer_count(self):
        with pytest.raises(JobError):
            MapReduceJob("j", ["input"], keyed_mapper, "out", SCHEMA,
                         reducer=counting_reducer, num_reducers=0)

    def test_map_only_must_not_declare_reducers(self):
        with pytest.raises(JobError):
            MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA,
                         num_reducers=2)

    def test_no_inputs_rejected(self):
        with pytest.raises(JobError):
            MapReduceJob("j", [], identity_mapper, "out", SCHEMA)

    def test_list_keys_are_groupable(self):
        runtime = make_runtime(20)

        def mapper(context, source, rows):
            for row in rows:
                context.emit([row["key"], "fixed"], row)

        job = MapReduceJob("j", ["input"], mapper, "out", SCHEMA,
                           reducer=counting_reducer, num_reducers=2)
        result = runtime.execute(job)
        assert result.output_rows == 10


class TestBroadcastBuilds:
    def _build_job(self, runtime, loader=None):
        build = BroadcastBuild(
            "input",
            loader or (lambda rows: list(rows)),
            description="whole input",
        )

        def mapper(context, source, rows):
            table = {r["key"] for r in build.built_rows()}
            for row in rows:
                if row["key"] in table:
                    context.emit(None, row)

        return MapReduceJob("j", ["input"], mapper, "out", SCHEMA,
                            broadcast_builds=[build]), build

    def test_build_loaded_and_usable(self):
        runtime = make_runtime(30)
        job, build = self._build_job(runtime)
        result = runtime.execute(job)
        assert result.output_rows == 30
        assert build.loaded_bytes > 0
        assert result.counters.get("map", Counters.BROADCAST_BYTES) > 0

    def test_loader_filters_before_memory_check(self):
        config = small_config()
        runtime = make_runtime(2000, config)  # raw input >> task memory

        def selective(rows):
            return [row for row in rows if row["key"] == 0][:3]

        job, build = self._build_job(runtime, selective)
        result = runtime.execute(job)  # must not overflow
        assert len(build.built_rows()) == 3
        assert result.output_rows == 200

    def test_overflow_aborts_job(self):
        runtime = make_runtime(2000)  # ~2000 rows > 4096-byte budget
        job, _ = self._build_job(runtime)
        with pytest.raises(BroadcastBuildOverflowError) as excinfo:
            runtime.execute(job)
        assert excinfo.value.build_bytes > excinfo.value.memory_budget
        assert excinfo.value.job_name == "j"

    def test_unloaded_build_rejects_access(self):
        build = BroadcastBuild("input", lambda rows: rows)
        with pytest.raises(JobError):
            build.built_rows()


class TestGates:
    def test_gate_limits_splits(self):
        runtime = make_runtime(200)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job, gate=lambda started: started < 2)
        assert result.splits_processed == 2
        assert result.splits_total > 2
        assert 0 < result.scanned_fraction < 1

    def test_gate_true_scans_everything(self):
        runtime = make_runtime(50)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        result = runtime.execute(job, gate=lambda started: True)
        assert result.scanned_fraction == 1.0


class TestBatches:
    def test_batch_with_dependencies_runs_in_order(self):
        runtime = make_runtime(30)

        def consumer_mapper(context, source, rows):
            for row in rows:
                context.emit(None, {"key": row["key"], "value": "seen"})

        first = MapReduceJob("first", ["input"], identity_mapper,
                             "mid", SCHEMA)
        second = MapReduceJob("second", ["mid"], consumer_mapper,
                              "out", SCHEMA)
        batch = runtime.execute_batch(
            [second, first], dependencies={"second": ["first"]}
        )
        assert batch["second"].output_rows == 30
        assert (batch.results["second"].timeline.ready_time
                >= batch.results["first"].timeline.finish_time - 1e-9)

    def test_dependency_cycle_rejected(self):
        runtime = make_runtime(10)
        a = MapReduceJob("a", ["input"], identity_mapper, "oa", SCHEMA)
        b = MapReduceJob("b", ["input"], identity_mapper, "ob", SCHEMA)
        with pytest.raises(JobError):
            runtime.execute_batch([a, b],
                                  dependencies={"a": ["b"], "b": ["a"]})

    def test_duplicate_names_rejected(self):
        runtime = make_runtime(10)
        a = MapReduceJob("a", ["input"], identity_mapper, "oa", SCHEMA)
        b = MapReduceJob("a", ["input"], identity_mapper, "ob", SCHEMA)
        with pytest.raises(JobError):
            runtime.execute_batch([a, b])

    def test_empty_batch(self):
        runtime = make_runtime(10)
        assert runtime.execute_batch([]).makespan == 0.0

    def test_parallel_batch_faster_than_serial(self):
        config = small_config()
        runtime_a = make_runtime(500, config)
        runtime_b = make_runtime(500, config)
        jobs = lambda: [  # noqa: E731 - local factory
            MapReduceJob(f"j{i}", ["input"], identity_mapper,
                         f"out{i}", SCHEMA)
            for i in range(3)
        ]
        parallel = runtime_a.execute_batch(jobs()).makespan
        serial = 0.0
        for job in jobs():
            serial += runtime_b.execute(job).timeline.elapsed
        assert parallel < serial


class TestStatsCollection:
    def test_stats_collected_on_output(self):
        runtime = make_runtime(100)
        job = MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA,
                           stats_columns=["key"])
        result = runtime.execute(job)
        stats = result.collected_stats
        assert stats is not None
        assert stats.row_count == 100
        assert stats.column("key").distinct_values == pytest.approx(10)
        assert stats.column("key").min_value == 0
        assert stats.column("key").max_value == 9

    def test_stats_collected_after_reduce(self):
        runtime = make_runtime(100)
        job = MapReduceJob(
            "j", ["input"], keyed_mapper, "out", SCHEMA,
            reducer=counting_reducer, num_reducers=3,
            stats_columns=["count"],
        )
        result = runtime.execute(job)
        assert result.collected_stats.row_count == 10

    def test_stats_make_tasks_slower(self):
        plain_runtime = make_runtime(500)
        stats_runtime = make_runtime(500)
        plain = plain_runtime.execute(
            MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA)
        )
        with_stats = stats_runtime.execute(
            MapReduceJob("j", ["input"], identity_mapper, "out", SCHEMA,
                         stats_columns=["key"])
        )
        assert sum(with_stats.map_task_seconds) > sum(plain.map_task_seconds)


class TestCostModel:
    def test_map_task_seconds_components(self):
        model = ClusterCostModel(DEFAULT_CONFIG.cluster)
        work = TaskWork(input_bytes=1024, input_records=10,
                        output_bytes=512, output_records=5)
        map_only = model.map_task_seconds(work, writes_to_dfs=True)
        shuffled = model.map_task_seconds(work, writes_to_dfs=False)
        assert map_only > shuffled  # output write charged only when final

    def test_reduce_task_seconds_positive(self):
        model = ClusterCostModel(DEFAULT_CONFIG.cluster)
        work = TaskWork(shuffle_bytes=2048, input_records=10,
                        output_bytes=100)
        assert model.reduce_task_seconds(work) > 0

    def test_hive_build_amortized_per_node(self):
        model = ClusterCostModel(DEFAULT_CONFIG.cluster)
        jaql = model.per_task_build_seconds(10000, 100, 1000, "jaql")
        hive = model.per_task_build_seconds(10000, 100, 1000, "hive")
        assert hive < jaql
        # With fewer tasks than nodes, Hive degenerates to the full cost.
        assert model.per_task_build_seconds(10000, 100, 1, "hive") == \
            pytest.approx(jaql)

    def test_charge_cpu_rejects_negative(self):
        context = TaskContext()
        with pytest.raises(JobError):
            context.charge_cpu(-1.0)


class TestFailureInjection:
    def _run(self, failure_rate, max_task_attempts=64):
        # A generous attempt budget: these tests exercise the *time
        # inflation* of retries; exhaustion semantics are tested below.
        config = DynoConfig(cluster=ClusterConfig(
            block_size_bytes=256, task_memory_bytes=4096,
            task_failure_rate=failure_rate,
            max_task_attempts=max_task_attempts,
        ))
        runtime = make_runtime(400, config)
        job = MapReduceJob("j", ["input"], keyed_mapper, "out", SCHEMA,
                           reducer=counting_reducer, num_reducers=3)
        return runtime.execute(job)

    def test_failures_slow_execution_only(self):
        clean = self._run(0.0)
        flaky = self._run(0.4)
        assert sum(flaky.map_task_seconds) > sum(clean.map_task_seconds)
        assert flaky.output_rows == clean.output_rows

    def test_deterministic_per_job(self):
        first = self._run(0.3)
        second = self._run(0.3)
        assert first.map_task_seconds == second.map_task_seconds

    def test_retries_compound_with_rate(self):
        low = self._run(0.1)
        high = self._run(0.6)
        assert sum(high.map_task_seconds) > sum(low.map_task_seconds)

    def test_certain_failure_exhausts_attempts(self):
        """Regression: rate=1.0 used to spin forever; now the attempt
        budget is clamped and the job fails fast."""
        with pytest.raises(TaskRetriesExhaustedError) as excinfo:
            self._run(1.0, max_task_attempts=4)
        assert excinfo.value.job_name == "j"
        assert excinfo.value.attempts == 4

    def test_exhaustion_respects_configured_budget(self):
        with pytest.raises(TaskRetriesExhaustedError) as excinfo:
            self._run(1.0, max_task_attempts=7)
        assert excinfo.value.attempts == 7
