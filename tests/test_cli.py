"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workload_and_sql_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "Q10",
                                       "--sql", "SELECT 1"])

    def test_paper_sf_choices(self):
        args = build_parser().parse_args(["--workload", "Q10",
                                          "--paper-sf", "100"])
        assert args.paper_sf == 100

    @pytest.mark.parametrize("value", ["0", "-1", "-0.5"])
    def test_scale_factor_must_be_positive(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "Q10",
                                       "--scale-factor", value])
        assert "must be > 0" in capsys.readouterr().err

    def test_scale_factor_must_be_numeric(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "Q10",
                                       "--scale-factor", "tiny"])
        assert "not a number: 'tiny'" in capsys.readouterr().err

    def test_limit_rejects_negative(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "Q10",
                                       "--limit", "-5"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_limit_rejects_non_integer(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "Q10",
                                       "--limit", "ten"])
        assert "not an integer: 'ten'" in capsys.readouterr().err

    def test_limit_zero_is_allowed(self):
        args = build_parser().parse_args(["--workload", "Q10",
                                          "--limit", "0"])
        assert args.limit == 0


class TestExecution:
    def test_workload_run(self):
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05")
        assert code == 0
        assert "result row(s)" in output
        assert "pilot runs" in output

    def test_parallel_flag_matches_serial_output(self):
        code, serial = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05")
        parallel_code, parallel = run_cli("--workload", "Q10",
                                          "--scale-factor", "0.05",
                                          "--parallel")
        assert code == parallel_code == 0
        assert parallel == serial

    def test_sql_run_with_plans(self):
        code, output = run_cli(
            "--sql",
            "SELECT n.n_name AS name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA'",
            "--scale-factor", "0.05", "--show-plans",
        )
        assert code == 0
        assert "iteration 0" in output

    def test_explain_only(self):
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05", "--explain")
        assert code == 0
        assert "best plan" in output
        assert "result row(s)" not in output

    def test_multi_stage_workload(self):
        code, output = run_cli("--workload", "Q2",
                               "--scale-factor", "0.05", "--mode", "simple")
        assert code == 0
        assert "result row(s)" in output

    def test_sql_file(self, tmp_path):
        path = tmp_path / "query.sql"
        path.write_text(
            "SELECT r.r_name AS name FROM region r WHERE r.r_name = 'ASIA'"
        )
        code, output = run_cli("--sql-file", str(path),
                               "--scale-factor", "0.05")
        assert code == 0
        assert "ASIA" in output

    def test_stats_round_trip(self, tmp_path):
        stats = tmp_path / "stats.json"
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--save-stats", str(stats))
        assert code == 0 and stats.exists()
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--load-stats", str(stats))
        assert code == 0
        assert "loaded" in output
        assert "pilot runs            0.0 s" in output

    def test_error_reported_cleanly(self):
        code, output = run_cli(
            "--sql", "SELECT a.x FROM t1 a", "--scale-factor", "0.05"
        )
        assert code == 1
        assert "error:" in output

    def test_hive_backend_flag(self):
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--backend", "hive")
        assert code == 0


class TestFaultPlanFlag:
    def _plan_file(self, tmp_path):
        from repro.cluster.faults import FaultPlan

        path = tmp_path / "plan.json"
        path.write_text(FaultPlan(seed=67, name="cli-chaos",
                                  task_failure_rate=0.15,
                                  job_failure_rate=0.3,
                                  node_loss_rate=0.5, max_node_losses=1,
                                  straggler_rate=0.2).to_json())
        return path

    def test_faulted_run_matches_fault_free_rows(self, tmp_path):
        code, clean = run_cli("--workload", "Q10", "--scale-factor", "0.05")
        faulted_code, faulted = run_cli(
            "--workload", "Q10", "--scale-factor", "0.05",
            "--fault-plan", str(self._plan_file(tmp_path)))
        assert code == faulted_code == 0
        assert "armed fault plan cli-chaos (seed 67)" in faulted
        assert "fault injection:" in faulted
        # Identical result rows; only the simulated-time report may move.
        rows = [line for line in clean.splitlines()
                if line.startswith("  {")]
        faulted_rows = [line for line in faulted.splitlines()
                        if line.startswith("  {")]
        assert rows and rows == faulted_rows

    def test_invalid_plan_file_reports_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"seed": 1, "task_failure_rte": 0.1}')
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--fault-plan", str(path))
        assert code == 1
        assert "error: cannot load fault plan" in output
        assert "task_failure_rte" in output

    def test_missing_plan_file_reports_cleanly(self, tmp_path):
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--fault-plan", str(tmp_path / "nope.json"))
        assert code == 1
        assert "error: cannot load fault plan" in output


class TestObservabilityFlags:
    def test_trace_writes_parseable_json_lines(self, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--trace", str(trace))
        assert code == 0
        assert f"wrote trace to {trace}" in output
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert records
        names = {record["name"] for record in records}
        # The full DYNOPT lifecycle shows up in one trace.
        assert {"query", "pilot", "optimize", "execute",
                "job", "estimate"} <= names
        # seq is dense and deterministic.
        assert [r["seq"] for r in records] == list(range(len(records)))

    def test_metrics_summary_written(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05",
                               "--metrics", str(path))
        assert code == 0
        summary = json.loads(path.read_text())
        assert summary["counters"]["queries.executed"] == 1
        assert summary["counters"]["jobs.executed"] >= 1
        assert "qerror.rows" in summary["observations"]
        assert "query.driver_wall_s" in summary["observations"]

    def test_profile_prints_breakdown(self):
        code, output = run_cli("--workload", "Q10",
                               "--scale-factor", "0.05", "--profile")
        assert code == 0
        assert "profile:" in output
        assert "driver wall-clock:" in output
        assert "q-error" in output
        assert "queries.executed" in output

    def test_trace_closed_on_query_error(self, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        code, output = run_cli("--sql", "SELECT a.x FROM t1 a",
                               "--scale-factor", "0.05",
                               "--trace", str(trace))
        assert code == 1
        # The sink is flushed and every written line still parses.
        for line in trace.read_text().splitlines():
            json.loads(line)
