"""Property tests for heavy-hitter detection over seeded skewed draws.

100 seeded Zipf/hot-key datasets are profiled through the same
:class:`~repro.stats.statistics.RunningColumn` accumulator the pilot
runs use, and the frozen ``heavy_hitters`` profile is checked against
ground truth computed directly from the data:

* **precision**: every reported key's fraction is *exactly* its
  empirical frequency (the count table is exact until its budget);
* **recall**: every key at or above the optimizer's skew threshold is
  reported (the injected hot keys always are);
* **determinism**: per-value and bulk accumulation, and repeated
  generation under one seed, agree bit-for-bit;
* **no false positives**: uniform data never produces a key above the
  skew threshold, and all-unique data produces no heavy hitters at all.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.config import DEFAULT_CONFIG
from repro.stats.statistics import HEAVY_HITTER_K, RunningColumn
from repro.workloads.skewed import (
    CATEGORIES,
    COUNTRIES,
    SEGMENTS,
    generate_skewed,
)

SEEDS = range(100)
#: Per-dataset sizes: small enough that 100 draws stay fast, large
#: enough that sampling noise cannot push an injected hot key (expected
#: fraction 0.175) below the 0.1 detection threshold.
USERS = 500
CLICKS = 1500
THRESHOLD = DEFAULT_CONFIG.optimizer.skew_key_fraction


def _click_keys(seed: int) -> list[int]:
    tables = generate_skewed(seed=seed, user_count=USERS,
                             click_count=CLICKS, page_count=10)
    return [row["user_id"] for row in tables["clicks"].rows]


def _profile(values: list) -> tuple:
    column = RunningColumn("user_id")
    for value in values:
        column.update(value)
    return column.freeze().heavy_hitters


def _hot_ids(seed: int) -> list[int]:
    """The generator's injected hot keys, reproduced from its RNG walk."""
    rng = random.Random(seed)
    for _ in range(USERS):  # users consume choice+choice+randint
        rng.choice(COUNTRIES), rng.choice(SEGMENTS), rng.randint(0, 100)
    for _ in range(10):  # pages consume choice+randint
        rng.choice(CATEGORIES), rng.randint(1, 100)
    ids = list(range(1, USERS + 1))
    rng.shuffle(ids)
    return ids[:2]


def test_detection_matches_ground_truth_on_100_zipf_draws():
    for seed in SEEDS:
        keys = _click_keys(seed)
        truth = Counter(keys)
        hitters = _profile(keys)

        detected = {value for (value, fraction) in hitters
                    if fraction >= THRESHOLD}
        expected = {value for value, count in truth.items()
                    if count / len(keys) >= THRESHOLD}
        # Exact counting: precision and recall are both 1.0 at the
        # optimizer's threshold (the >=threshold keys always fit in K).
        assert detected == expected, f"seed {seed}"

        # Reported fractions are the exact empirical frequencies.
        for value, fraction in hitters:
            assert fraction == truth[value] / len(keys), f"seed {seed}"


def test_injected_hot_keys_always_detected():
    for seed in SEEDS:
        keys = _click_keys(seed)
        detected = {value for (value, fraction) in _profile(keys)
                    if fraction >= THRESHOLD}
        missing = set(_hot_ids(seed)) - detected
        assert not missing, f"seed {seed}: hot keys {missing} undetected"


def test_profile_shape_and_order():
    for seed in SEEDS:
        hitters = _profile(_click_keys(seed))
        assert 0 < len(hitters) <= HEAVY_HITTER_K
        fractions = [fraction for (_, fraction) in hitters]
        assert fractions == sorted(fractions, reverse=True), f"seed {seed}"
        assert all(fraction > 1 / CLICKS for fraction in fractions)


def test_determinism_across_accumulation_paths():
    for seed in (0, 7, 2014):
        keys = _click_keys(seed)
        assert keys == _click_keys(seed)  # generator is seed-pure

        serial = _profile(keys)
        bulk = RunningColumn("user_id")
        bulk.update_many(keys)  # the columnar batch path
        assert bulk.freeze().heavy_hitters == serial
        assert _profile(keys) == serial  # and re-profiling agrees


def test_uniform_data_has_no_false_heavy_hitters():
    for seed in SEEDS:
        rng = random.Random(seed)
        values = [rng.randrange(USERS) for _ in range(CLICKS)]
        hitters = _profile(values)
        for value, fraction in hitters:
            assert fraction < THRESHOLD, (
                f"seed {seed}: uniform value {value!r} reported at "
                f"{fraction:.3f} >= {THRESHOLD}"
            )


def test_unique_values_yield_no_heavy_hitters():
    assert _profile(list(range(5000))) == ()


def test_count_table_overflow_disables_detection():
    column = RunningColumn("wide")
    column.update_many(list(range(RunningColumn.MAX_EXACT_VALUES + 1)))
    column.update_many([0] * 1000)  # a genuine hot key, seen too late
    assert column.freeze().heavy_hitters == ()
