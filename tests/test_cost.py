"""Join cost formulas and the broadcast-chain rule."""

import pytest

from repro.config import OptimizerConfig
from repro.jaql.blocks import SOURCE_TABLE, BlockLeaf
from repro.jaql.expr import JoinCondition, ref
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.plans import (
    BROADCAST,
    REPARTITION,
    PhysJoin,
    PhysLeaf,
    pipeline_build_bytes,
    summarize_plan,
)

CONFIG = OptimizerConfig(max_broadcast_bytes=1000, cjob=0.0)


def leaf(alias, rows=100.0, size=1000.0, table="t"):
    block_leaf = BlockLeaf(frozenset((alias,)), SOURCE_TABLE, table)
    return PhysLeaf(aliases=frozenset((alias,)), est_rows=rows,
                    est_bytes=size, cost=0.0, leaf=block_leaf)


def join(left, right, method=BROADCAST, rows=10.0, size=100.0,
         chained=False, cost=0.0):
    condition = JoinCondition(
        ref(sorted(left.aliases)[0], "k"), ref(sorted(right.aliases)[0], "k")
    )
    return PhysJoin(
        aliases=left.aliases | right.aliases, est_rows=rows, est_bytes=size,
        cost=cost, method=method, left=left, right=right,
        conditions=(condition,), chained=chained,
    )


class TestFormulas:
    def test_repartition_cost(self):
        model = JoinCostModel(CONFIG)
        expected = CONFIG.crep * (100 + 50) + CONFIG.cout * 30
        assert model.repartition_cost(100, 50, 30) == pytest.approx(expected)

    def test_broadcast_cost(self):
        model = JoinCostModel(CONFIG)
        expected = (CONFIG.cprobe * 100 + CONFIG.cbuild * 50
                    + CONFIG.cout * 30)
        assert model.broadcast_cost(100, 50, 30) == pytest.approx(expected)

    def test_broadcast_cheaper_when_build_fits(self):
        """The paper's crep >> cprobe ordering."""
        model = JoinCostModel(CONFIG)
        assert (model.broadcast_cost(1000, 100, 50)
                < model.repartition_cost(1000, 100, 50))

    def test_job_constant_added(self):
        with_job = OptimizerConfig(cjob=500.0)
        model = JoinCostModel(with_job)
        assert model.repartition_cost(0, 0, 0) == pytest.approx(500.0)

    def test_fits_in_memory_uses_safety_factor(self):
        tight = OptimizerConfig(max_broadcast_bytes=1000,
                                broadcast_safety_factor=2.0)
        model = JoinCostModel(tight)
        assert model.fits_in_memory(499)
        assert not model.fits_in_memory(501)


class TestChainRule:
    def test_consecutive_broadcasts_chain_when_fitting(self):
        # ((a ./b b) ./b c): builds 300 + 300 <= 1000 -> chain.
        inner = join(leaf("a", size=5000), leaf("b", size=300))
        outer = join(inner, leaf("c", size=300))
        marked = JoinCostModel(CONFIG).apply_chain_rule(outer)
        summary = summarize_plan(marked)
        assert summary.chained_joins == 1

    def test_chain_breaks_on_budget(self):
        inner = join(leaf("a", size=5000), leaf("b", size=600))
        outer = join(inner, leaf("c", size=600))  # 600+600 > 1000
        marked = JoinCostModel(CONFIG).apply_chain_rule(outer)
        assert summarize_plan(marked).chained_joins == 0

    def test_three_join_chain_budget_is_cumulative(self):
        j1 = join(leaf("a", size=5000), leaf("b", size=400))
        j2 = join(j1, leaf("c", size=400))
        j3 = join(j2, leaf("d", size=400))  # 1200 > 1000: must break here
        marked = JoinCostModel(CONFIG).apply_chain_rule(j3)
        summary = summarize_plan(marked)
        assert summary.chained_joins == 1  # only j2 chains with j1

    def test_repartition_breaks_chain(self):
        inner = join(leaf("a", size=5000), leaf("b", size=100),
                     method=REPARTITION)
        outer = join(inner, leaf("c", size=100))
        marked = JoinCostModel(CONFIG).apply_chain_rule(outer)
        assert summarize_plan(marked).chained_joins == 0

    def test_chained_cost_is_lower(self):
        model = JoinCostModel(CONFIG)
        inner = join(leaf("a", size=5000), leaf("b", size=300),
                     rows=50, size=4000)
        outer = join(inner, leaf("c", size=300), rows=10, size=500)
        chained_plan = model.apply_chain_rule(outer)

        # Force-unchain by separating with a huge budget violation.
        no_chain_config = OptimizerConfig(max_broadcast_bytes=1000,
                                          cjob=0.0)
        unchained = PhysJoin(
            aliases=outer.aliases, est_rows=10, est_bytes=500, cost=0.0,
            method=BROADCAST, left=inner, right=leaf("c", size=2000),
            conditions=outer.conditions,
        )
        unchained_plan = JoinCostModel(no_chain_config)._recost(unchained)[0]
        assert chained_plan.cost < unchained_plan.cost

    def test_chain_formula_matches_paper(self):
        """C(chain) = cprobe|R| + cbuild sum|Si| + cout|final| (+cjob)."""
        model = JoinCostModel(CONFIG)
        inner = join(leaf("a", size=5000), leaf("b", size=300),
                     rows=50, size=4000)
        outer = join(inner, leaf("c", size=300), rows=10, size=500)
        plan = model.apply_chain_rule(outer)
        expected = (CONFIG.cprobe * 5000
                    + CONFIG.cbuild * (300 + 300)
                    + CONFIG.cout * 500)
        assert plan.cost == pytest.approx(expected)

    def test_recost_idempotent(self):
        model = JoinCostModel(CONFIG)
        inner = join(leaf("a", size=5000), leaf("b", size=300))
        outer = join(inner, leaf("c", size=300))
        once = model.apply_chain_rule(outer)
        twice = model.apply_chain_rule(once)
        assert once.cost == pytest.approx(twice.cost)
        assert summarize_plan(once).chained_joins == \
            summarize_plan(twice).chained_joins


class TestPipelineBuildBytes:
    def test_leaf_is_zero(self):
        assert pipeline_build_bytes(leaf("a")) == 0.0

    def test_unchained_broadcast_counts_own_build(self):
        j = join(leaf("a"), leaf("b", size=300))
        assert pipeline_build_bytes(j) == 300.0

    def test_chained_accumulates(self):
        inner = join(leaf("a"), leaf("b", size=300))
        outer = join(inner, leaf("c", size=200), chained=True)
        assert pipeline_build_bytes(outer) == 500.0

    def test_repartition_is_zero(self):
        j = join(leaf("a"), leaf("b"), method=REPARTITION)
        assert pipeline_build_bytes(j) == 0.0
