"""Workload definitions: block shapes match the paper's descriptions."""

import pytest

from repro.workloads.queries import (
    TPCH_WORKLOADS,
    q1_restaurants,
    q2,
    q7,
    q8_prime,
    q9_prime,
    q10,
)


def block_of(dyno_factory, workload, stage=-1):
    dyno = dyno_factory(udfs=workload.udfs)
    spec = workload.stages[stage][0]
    return dyno.prepare(spec).block


class TestShapes:
    def test_q10_is_4_way(self, dyno_factory):
        block = block_of(dyno_factory, q10())
        assert len(block.leaves) == 4
        assert len(block.conditions) == 3

    def test_q7_has_nation_self_join_and_disjunction(self, dyno_factory):
        block = block_of(dyno_factory, q7())
        assert len(block.leaves) == 6
        nations = [leaf for leaf in block.leaves
                   if leaf.source_name == "nation"]
        assert len(nations) == 2
        assert len(block.non_local_predicates) == 1

    def test_q8_is_8_leaf_with_udf_and_correlation(self, dyno_factory):
        block = block_of(dyno_factory, q8_prime())
        assert len(block.leaves) == 8
        orders = block.leaf_for("o")
        # date range (2) + correlated zone/region pair (2).
        assert len(orders.predicates) == 4
        assert any(pred.is_udf for pred in block.non_local_predicates)

    def test_q9_star_with_dimension_udfs(self, dyno_factory):
        block = block_of(dyno_factory, q9_prime())
        assert len(block.leaves) == 6
        for alias in ("p", "ps", "o"):
            assert any(pred.is_udf
                       for pred in block.leaf_for(alias).predicates)
        # lineitem is the star's hub: it touches most conditions.
        hub_conditions = [
            c for c in block.conditions
            if "l" in {c.left.alias, c.right.alias}
        ]
        assert len(hub_conditions) == 5

    def test_q2_has_two_stages(self):
        workload = q2()
        assert len(workload.stages) == 2
        assert workload.stages[0][1] == "q2mincost"
        assert workload.stages[1][1] is None

    def test_q2_outer_block_is_6_leaf(self, dyno_factory):
        workload = q2()
        dyno = dyno_factory(udfs=workload.udfs)
        # The outer stage references the intermediate table by name; it
        # need not exist for block extraction.
        block = dyno.prepare(workload.stages[1][0]).block
        assert len(block.leaves) == 6

    def test_q1_restaurants(self, dyno_factory, restaurant_tables):
        workload = q1_restaurants()
        dyno = dyno_factory(udfs=workload.udfs, tables=restaurant_tables)
        block = dyno.prepare(workload.final_spec).block
        assert len(block.leaves) == 3
        rs = block.leaf_for("rs")
        assert len(rs.predicates) == 2  # correlated zip+state
        assert any(p.is_udf for p in block.leaf_for("rv").predicates)
        assert len(block.non_local_predicates) == 1  # checkid over rv x t


class TestRegistry:
    def test_expected_names(self):
        assert set(TPCH_WORKLOADS) == {"Q2", "Q7", "Q8'", "Q9'", "Q10"}

    def test_factories_produce_fresh_instances(self):
        first = TPCH_WORKLOADS["Q10"]()
        second = TPCH_WORKLOADS["Q10"]()
        assert first is not second

    def test_q9_selectivity_parameter(self):
        low = q9_prime(udf_selectivity=0.001)
        udf = low.udfs.get("q9part")
        assert "0.001" in udf.version

    def test_tables_declared(self):
        for factory in TPCH_WORKLOADS.values():
            workload = factory()
            assert workload.tables


class TestExtraWorkloads:
    def test_q3_runs_end_to_end(self, dyno_factory, tpch_tables):
        from repro.workloads.queries import q3
        from tests.conftest import reference_rows

        workload = q3()
        dyno = dyno_factory(udfs=workload.udfs)
        execution = dyno.execute(workload.final_spec)
        expected = reference_rows(tpch_tables, workload.final_spec)
        assert len(execution.rows) == len(expected)

    def test_q5_rejected_like_the_paper(self, dyno_factory):
        from repro.errors import UnsupportedQueryError
        from repro.workloads.queries import q5_cyclic

        workload = q5_cyclic()
        dyno = dyno_factory(udfs=workload.udfs)
        with pytest.raises(UnsupportedQueryError):
            dyno.execute(workload.final_spec)

    def test_q5_block_really_is_cyclic(self, dyno_factory):
        from repro.optimizer.joingraph import JoinGraph
        from repro.workloads.queries import q5_cyclic

        workload = q5_cyclic()
        dyno = dyno_factory(udfs=workload.udfs)
        block = dyno.prepare(workload.final_spec).block
        graph = JoinGraph.build(block)
        assert graph._has_cycle()
