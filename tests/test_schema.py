"""Schema layer: field types, nested paths, size estimation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.schema import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    FieldType,
    Path,
    Schema,
    estimate_value_size,
)
from repro.errors import SchemaError


class TestFieldType:
    def test_atomic_validation(self):
        assert INT.validate(3)
        assert not INT.validate(3.5)
        assert not INT.validate(True)  # bools are not ints here
        assert FLOAT.validate(3)
        assert FLOAT.validate(3.5)
        assert STRING.validate("x")
        assert not STRING.validate(3)
        assert BOOL.validate(True)
        assert not BOOL.validate(1)

    def test_none_is_always_valid(self):
        for ftype in (INT, FLOAT, STRING, BOOL):
            assert ftype.validate(None)

    def test_array_type(self):
        arr = FieldType.array(INT)
        assert arr.validate([1, 2, 3])
        assert arr.validate([])
        assert not arr.validate([1, "x"])
        assert not arr.validate("not a list")

    def test_struct_type(self):
        struct = FieldType.struct(zip=INT, state=STRING)
        assert struct.validate({"zip": 94301, "state": "CA"})
        assert struct.validate({"zip": 94301})  # missing member ok
        assert not struct.validate({"zip": "94301"})
        assert not struct.validate({"unknown": 1})

    def test_nested_array_of_struct(self):
        addr = FieldType.array(FieldType.struct(zip=INT, state=STRING))
        assert addr.validate([{"zip": 1, "state": "CA"}, {"zip": 2}])
        assert not addr.validate([{"zip": "bad"}])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("blob")

    def test_array_requires_element(self):
        with pytest.raises(SchemaError):
            FieldType("array")

    def test_struct_requires_fields(self):
        with pytest.raises(SchemaError):
            FieldType("struct")

    def test_describe_round_trip_shape(self):
        addr = FieldType.array(FieldType.struct(zip=INT))
        assert addr.describe() == "array<struct{zip: int}>"

    def test_estimated_size_string_is_length(self):
        assert STRING.estimated_size("hello") == 5
        assert STRING.estimated_size("") == 1

    def test_estimated_size_none_is_one(self):
        assert INT.estimated_size(None) == 1


class TestPath:
    def test_parse_simple(self):
        path = Path.parse("name")
        assert path.steps == ("name",)
        assert path.root == "name"

    def test_parse_nested(self):
        path = Path.parse("addr[0].zip")
        assert path.steps == ("addr", 0, "zip")

    def test_parse_deep(self):
        path = Path.parse("a.b[2].c[10]")
        assert path.steps == ("a", "b", 2, "c", 10)

    def test_describe_round_trips(self):
        for text in ("a", "a.b", "addr[0].zip", "a[1][2].b"):
            assert Path.parse(text).describe() == text

    def test_parse_rejects_leading_index(self):
        with pytest.raises(SchemaError):
            Path.parse("[0].zip")

    def test_parse_rejects_trailing_dot(self):
        with pytest.raises(SchemaError):
            Path.parse("a.")

    def test_parse_rejects_empty(self):
        with pytest.raises(SchemaError):
            Path.parse("")

    def test_evaluate_navigates(self):
        row = {"addr": [{"zip": 94301, "state": "CA"}]}
        assert Path.parse("addr[0].zip").evaluate(row) == 94301
        assert Path.parse("addr[0].state").evaluate(row) == "CA"

    def test_evaluate_missing_yields_none(self):
        row = {"addr": [{"zip": 94301}]}
        assert Path.parse("addr[1].zip").evaluate(row) is None
        assert Path.parse("addr[0].state").evaluate(row) is None
        assert Path.parse("other").evaluate(row) is None

    def test_evaluate_type_mismatch_yields_none(self):
        assert Path.parse("a[0]").evaluate({"a": {"not": "a list"}}) is None
        assert Path.parse("a.b").evaluate({"a": [1, 2]}) is None


class TestSchema:
    def make(self):
        return Schema.of(id=INT, name=STRING, score=FLOAT)

    def test_names_in_order(self):
        assert self.make().names == ("id", "name", "score")

    def test_type_of(self):
        assert self.make().type_of("id") is INT
        with pytest.raises(SchemaError):
            self.make().type_of("missing")

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            Schema((("a", INT), ("a", STRING)))

    def test_contains_and_len(self):
        schema = self.make()
        assert "id" in schema
        assert "missing" not in schema
        assert len(schema) == 3

    def test_project(self):
        projected = self.make().project(["score", "id"])
        assert projected.names == ("score", "id")

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make().project(["nope"])

    def test_merge_disjoint(self):
        merged = self.make().merge(Schema.of(extra=BOOL))
        assert merged.names == ("id", "name", "score", "extra")

    def test_merge_same_type_dedupes(self):
        merged = self.make().merge(Schema.of(id=INT))
        assert merged.names == ("id", "name", "score")

    def test_merge_conflicting_type_raises(self):
        with pytest.raises(SchemaError):
            self.make().merge(Schema.of(id=STRING))

    def test_validate_row(self):
        schema = self.make()
        schema.validate_row({"id": 1, "name": "x", "score": 2.0})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": "oops"})
        with pytest.raises(SchemaError):
            schema.validate_row({"unknown": 1})

    def test_row_size_counts_unknown_fields_too(self):
        schema = self.make()
        base = schema.estimated_row_size({"id": 1})
        with_extra = schema.estimated_row_size({"id": 1, "zzz": "abcdef"})
        assert with_extra > base


class TestEstimateValueSize:
    def test_scalars(self):
        assert estimate_value_size(None) == 1
        assert estimate_value_size(True) == 1
        assert estimate_value_size(12345) == 8
        assert estimate_value_size(1.5) == 8
        assert estimate_value_size("abc") == 3

    def test_containers_sum_members(self):
        assert estimate_value_size([1, 2]) == 2 + 16
        nested = {"a": [1, 2], "b": "xy"}
        assert estimate_value_size(nested) > estimate_value_size([1, 2])

    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=20)),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=5), children, max_size=5),
        ),
        max_leaves=20,
    ))
    def test_size_always_positive(self, value):
        assert estimate_value_size(value) >= 1
