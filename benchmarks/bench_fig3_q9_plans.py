"""Figure 3: Q9' plans -- RELOPT vs DYNO after pilot runs.

Paper: the relational optimizer cannot estimate the dimension UDFs'
selectivity and produces a plan where all joins are expensive repartition
joins; after pilot runs DYNO's plan has only broadcast joins.
"""

from repro.bench.experiments import figure3_method_counts, figure3_q9_plans

from .conftest import record, run_once


def test_fig3_q9_plans(benchmark):
    def run():
        return figure3_q9_plans(), figure3_method_counts()

    plans, counts = run_once(benchmark, run)
    record("fig3_q9_plans", plans.format() + "\n\n" + counts.format())
    rows = {row[0]: row for row in counts.rows}
    relopt_broadcasts = rows["RELOPT"][2]
    dyno_repartitions = rows["DYNO (after pilot runs)"][1]
    dyno_broadcasts = rows["DYNO (after pilot runs)"][2]
    # DYNO: only broadcast joins; RELOPT: mostly repartition joins.
    assert dyno_repartitions == 0
    assert dyno_broadcasts == 5
    assert rows["RELOPT"][1] >= 2
    assert relopt_broadcasts <= 3
