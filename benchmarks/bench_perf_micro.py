"""Performance microbenchmark harness (wall-clock, not simulated time).

Every other benchmark in this directory measures *simulated* cluster
seconds; this one tracks the real wall-clock of the driver itself -- the
Python hot loops the whole experiment suite funnels through. It times:

* ``kmv_ingest``      -- KMV synopsis ingest of 200k (50k distinct) values;
* ``kmv_merge``       -- union of 64 partial synopses (client-side merge);
* ``runtime_row_loop``-- one map-only job + one repartition join through
                         ``ClusterRuntime._run_job_data``;
* ``runtime_row_loop_columnar`` -- the same two jobs over the columnar
                         batch data path (batch mapper/reducer);
* ``optimizer_search``-- repeated optimizer searches over the Q8' block;
* ``q8_dynopt_driver``-- a full Q8' DYNOPT run (``run_workload``),
                         including DFS load, pilots and re-optimization;
* ``q8_dynopt_driver_columnar`` -- the same run with the columnar engine;
* ``pilr_mt_pilots``  -- PILR_MT pilot runs for the Q9' block.

Each entry reports the *median* of N timed runs after a warmup run.
Results are written as JSON. The checked-in ``BENCH_PR6.json`` at the repo
root records the current before/after numbers; CI re-runs the suite in
``--mode smoke`` and fails when any entry regresses more than the
``--max-regression`` factor against that baseline (see ``--check``).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_micro.py --mode full \
        --output BENCH_PR6.json [--before /tmp/before.json]
    PYTHONPATH=src python benchmarks/bench_perf_micro.py --mode smoke \
        --check BENCH_PR6.json --max-regression 1.5

When merging "before" numbers, a ``*_columnar`` entry missing from the
baseline falls back to its row-engine counterpart, so the columnar
speedup is measured against the previous PR's row path.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.baselines import relopt_leaf_stats
from repro.core.dyno import Dyno
from repro.core.pilot import PilotRunner
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q8_prime, q9_prime

#: Per-mode sizing knobs: (kmv values, kmv distinct, partials, row-loop rows,
#: optimizer repetitions, paper scale factor, driver repetitions).
MODES = {
    "full": dict(kmv_values=200_000, kmv_distinct=50_000, partials=64,
                 row_loop_rows=20_000, optimizer_reps=20, paper_sf=300,
                 reps=3),
    "smoke": dict(kmv_values=40_000, kmv_distinct=10_000, partials=16,
                  row_loop_rows=4_000, optimizer_reps=5, paper_sf=100,
                  reps=2),
}

#: Canonical entry names this suite produces, importable by
#: latest_baseline.py so baseline compatibility checks don't have to
#: guess from JSON shape alone (a bespoke experiment record can look
#: structurally identical while sharing zero entry names).
BENCHMARK_NAMES = (
    "kmv_ingest",
    "kmv_merge",
    "runtime_row_loop",
    "runtime_row_loop_columnar",
    "optimizer_search",
    "q8_dynopt_driver",
    "q8_dynopt_driver_columnar",
    "pilr_mt_pilots",
)


def _parallel_config(base: DynoConfig) -> DynoConfig:
    """Enable the parallel data-path executor when this revision has it."""
    executor = getattr(base, "executor", None)
    if executor is None:
        return base  # pre-PR1 revision: serial only
    return replace(base, executor=replace(executor, parallel_jobs=True))


def _columnar_config(base: DynoConfig) -> DynoConfig:
    """Enable the columnar batch data path when this revision has it."""
    with_columnar = getattr(base, "with_columnar", None)
    if with_columnar is None:
        return base  # pre-PR6 revision: row engine only
    return with_columnar()


def _timed(fn: Callable[[], Any], reps: int, warmup: int = 1) -> float:
    """Median wall-clock of ``reps`` runs after ``warmup`` discarded runs.

    The warmup absorbs one-time costs (imports, allocator growth, memoized
    caches filling) and the median resists scheduler noise -- min-of-N
    systematically under-reports and made the CI regression gate flaky.
    """
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------


def bench_kmv_ingest(params: dict[str, Any]) -> float:
    from repro.stats.kmv import KMVSynopsis

    rng = random.Random(1729)
    distinct = params["kmv_distinct"]
    values: list[Any] = [
        rng.randrange(distinct) for _ in range(params["kmv_values"] // 2)
    ]
    values += [
        f"key-{rng.randrange(distinct)}"
        for _ in range(params["kmv_values"] - len(values))
    ]

    def run() -> None:
        synopsis = KMVSynopsis(1024)
        synopsis.add_all(values)
        synopsis.estimate()

    return _timed(run, params["reps"])


def bench_kmv_merge(params: dict[str, Any]) -> float:
    from repro.stats.kmv import KMVSynopsis

    rng = random.Random(31337)
    partials = []
    for _ in range(params["partials"]):
        synopsis = KMVSynopsis(1024)
        synopsis.add_all(rng.randrange(1 << 40) for _ in range(4096))
        partials.append(synopsis)

    def run() -> None:
        merged = partials[0]
        for partial in partials[1:]:
            merged = merged.merge(partial)
        merged.estimate()

    return _timed(run, params["reps"])


def bench_runtime_row_loop(params: dict[str, Any]) -> float:
    from repro.cluster.job import MapReduceJob, TaskContext
    from repro.cluster.runtime import ClusterRuntime
    from repro.data.schema import INT, STRING, Schema
    from repro.data.table import Row
    from repro.storage.dfs import DistributedFileSystem

    rows = params["row_loop_rows"]
    schema = Schema.of(k=INT, grp=INT, payload=STRING)
    data = [
        {"k": i, "grp": i % 97, "payload": f"value-{i % 1000:04d}"}
        for i in range(rows)
    ]

    def map_only_mapper(context: TaskContext, source: str,
                        chunk: list[Row]) -> None:
        for row in chunk:
            if row["grp"] % 2 == 0:
                context.emit(None, row)

    def keyed_mapper(context: TaskContext, source: str,
                     chunk: list[Row]) -> None:
        for row in chunk:
            context.emit(row["grp"], row)

    def reducer(context: TaskContext, key: Any, values: list[Row]) -> None:
        context.emit(None, {"grp": key, "n": len(values)})

    def run() -> None:
        dfs = DistributedFileSystem(DEFAULT_CONFIG.cluster.block_size_bytes)
        dfs.write_rows("input", schema, data)
        runtime = ClusterRuntime(dfs, DEFAULT_CONFIG)
        runtime.execute(MapReduceJob(
            name="map_only", inputs=["input"], mapper=map_only_mapper,
            output_name="map_only.out", output_schema=schema,
            stats_columns=["k", "grp"],
        ))
        runtime.execute(MapReduceJob(
            name="repartition", inputs=["input"], mapper=keyed_mapper,
            output_name="repartition.out", output_schema=schema,
            reducer=reducer, num_reducers=8,
        ))

    return _timed(run, params["reps"])


def bench_runtime_row_loop_columnar(params: dict[str, Any]) -> float:
    """The row-loop jobs re-expressed over the columnar batch contract."""
    from repro.cluster.job import BatchEmit, MapReduceJob, TaskContext
    from repro.cluster.runtime import ClusterRuntime
    from repro.data.columns import RowBatch
    from repro.data.schema import INT, STRING, Schema, estimate_dict_size
    from repro.data.table import Row
    from repro.storage.dfs import DistributedFileSystem

    rows = params["row_loop_rows"]
    schema = Schema.of(k=INT, grp=INT, payload=STRING)
    data = [
        {"k": i, "grp": i % 97, "payload": f"value-{i % 1000:04d}"}
        for i in range(rows)
    ]

    # Row callables stay attached as the semantic definition / fallback.
    def map_only_mapper(context: TaskContext, source: str,
                        chunk: list[Row]) -> None:
        for row in chunk:
            if row["grp"] % 2 == 0:
                context.emit(None, row)

    def keyed_mapper(context: TaskContext, source: str,
                     chunk: list[Row]) -> None:
        for row in chunk:
            context.emit(row["grp"], row)

    def reducer(context: TaskContext, key: Any, values: list[Row]) -> None:
        context.emit(None, {"grp": key, "n": len(values)})

    def batch_map_only(context: TaskContext, source: str,
                       batch: Any) -> BatchEmit:
        grp = batch.column("grp")
        all_rows = batch.rows
        sizes = batch.ensure_sizes()
        selection = [i for i in range(len(all_rows)) if grp[i] % 2 == 0]
        out_rows = [all_rows[i] for i in selection]
        out_sizes = [sizes[i] for i in selection]
        return BatchEmit(rows=out_rows, sizes=out_sizes,
                         columns=RowBatch(out_rows, out_sizes))

    def batch_keyed(context: TaskContext, source: str,
                    batch: Any) -> BatchEmit:
        # Scalar keys, exactly as the row mapper emits them.
        return BatchEmit(rows=list(batch.rows),
                         sizes=list(batch.ensure_sizes()),
                         keys=list(batch.column("grp")))

    def batch_reducer(context: TaskContext, groups: list) -> BatchEmit:
        out_rows = []
        out_sizes = []
        for key, values, _sizes in groups:
            row = {"grp": key, "n": len(values)}
            out_rows.append(row)
            out_sizes.append(estimate_dict_size(row))
        return BatchEmit(rows=out_rows, sizes=out_sizes)

    def run() -> None:
        dfs = DistributedFileSystem(DEFAULT_CONFIG.cluster.block_size_bytes)
        dfs.write_rows("input", schema, data)
        runtime = ClusterRuntime(dfs, DEFAULT_CONFIG)
        runtime.execute(MapReduceJob(
            name="map_only", inputs=["input"], mapper=map_only_mapper,
            batch_mapper=batch_map_only,
            output_name="map_only.out", output_schema=schema,
            stats_columns=["k", "grp"],
        ))
        runtime.execute(MapReduceJob(
            name="repartition", inputs=["input"], mapper=keyed_mapper,
            batch_mapper=batch_keyed, batch_reducer=batch_reducer,
            output_name="repartition.out", output_schema=schema,
            reducer=reducer, num_reducers=8,
        ))

    return _timed(run, params["reps"])


def bench_optimizer_search(params: dict[str, Any]) -> float:
    from repro.bench.harness import dataset_for_paper_sf

    dataset = dataset_for_paper_sf(100)
    workload = q8_prime()
    dyno = Dyno(dataset.tables, config=DEFAULT_CONFIG, udfs=workload.udfs)
    extracted = dyno.prepare(workload.final_spec, name="opt_bench")
    leaf_stats = relopt_leaf_stats(dyno.tables, extracted.block)

    def run() -> None:
        for _ in range(params["optimizer_reps"]):
            JoinOptimizer(extracted.block, leaf_stats,
                          DEFAULT_CONFIG.optimizer).optimize()

    return _timed(run, params["reps"])


def bench_q8_dynopt_driver(params: dict[str, Any],
                           config: DynoConfig) -> float:
    from repro.bench.harness import (
        VARIANT_DYNOPT,
        dataset_for_paper_sf,
        run_workload,
    )

    dataset = dataset_for_paper_sf(params["paper_sf"])
    workload = q8_prime()

    def run() -> None:
        run_workload(dataset.tables, workload, VARIANT_DYNOPT, config=config)

    return _timed(run, params["reps"])


def bench_pilr_mt_pilots(params: dict[str, Any],
                         config: DynoConfig) -> float:
    from repro.bench.harness import dataset_for_paper_sf

    dataset = dataset_for_paper_sf(params["paper_sf"])
    workload = q9_prime()

    def run() -> None:
        dyno = Dyno(dataset.tables, config=config, udfs=workload.udfs)
        extracted = dyno.prepare(workload.final_spec, name="pilr_bench")
        runner = PilotRunner(dyno.runtime, dyno.metastore, config)
        runner.run(extracted.block, mode="MT")

    return _timed(run, params["reps"])


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------


def run_suite(mode: str, parallel: bool = True) -> dict[str, float]:
    """Run every microbenchmark; returns {entry: best wall-clock seconds}."""
    params = MODES[mode]
    config = _parallel_config(DEFAULT_CONFIG) if parallel else DEFAULT_CONFIG
    results: dict[str, float] = {}
    runners = {
        "kmv_ingest": lambda: bench_kmv_ingest(params),
        "kmv_merge": lambda: bench_kmv_merge(params),
        "runtime_row_loop": lambda: bench_runtime_row_loop(params),
        "runtime_row_loop_columnar":
            lambda: bench_runtime_row_loop_columnar(params),
        "optimizer_search": lambda: bench_optimizer_search(params),
        "q8_dynopt_driver": lambda: bench_q8_dynopt_driver(params, config),
        "q8_dynopt_driver_columnar":
            lambda: bench_q8_dynopt_driver(params, _columnar_config(config)),
        "pilr_mt_pilots": lambda: bench_pilr_mt_pilots(params, config),
    }
    for name in BENCHMARK_NAMES:
        fn = runners[name]
        results[name] = fn()
        print(f"  {name:20s} {results[name]*1000:10.2f} ms", flush=True)
    return results


def build_report(mode: str, measured: dict[str, float],
                 before: dict[str, float] | None) -> dict[str, Any]:
    entries: dict[str, Any] = {}
    for name, seconds in measured.items():
        entry: dict[str, Any] = {"after_s": round(seconds, 6)}
        reference = before.get(name) if before else None
        if reference is None and before and name.endswith("_columnar"):
            # Columnar entries are new: measure them against the previous
            # PR's row-engine number for the same workload.
            reference = before.get(name[: -len("_columnar")])
        if reference is not None:
            entry["before_s"] = round(reference, 6)
            if seconds > 0:
                entry["speedup"] = round(reference / seconds, 3)
        entries[name] = entry
    return {"mode": mode, "entries": entries}


def check_against_baseline(measured: dict[str, float], baseline: dict,
                           mode: str, max_regression: float) -> list[str]:
    """Return failure messages for entries slower than baseline * factor."""
    failures: list[str] = []
    base_entries = baseline.get("modes", {}).get(mode, {}).get("entries", {})
    for name, seconds in measured.items():
        reference = base_entries.get(name, {}).get("after_s")
        if reference is None or reference <= 0:
            continue
        if seconds > reference * max_regression:
            failures.append(
                f"{name}: {seconds*1000:.2f} ms > {max_regression:.1f}x "
                f"baseline ({reference*1000:.2f} ms)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="smoke")
    parser.add_argument("--output", type=Path, default=None,
                        help="write/update a JSON report at this path")
    parser.add_argument("--before", type=Path, default=None,
                        help="JSON file with baseline numbers to merge as "
                             "'before_s' (same --mode)")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against this baseline JSON and fail "
                             "on regression")
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument("--serial", action="store_true",
                        help="keep the parallel executor disabled")
    args = parser.parse_args(argv)

    print(f"perf micro suite: mode={args.mode} "
          f"parallel={not args.serial}", flush=True)
    measured = run_suite(args.mode, parallel=not args.serial)

    before: dict[str, float] | None = None
    if args.before is not None and args.before.exists():
        payload = json.loads(args.before.read_text())
        raw = (payload.get("modes", {}).get(args.mode, {})
               .get("entries", payload.get("entries", {})))
        before = {
            name: entry.get("after_s", entry.get("seconds"))
            for name, entry in raw.items()
            if isinstance(entry, dict)
        }

    report = build_report(args.mode, measured, before)
    if args.output is not None:
        existing: dict[str, Any] = {}
        if args.output.exists():
            existing = json.loads(args.output.read_text())
        existing.setdefault("pr", 6)
        existing.setdefault("schema_version", 1)
        existing["python"] = platform.python_version()
        existing.setdefault("modes", {})
        existing["modes"][args.mode] = report
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(
            measured, baseline, args.mode, args.max_regression
        )
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"perf check OK (within {args.max_regression:.1f}x of "
              f"{args.check})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
