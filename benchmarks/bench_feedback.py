"""Feedback-loop benchmark: q-error shrinks run over run, results don't.

The acceptance claim of the workload feedback loop (ISSUE 8): on
*successive runs of the same mixed workload* through one service, the
mean rows q-error of run 2+ is measurably lower than run 1 when feedback
is enabled -- and unchanged when it is disabled.

Protocol (both conditions identically):

1. **warmup batch** -- one run of the mixed batch fills the metastore
   and the plan cache, so every *measured* run is warm (cold runs
   substitute pilot outputs and audit different jobs, which would
   confound run 1 vs run 2). The feedback store is then cleared, so
   measured run 1 starts unlearned;
2. **measured runs** -- N further batches; per-run mean ``qerror.rows``
   comes from the metrics observation deltas. With feedback *off* the
   warm runs are deterministic replays, so their means must be
   identical; with feedback *on*, run 1 learns and run 2+ optimizes with
   corrections applied.

Every measured run's result rows are also checked byte-identical to the
feedback-off baseline: the loop tunes plans, never answers.

Usage::

    PYTHONPATH=src python benchmarks/bench_feedback.py --output BENCH_PR8.json
    PYTHONPATH=src python benchmarks/bench_feedback.py --check BENCH_PR8.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.feedback import FeedbackStore
from repro.obs.metrics import MetricsRegistry
from repro.service import QueryService
from repro.workloads.mixed import MIXED_SEQUENCE, mixed_batch, mixed_tables

SEED = 2014
SCALE = 0.05
EVENTS = 4000
MEASURED_RUNS = 3


def _rows_key(outcomes) -> str:
    payload = [sorted(
        json.dumps(row, sort_keys=True, default=str)
        for row in outcome.rows
    ) for outcome in outcomes]
    return json.dumps(payload)


def _observation(metrics: MetricsRegistry, name: str) -> dict:
    stats = metrics.summary()["observations"].get(name)
    return dict(stats) if stats else {"count": 0, "total": 0.0}


def _delta_mean(after: dict, before: dict) -> float:
    count = after["count"] - before["count"]
    total = after["total"] - before["total"]
    return total / count if count else 0.0


def _run_condition(scale: float, seed: int, events: int,
                   with_feedback: bool) -> dict:
    tables = mixed_tables(scale, seed=seed, weblog_events=events)
    requests, udfs = mixed_batch()
    metrics = MetricsRegistry()
    feedback = FeedbackStore() if with_feedback else None
    service = QueryService(tables, udfs=udfs, metrics=metrics,
                           workers=1, feedback=feedback)

    # Warmup: fill metastore + plan cache, then forget what was learned
    # so measured run 1 is a warm, unlearned baseline in both conditions.
    service.run_batch(requests)
    if feedback is not None:
        feedback.clear()

    qerror_means: list[float] = []
    regret_means: list[float] = []
    rows_keys: list[str] = []
    qerror_before = _observation(metrics, "qerror.rows")
    regret_before = _observation(metrics, "feedback.regret")
    for _run in range(MEASURED_RUNS):
        outcomes = service.run_batch(requests)
        errors = [outcome.error for outcome in outcomes if outcome.error]
        if errors:
            raise SystemExit(f"batch failed: {errors}")
        rows_keys.append(_rows_key(outcomes))
        qerror_after = _observation(metrics, "qerror.rows")
        qerror_means.append(_delta_mean(qerror_after, qerror_before))
        qerror_before = qerror_after
        regret_after = _observation(metrics, "feedback.regret")
        regret_means.append(_delta_mean(regret_after, regret_before))
        regret_before = regret_after

    result = {
        "qerror_rows_mean_per_run": [round(m, 6) for m in qerror_means],
        "rows_keys": rows_keys,
    }
    if feedback is not None:
        summary = feedback.summary()
        result["regret_mean_per_run"] = [round(m, 6) for m in regret_means]
        result["store"] = {
            "keys": summary["keys"],
            "active_corrections": summary["active_corrections"],
            "samples": summary["samples"],
            "pilot_boosts": summary["pilot_boosts"],
            "regret_leaderboard": [
                {"block": entry["block"][:120],
                 "choices": entry["choices"],
                 "mean_regret": round(entry["mean_regret"], 6)}
                for entry in summary["regret_leaderboard"][:5]
            ],
        }
    return result


def run_bench(scale: float, seed: int, events: int) -> dict:
    on = _run_condition(scale, seed, events, with_feedback=True)
    off = _run_condition(scale, seed, events, with_feedback=False)

    if on["rows_keys"] != off["rows_keys"]:
        raise SystemExit("feedback changed result rows -- plan-invariance "
                         "violated; refusing to record")
    # Raw row payloads are only needed for the cross-condition check.
    on.pop("rows_keys")
    off.pop("rows_keys")

    on_means = on["qerror_rows_mean_per_run"]
    off_means = off["qerror_rows_mean_per_run"]
    converged = min(on_means[1:])
    entries = {
        "qerror_rows_mean": {
            "before_s": on_means[0],
            "after_s": round(converged, 6),
            "speedup": round(on_means[0] / converged, 3),
        },
    }
    return {
        "pr": 8,
        "schema_version": 1,
        "python": platform.python_version(),
        "workload": {
            "scale": scale,
            "seed": seed,
            "weblog_events": events,
            "batch": [factory().name for factory in MIXED_SEQUENCE],
            "measured_runs": MEASURED_RUNS,
            "protocol": "warm (1 warmup batch), feedback cleared before "
                        "measured run 1",
        },
        "feedback_on": on,
        "feedback_off": {
            "qerror_rows_mean_per_run": off_means,
            "max_run_to_run_drift": round(
                max(off_means) - min(off_means), 9),
        },
        "modes": {"full": {"mode": "full", "entries": entries}},
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    failures = []
    on_means = recorded["feedback_on"]["qerror_rows_mean_per_run"]
    off = recorded["feedback_off"]
    if not all(mean < on_means[0] for mean in on_means[1:]):
        failures.append(
            f"feedback on: run 2+ q-error {on_means[1:]} did not "
            f"improve on run 1 ({on_means[0]})")
    entry = recorded["modes"]["full"]["entries"]["qerror_rows_mean"]
    if entry["speedup"] <= 1.0:
        failures.append(f"qerror_rows_mean speedup {entry['speedup']} "
                        "<= 1.0 (no measurable improvement)")
    if off["max_run_to_run_drift"] != 0.0:
        failures.append(
            "feedback off: q-error drifted across identical warm runs "
            f"({off['qerror_rows_mean_per_run']})")
    for line in failures:
        print(f"FAIL {line}")
    if not failures:
        print(f"ok: {path} -- q-error shrinks with feedback on "
              f"(x{entry['speedup']}), stays put with feedback off")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", metavar="PATH",
                        help="write results as JSON")
    parser.add_argument("--check", metavar="PATH",
                        help="validate a recorded results file instead "
                             "of benchmarking")
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--events", type=int, default=EVENTS)
    args = parser.parse_args(argv)

    if args.check:
        return check(Path(args.check))

    results = run_bench(args.scale, args.seed, args.events)
    on = results["feedback_on"]["qerror_rows_mean_per_run"]
    off = results["feedback_off"]["qerror_rows_mean_per_run"]
    print(f"mean qerror.rows, feedback ON : "
          f"{' -> '.join(f'{m:.4f}' for m in on)}")
    print(f"mean qerror.rows, feedback OFF: "
          f"{' -> '.join(f'{m:.4f}' for m in off)}")
    entry = results["modes"]["full"]["entries"]["qerror_rows_mean"]
    print(f"improvement: {entry['before_s']:.4f} -> {entry['after_s']:.4f} "
          f"(x{entry['speedup']})")
    regret = results["feedback_on"].get("regret_mean_per_run")
    if regret:
        print(f"mean regret per run: "
              f"{' -> '.join(f'{m:.4f}' for m in regret)}")
    if args.output:
        Path(args.output).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
