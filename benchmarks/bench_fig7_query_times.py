"""Figure 7: query times of all four plan variants, SF in {100,300,1000}.

Paper: DYNOPT and DYNOPT-SIMPLE are at least as good as the best
hand-written left-deep plan and up to 2x (Q8' SF100) better; Q9' gains
1.33x-1.88x from broadcast-join chains; Q10's best plan is already
left-deep so everything converges; RELOPT is sometimes worse than
BESTSTATICJAQL. Known deviation at simulation scale (EXPERIMENTS.md):
fixed costs (pilot runs, job startup) weigh relatively more, so Q2 -- a
short query over small tables -- shows DYNO slightly *above* the static
baseline instead of 20% below it.
"""

from repro.bench.experiments import figure7_query_times

from .conftest import record, run_once


def test_fig7_query_times(benchmark):
    table = run_once(benchmark, figure7_query_times)
    record("fig7_query_times", table.format())

    def pct(cell):
        return float(cell.rstrip("%"))

    rows = {(row[0], row[1]): row for row in table.rows}
    # Q9' and Q8' show the paper's headline wins somewhere in the sweep.
    assert pct(rows[(300, "Q9'")][4]) < 60.0   # DYNOPT-SIMPLE
    assert pct(rows[(100, "Q8'")][5]) < 90.0   # DYNOPT
    # Q8' keeps beating the static baseline at every scale factor, and
    # re-optimization never costs more than its small overhead on top of
    # DYNOPT-SIMPLE.
    for sf in (100, 300, 1000):
        assert pct(rows[(sf, "Q8'")][5]) < 95.0
        assert (pct(rows[(sf, "Q8'")][5])
                <= 1.15 * pct(rows[(sf, "Q8'")][4]))
    # Q10: everything within ~25% of the best static plan (a tie).
    for sf in (100, 300, 1000):
        assert pct(rows[(sf, "Q10")][5]) < 130.0
