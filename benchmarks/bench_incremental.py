"""Incremental-refresh benchmark: delta join vs full recompute.

Measures *simulated* cluster seconds (the currency of every experiment
in this repo) for keeping one standing query fresh across an append-only
change batch, at change rates of 1%, 10% and 50% of the base table:

* **delta** -- the standing-query manager forced onto the incremental
  path: the core query re-runs over the batch's delta file and the
  result merges into the maintained state;
* **full** -- the manager forced onto the recompute path: the core
  query re-runs over the whole changed table.

Both paths execute through the service (pilots, optimizer, replans), and
the benchmark asserts their maintained results are identical before
reporting -- a mini differential oracle. The ``chosen`` field records
which strategy the cardinality rule would actually pick at the default
0.3 threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --mode full --output BENCH_PR10.json
    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --mode smoke --check BENCH_PR10.json

``--check`` enforces the acceptance criterion: delta refresh must be at
least ``--min-speedup`` (default 2.0) times cheaper than the full
recompute at the 1% change rate.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.incremental import (  # noqa: E402
    ChangeGenerator,
    StandingQueryManager,
    apply_change_batch,
)
from repro.service import QueryService  # noqa: E402
from repro.validation import canonical_rows  # noqa: E402
from repro.workloads.changing import (  # noqa: E402
    KEY_COLUMNS,
    changing_tables,
    changing_udfs,
)
from repro.workloads.weblogs import weblog_engagement  # noqa: E402

WORKLOAD = "WeblogEngagement"
CHANGE_RATES = (("1%", 0.01), ("10%", 0.10), ("50%", 0.50))
SEED = 2014
#: the manager's default decision threshold, re-applied to the measured
#: ratio for the ``chosen`` field.
DECISION_THRESHOLD = 0.3

MODES = {
    "full": dict(scale_factor=0.25),
    "smoke": dict(scale_factor=0.05),
}


def run_refresh(scale_factor: float, change_rate: float,
                strategy: str) -> dict[str, Any]:
    """One forced-strategy refresh; returns timing + result fingerprint.

    Forcing goes through the decision threshold (1.0 admits any delta,
    ~0 forces every refresh full), so the measured path is exactly what
    the manager executes when it decides that way itself.
    """
    tables = changing_tables(scale_factor, seed=23)
    service = QueryService(tables, udfs=changing_udfs(), workers=1)
    threshold = 1.0 if strategy == "delta" else 1e-9
    manager = StandingQueryManager(service, full_threshold=threshold)
    workload = weblog_engagement()
    manager.register(WORKLOAD, workload.final_spec)

    generator = ChangeGenerator(service.dyno.tables["pageviews"],
                                KEY_COLUMNS["pageviews"], seed=SEED)
    batch = generator.next_batch(change_rate)
    applied = apply_change_batch(service.dyno, batch,
                                 KEY_COLUMNS["pageviews"])
    report = manager.refresh(applied)
    outcome, = report.outcomes
    if not outcome.ok:
        raise RuntimeError(f"refresh failed: {outcome.error}")
    if outcome.decision.strategy != strategy:
        raise RuntimeError(
            f"could not force {strategy} at rate {change_rate}: "
            f"manager chose {outcome.decision.strategy} "
            f"({outcome.decision.reason})"
        )
    return {
        "simulated_seconds": outcome.simulated_seconds,
        "ratio": outcome.decision.ratio,
        "rows": outcome.rows,
        "fingerprint": canonical_rows(manager.result(WORKLOAD),
                                      float_places=6),
    }


def run_suite(mode: str) -> dict[str, Any]:
    scale_factor = MODES[mode]["scale_factor"]
    rates: dict[str, Any] = {}
    for label, change_rate in CHANGE_RATES:
        delta = run_refresh(scale_factor, change_rate, "delta")
        full = run_refresh(scale_factor, change_rate, "full")
        if delta["fingerprint"] != full["fingerprint"]:
            raise RuntimeError(
                f"delta and full refresh disagree at {label}: the "
                "incremental path is wrong, not just slow"
            )
        speedup = (full["simulated_seconds"] / delta["simulated_seconds"]
                   if delta["simulated_seconds"] > 0 else float("inf"))
        rates[label] = {
            "change_rate": change_rate,
            "delta_s": round(delta["simulated_seconds"], 3),
            "full_s": round(full["simulated_seconds"], 3),
            "speedup": round(speedup, 3),
            "ratio": round(delta["ratio"], 6),
            "chosen": ("delta" if delta["ratio"] <= DECISION_THRESHOLD
                       else "full"),
            "rows": delta["rows"],
        }
        print(f"  {label:>4}: delta {rates[label]['delta_s']:9.1f}s  "
              f"full {rates[label]['full_s']:9.1f}s  "
              f"speedup {rates[label]['speedup']:6.2f}x  "
              f"chosen={rates[label]['chosen']}", flush=True)
    return {
        "mode": mode,
        "scale_factor": scale_factor,
        "workload": WORKLOAD,
        "rates": rates,
    }


def check_report(report: dict[str, Any], min_speedup: float) -> list[str]:
    """Failure messages against the acceptance criteria."""
    failures: list[str] = []
    rates = report.get("rates", {})
    one_percent = rates.get("1%", {})
    speedup = one_percent.get("speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"1% change rate: delta refresh speedup {speedup:.2f}x "
            f"< required {min_speedup:.1f}x"
        )
    if one_percent.get("chosen") != "delta":
        failures.append(
            "1% change rate: the cardinality rule should pick delta "
            f"(ratio {one_percent.get('ratio')})"
        )
    if rates.get("50%", {}).get("chosen") != "full":
        failures.append(
            "50% change rate: the cardinality rule should pick full "
            f"(ratio {rates.get('50%', {}).get('ratio')})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="smoke")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--check", type=Path, default=None,
                        help="also validate this previously written "
                             "report (defaults to the fresh run)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required delta-over-full speedup at the "
                             "1%% change rate (default 2.0)")
    args = parser.parse_args(argv)

    print(f"incremental refresh suite: mode={args.mode}", flush=True)
    report = run_suite(args.mode)

    if args.output is not None:
        payload = {
            "pr": 10,
            "schema_version": 1,
            "python": platform.python_version(),
            **report,
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")

    target = report
    if args.check is not None:
        target = json.loads(args.check.read_text())
    failures = check_report(target, args.min_speedup)
    # The fresh run must hold up too, not just the committed file.
    if args.check is not None:
        failures += [f"(fresh run) {f}"
                     for f in check_report(report, args.min_speedup)]
    if failures:
        print("INCREMENTAL BENCH FAILURE:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"incremental check OK (delta >= {args.min_speedup:.1f}x at 1%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
