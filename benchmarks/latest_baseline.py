"""Pick the newest committed BENCH_*.json compatible with a benchmark.

The bench-regression CI job used to hard-code its baseline filename,
which meant every PR that committed a fresh baseline also had to edit
the workflow -- and forgetting that edit silently compared against a
stale baseline. This script encodes the rule instead: scan the repo
root for ``BENCH_PR<n>.json``, keep the ones whose schema the requested
benchmark can actually check against, and print the newest (highest PR
number) on stdout.

Compatibility is structural, not name-based, because the repo's
baselines are heterogeneous: BENCH_PR1/5/6 are perf-micro reports
(``modes.smoke.entries`` / ``modes.full.entries``), while BENCH_PR7
(workload), PR8 (feedback), PR9 (result cache) and PR10 (incremental
refresh) are bespoke experiment records that perf-micro's ``--check``
would accept but compare against vacuously (it skips entry names the
baseline lacks). A perf-micro baseline for mode M must have a
``modes[M]["entries"]`` mapping sharing at least one entry name with
the suite's own benchmark list.

Usage (in CI)::

    BASELINE=$(python benchmarks/latest_baseline.py --mode smoke)
    python benchmarks/bench_perf_micro.py --mode smoke --check "$BASELINE"

Exits non-zero when no compatible baseline exists, so the job fails
loudly instead of skipping the regression check.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
# bench_perf_micro imports repro at module scope.
sys.path.insert(0, str(_HERE.parent / "src"))

from bench_perf_micro import BENCHMARK_NAMES  # noqa: E402

BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def pr_number(path: Path) -> int:
    match = BASELINE_PATTERN.match(path.name)
    return int(match.group(1)) if match else -1


def is_perf_micro_baseline(path: Path, mode: str) -> bool:
    """True when bench_perf_micro --check can read this file for mode."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if not isinstance(payload, dict):
        return False
    entries = payload.get("modes", {}).get(mode, {}).get("entries")
    if not isinstance(entries, dict) or not entries:
        return False
    # perf-micro's --check silently skips names the baseline lacks, so a
    # zero-overlap baseline would "pass" without comparing anything.
    return any(name in entries for name in BENCHMARK_NAMES)


def latest_baseline(root: Path, mode: str) -> Path | None:
    candidates = [
        path for path in root.glob("BENCH_PR*.json")
        if pr_number(path) >= 0 and is_perf_micro_baseline(path, mode)
    ]
    if not candidates:
        return None
    return max(candidates, key=pr_number)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", default="smoke",
                        help="perf-micro mode the baseline must cover "
                             "(default smoke)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory to scan (default: repo root)")
    args = parser.parse_args(argv)

    baseline = latest_baseline(args.root, args.mode)
    if baseline is None:
        print(f"no BENCH_PR*.json in {args.root} has "
              f"modes[{args.mode!r}].entries", file=sys.stderr)
        return 1
    print(baseline.name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
