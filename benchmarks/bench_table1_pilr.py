"""Table 1: PILR_ST vs PILR_MT relative pilot-run time.

Paper: PILR_MT is 16%-28% of PILR_ST (4.6x average speedup) and its time
is independent of the scale factor -- it depends only on the sample size.
"""

from repro.bench.experiments import table1_pilr

from .conftest import record, run_once


def test_table1_pilr(benchmark):
    table = run_once(benchmark, table1_pilr)
    record("table1_pilr", table.format())
    values = {}
    for row in table.rows:
        query = row[0]
        values[query] = [float(cell.rstrip("%")) for cell in row[2:]]
    for query, percentages in values.items():
        # MT is always a multiple faster than ST ...
        assert all(p < 60.0 for p in percentages), (query, percentages)
        # ... and (near) scale-factor invariant.
        assert max(percentages) - min(percentages) < 15.0, (
            query, percentages
        )
