"""Ablation: the Section-8 dynamic join operator vs fixed execution.

How much of DYNOPT's benefit does pure method-switching (no
re-optimization, no pilot runs) recover? We execute an ultra-conservative
all-repartition Q9' plan as planned and again with the dynamic operator
flipping joins whose inputs actually fit in memory.
"""

from repro.bench.harness import dataset_for_paper_sf
from repro.config import OptimizerConfig
from repro.core.baselines import oracle_leaf_stats
from repro.core.dynamic_join import DynamicJoinExecutor
from repro.core.dyno import Dyno
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import q9_prime

from .conftest import record, run_once


def _conservative_setup():
    tables = dataset_for_paper_sf(300).tables
    workload = q9_prime()
    dyno = Dyno(tables, udfs=workload.udfs)
    block = dyno.prepare(workload.final_spec).block
    stats = oracle_leaf_stats(dyno.tables, block)
    plan = JoinOptimizer(
        block, stats, OptimizerConfig(max_broadcast_bytes=8)
    ).optimize().plan
    return dyno, block, plan


def test_ablation_dynamic_join(benchmark):
    def run():
        dyno_a, block_a, plan_a = _conservative_setup()
        plain = dyno_a.executor.execute_physical_plan(
            block_a, plan_a, strategy="SIMPLE_SO"
        )
        dyno_b, block_b, plan_b = _conservative_setup()
        dynamic = DynamicJoinExecutor(dyno_b.runtime,
                                      dyno_b.config).execute_plan(
            block_b, plan_b
        )
        return plain, dynamic

    plain, dynamic = run_once(benchmark, run)
    text = "\n".join([
        "== Ablation: dynamic join operator (Q9', SF=300, conservative "
        "all-repartition plan) ==",
        f"fixed execution:   {plain.execution_seconds:10.1f} s",
        f"dynamic switching: {dynamic.execution_seconds:10.1f} s "
        f"({dynamic.switches} joins switched to broadcast)",
        f"speedup:           "
        f"{plain.execution_seconds / dynamic.execution_seconds:10.2f} x",
    ])
    record("ablation_dynamic_join", text)
    assert dynamic.switches >= 2
    assert dynamic.execution_seconds < plain.execution_seconds
