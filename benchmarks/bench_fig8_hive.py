"""Figure 8: the same plan variants under the Hive backend (SF=300).

Paper: the trends match Jaql's, but broadcast-heavy queries gain more --
Q9' reaches 3.98x over the best static Hive plan (vs 1.88x under Jaql)
because Hive's map join distributes the build side once per node via the
DistributedCache.
"""

from repro.bench.experiments import figure8_hive

from .conftest import record, run_once


def test_fig8_hive(benchmark):
    table = run_once(benchmark, figure8_hive)
    record("fig8_hive", table.format())

    def pct(cell):
        return float(cell.rstrip("%"))

    rows = {row[0]: row for row in table.rows}
    # DYNO's plans still win under Hive, and Q9' by a larger factor than
    # the Jaql backend's Figure 7 result.
    assert pct(rows["Q9'"][3]) < 50.0
    assert pct(rows["Q8'"][4]) < 100.0
