"""Skew-join benchmark: ``./s`` vs the best feasible alternative.

On the seeded hot-key workload (two hot keys carrying 35% of the fact
table over a Zipf(1.2) tail, build side sized past both the broadcast
and hybrid-spill memory gates) this harness runs each skewed workload
twice through the full DYNOPT driver:

* **after**  -- the default optimizer (skew rule enabled): the plan
  must contain a skew join;
* **before** -- ``enable_skew_rule=False``: the optimizer picks the
  cheapest of broadcast/hybrid/repartition. Broadcast and hybrid are
  memory-infeasible here (reported in the output), so "best
  alternative" degenerates to the repartition join -- exactly the
  hot-key convoy the operator exists to beat.

Per workload it records the simulated end-to-end seconds and the
optimizer's estimated plan cost, in the ``BENCH_PR*.json`` schema
(``before_s``/``after_s``/``speedup``). ``--check`` re-validates a
recorded file (every speedup must stay > 1), which keeps the claim
"SKEWJOIN beats the best feasible alternative on simulated cost"
executable.

Usage::

    PYTHONPATH=src python benchmarks/bench_skew.py --output BENCH_PR7.json
    PYTHONPATH=src python benchmarks/bench_skew.py --check BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace
from pathlib import Path

from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.dyno import Dyno
from repro.data.schema import estimate_value_size
from repro.optimizer.plans import summarize_plan
from repro.workloads.skewed import SKEWED_WORKLOADS, generate_skewed

SEED = 2014


def _no_skew(config: DynoConfig) -> DynoConfig:
    return replace(config, optimizer=replace(config.optimizer,
                                             enable_skew_rule=False))


def _run(tables, name: str, config: DynoConfig):
    """One full DYNOPT run; returns (simulated_s, plan_cost, skew_joins)."""
    workload = SKEWED_WORKLOADS[name]()
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    execution = dyno.execute(workload.final_spec, mode="dynopt",
                             strategy="UNC-1", name=name)
    cost = sum(block.iterations[0].estimated_cost
               for block in execution.block_results if block.iterations)
    skew_joins = sum(summarize_plan(plan).skew_joins
                     for block in execution.block_results
                     for plan in block.plans)
    return execution.total_seconds, cost, skew_joins


def _feasibility(tables, config: DynoConfig) -> dict:
    """Why broadcast/hybrid are out: the users build side vs the gates."""
    optimizer = config.optimizer
    build_bytes = sum(estimate_value_size(row)
                      for row in tables["users"].rows)
    needed = build_bytes * optimizer.broadcast_safety_factor
    hybrid_limit = (optimizer.max_broadcast_bytes
                    * optimizer.spill_margin_factor)
    return {
        "users_build_bytes": build_bytes,
        "broadcast_limit_bytes": optimizer.max_broadcast_bytes,
        "broadcast_feasible": needed <= optimizer.max_broadcast_bytes,
        "hybrid_limit_bytes": int(hybrid_limit),
        "hybrid_feasible": needed <= hybrid_limit,
    }


def run_bench(scale: float, seed: int) -> dict:
    tables = generate_skewed(scale=scale, seed=seed)
    entries: dict[str, dict] = {}
    for name in sorted(SKEWED_WORKLOADS):
        after_s, after_cost, skew_joins = _run(tables, name,
                                               DEFAULT_CONFIG)
        before_s, before_cost, alt_skew = _run(tables, name,
                                               _no_skew(DEFAULT_CONFIG))
        if skew_joins < 1:
            raise SystemExit(f"{name}: default optimizer planned no "
                             "skew join; benchmark is vacuous")
        if alt_skew != 0:
            raise SystemExit(f"{name}: skew join planned with the rule "
                             "disabled")
        entries[f"{name.lower()}_sim_seconds"] = {
            "before_s": round(before_s, 6),
            "after_s": round(after_s, 6),
            "speedup": round(before_s / after_s, 3),
        }
        entries[f"{name.lower()}_plan_cost"] = {
            "before_s": round(before_cost, 6),
            "after_s": round(after_cost, 6),
            "speedup": round(before_cost / after_cost, 3),
        }
    return {
        "pr": 7,
        "schema_version": 1,
        "python": platform.python_version(),
        "workload": {"scale": scale, "seed": seed,
                     "alternatives": _feasibility(
                         generate_skewed(scale=scale, seed=seed),
                         DEFAULT_CONFIG)},
        "modes": {"full": {"mode": "full", "entries": entries}},
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    failures = []
    for mode in recorded["modes"].values():
        for name, entry in mode["entries"].items():
            if entry["speedup"] <= 1.0:
                failures.append(f"{name}: speedup {entry['speedup']} "
                                "<= 1.0 (skew join did not win)")
    for line in failures:
        print(f"FAIL {line}")
    if not failures:
        print(f"ok: {path} -- skew join beats the best feasible "
              "alternative on every recorded entry")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", metavar="PATH",
                        help="write results as JSON")
    parser.add_argument("--check", metavar="PATH",
                        help="validate a recorded results file instead "
                             "of benchmarking")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    if args.check:
        return check(Path(args.check))

    results = run_bench(args.scale, args.seed)
    for name, entry in results["modes"]["full"]["entries"].items():
        print(f"{name:32s} before={entry['before_s']:>12} "
              f"after={entry['after_s']:>12} x{entry['speedup']}")
    alternatives = results["workload"]["alternatives"]
    print(f"broadcast feasible: {alternatives['broadcast_feasible']}, "
          f"hybrid feasible: {alternatives['hybrid_feasible']} "
          f"(build {alternatives['users_build_bytes']}B)")
    if args.output:
        Path(args.output).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
