"""Ablation: the broadcast-chain rule (Section 5.2).

Without the chain rule every broadcast join runs as its own map-only job,
re-reading and re-writing the probe stream each time. Q9' -- whose plan is
a chain of dimension broadcasts over lineitem -- quantifies the win.
"""

from dataclasses import replace

from repro.bench.harness import dataset_for_paper_sf
from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.workloads.queries import q9_prime

from .conftest import record, run_once


def _run(enable_chain_rule: bool) -> float:
    config = replace(
        DEFAULT_CONFIG,
        optimizer=replace(DEFAULT_CONFIG.optimizer,
                          enable_chain_rule=enable_chain_rule),
    )
    tables = dataset_for_paper_sf(300).tables
    workload = q9_prime()
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    execution = dyno.execute(workload.final_spec, mode="simple",
                             strategy="SIMPLE_MO")
    return execution.execution_seconds


def test_ablation_chain_rule(benchmark):
    def run():
        return _run(True), _run(False)

    chained, unchained = run_once(benchmark, run)
    text = "\n".join([
        "== Ablation: broadcast-chain rule (Q9', SF=300) ==",
        f"with chain rule:    {chained:10.1f} s",
        f"without chain rule: {unchained:10.1f} s",
        f"chain-rule benefit: {unchained / chained:10.2f} x",
    ])
    record("ablation_chain_rule", text)
    assert chained < unchained
