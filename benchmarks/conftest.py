"""Shared plumbing for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
(Section 6). Results print to stdout (run with ``-s`` to see them live)
and are archived under ``benchmarks/results/``. Experiments are
deterministic, so every benchmark runs a single round.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> str:
    """Print an experiment's output and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
