"""Sustained multi-tenant serving benchmark: latency, throughput, caches.

The serving claim of ISSUE 9: with the scheduler front door, the service
sustains hundreds of queued queries from >= 3 tenants -- fairly
dispatched, byte-identical to a serial run -- and the result-set cache
turns recurring identities into near-free hits.

Protocol:

1. **serial reference** -- one pass of the mixed workload on a fresh
   ``workers=1`` service records each base query's reference rows
   (the differential-oracle standard of earlier PRs);
2. **uncached sustained run** -- N queries (the mixed sequence cycled
   across T tenants with varied priorities) are pushed through
   ``scheduler.run_sustained`` on a fresh multi-worker service with the
   result cache off; wall-clock start-to-drained gives throughput, each
   outcome carries its queue wait and end-to-end latency;
3. **cached sustained run** -- same load, fresh service, result cache
   on: recurring (block key x stats fingerprint x correction token)
   identities return cached rows without executing.

Every outcome of both sustained runs is checked byte-identical to the
serial reference for its query -- concurrency, fair scheduling and
caching change timing, never answers. Any mismatch or query error
refuses to record results.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --output BENCH_PR9.json
    PYTHONPATH=src python benchmarks/bench_serving.py --check BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.service import QueryRequest, QueryService
from repro.workloads.mixed import (
    mixed_batch,
    mixed_tables,
    mixed_tenant_batch,
)

SEED = 2014
SCALE = 0.02
EVENTS = 2000
QUERIES = 210
TENANTS = 3
WORKERS = 4


def _rows_key(rows) -> str:
    return json.dumps(
        sorted(json.dumps(row, sort_keys=True, default=str)
               for row in rows))


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _serial_reference(tables, udfs, base_requests) -> dict[str, str]:
    service = QueryService(dict(tables), udfs=udfs, workers=1)
    outcomes = service.run_batch(
        [QueryRequest(r.name, list(r.stages)) for r in base_requests])
    errors = [o.error for o in outcomes if o.error]
    if errors:
        raise SystemExit(f"serial reference failed: {errors}")
    return {o.name: _rows_key(o.rows) for o in outcomes}


def _sustained_run(tables, udfs, requests, workers: int,
                   reference: dict[str, str], cached: bool) -> dict:
    service = QueryService(dict(tables), udfs=udfs, workers=workers,
                           result_cache=cached)
    started = time.perf_counter()
    outcomes = service.scheduler.run_sustained(requests)
    wall = time.perf_counter() - started

    errors = [o.error for o in outcomes if o.error]
    if errors:
        raise SystemExit(f"sustained run failed: {errors}")
    if len(outcomes) != len(requests):
        raise SystemExit(
            f"lost queries: {len(outcomes)}/{len(requests)} drained")
    for outcome in outcomes:
        if _rows_key(outcome.rows) != reference[outcome.name]:
            raise SystemExit(
                f"byte-identity violated for {outcome.name} "
                f"(tenant {outcome.tenant}); refusing to record")

    latencies = [o.latency_seconds for o in outcomes]
    waits = [o.wait_seconds for o in outcomes]
    per_tenant = {}
    for outcome in outcomes:
        per_tenant.setdefault(outcome.tenant, []).append(outcome)
    tenants = {
        tenant: {
            "queries": len(group),
            "p50_latency_s": round(_percentile(
                [o.latency_seconds for o in group], 0.50), 6),
            "p99_latency_s": round(_percentile(
                [o.latency_seconds for o in group], 0.99), 6),
            "mean_wait_s": round(
                sum(o.wait_seconds for o in group) / len(group), 6),
            "result_cache_hits": sum(
                1 for o in group if o.result_cache_hit),
        }
        for tenant, group in sorted(per_tenant.items())
    }
    result = {
        "queries": len(outcomes),
        "wall_s": round(wall, 3),
        "throughput_qps": round(len(outcomes) / wall, 2),
        "p50_latency_s": round(_percentile(latencies, 0.50), 6),
        "p99_latency_s": round(_percentile(latencies, 0.99), 6),
        "mean_wait_s": round(sum(waits) / len(waits), 6),
        "tenants": tenants,
        "plan_cache": service.plan_cache.summary(),
        "byte_identical_to_serial": True,
    }
    if service.result_cache is not None:
        result["result_cache"] = service.result_cache.summary()
    return result


def run_bench(scale: float, seed: int, events: int, queries: int,
              tenants: int, workers: int) -> dict:
    if tenants < 3:
        raise SystemExit("the serving benchmark needs >= 3 tenants")
    tables = mixed_tables(scale, seed=seed, weblog_events=events)
    base_requests, udfs = mixed_batch()
    reference = _serial_reference(tables, udfs, base_requests)
    requests, _ = mixed_tenant_batch(queries, tenants)

    uncached = _sustained_run(tables, udfs, requests, workers,
                              reference, cached=False)
    cached = _sustained_run(tables, udfs, requests, workers,
                            reference, cached=True)
    speedup = (uncached["wall_s"] / cached["wall_s"]
               if cached["wall_s"] else 0.0)
    return {
        "pr": 9,
        "schema_version": 1,
        "python": platform.python_version(),
        "workload": {
            "scale": scale,
            "seed": seed,
            "weblog_events": events,
            "queries": queries,
            "tenants": tenants,
            "workers": workers,
            "sequence": sorted({r.name for r in base_requests}),
            "protocol": "serial reference, then sustained queued load "
                        "uncached and cached; every outcome checked "
                        "byte-identical to the reference",
        },
        "modes": {
            "uncached": uncached,
            "cached": cached,
        },
        "result_cache_speedup": round(speedup, 3),
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    failures = []
    for mode in ("uncached", "cached"):
        entry = recorded["modes"][mode]
        if not entry.get("byte_identical_to_serial"):
            failures.append(f"{mode}: not byte-identical to serial")
        if entry["throughput_qps"] <= 0:
            failures.append(f"{mode}: throughput {entry['throughput_qps']}")
        if entry["p99_latency_s"] < entry["p50_latency_s"]:
            failures.append(f"{mode}: p99 < p50")
        if len(entry["tenants"]) < 3:
            failures.append(f"{mode}: {len(entry['tenants'])} tenant(s) "
                            "recorded, need >= 3")
        counts = [t["queries"] for t in entry["tenants"].values()]
        if max(counts) - min(counts) > 1:
            failures.append(f"{mode}: uneven tenant completion {counts}")
    cached = recorded["modes"]["cached"]
    if cached.get("result_cache", {}).get("hits", 0) == 0:
        failures.append("cached mode recorded zero result-cache hits")
    if recorded["result_cache_speedup"] <= 1.0:
        failures.append(
            f"result cache slowed the sustained run down "
            f"(x{recorded['result_cache_speedup']})")
    for line in failures:
        print(f"FAIL {line}")
    if not failures:
        print(f"ok: {path} -- {cached['throughput_qps']} qps cached / "
              f"{recorded['modes']['uncached']['throughput_qps']} qps "
              f"uncached over {cached['queries']} queries, "
              f"{len(cached['tenants'])} tenants, byte-identical")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", metavar="PATH",
                        help="write results as JSON")
    parser.add_argument("--check", metavar="PATH",
                        help="validate a recorded results file instead "
                             "of benchmarking")
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--events", type=int, default=EVENTS)
    parser.add_argument("--queries", type=int, default=QUERIES)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    args = parser.parse_args(argv)

    if args.check:
        return check(Path(args.check))

    results = run_bench(args.scale, args.seed, args.events,
                        args.queries, args.tenants, args.workers)
    for mode in ("uncached", "cached"):
        entry = results["modes"][mode]
        print(f"{mode:>9}: {entry['queries']} queries in "
              f"{entry['wall_s']}s = {entry['throughput_qps']} qps, "
              f"p50 {entry['p50_latency_s']}s / "
              f"p99 {entry['p99_latency_s']}s")
    print(f"result-cache speedup: x{results['result_cache_speedup']}")
    if args.output:
        Path(args.output).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
