"""Figure 5: execution strategies for DYNOPT / DYNOPT-SIMPLE (SF=300).

Paper: SIMPLE_MO always outperforms SIMPLE_SO (better cluster overlap);
for DYNOPT, more parallelism is not always better because it removes
re-optimization points -- UNC-1 wins for Q7 and Q8'; on Q10 the chosen
plan leaves little room and strategies converge.
"""

from repro.bench.experiments import figure5_strategies

from .conftest import record, run_once


def test_fig5_strategies(benchmark):
    table = run_once(benchmark, figure5_strategies)
    record("fig5_strategies", table.format())

    def pct(cell):
        return float(cell.rstrip("%"))

    for row in table.rows:
        query, so, mo = row[0], pct(row[1]), pct(row[2])
        assert so == 100.0
        # MO never loses to SO (equal when the plan is one job).
        assert mo <= so + 1e-6, (query, mo)
