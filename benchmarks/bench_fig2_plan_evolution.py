"""Figure 2: plan evolution for Q8' under DYNOPT.

Paper: the traditional optimizer emits one fixed plan; DYNO starts from a
pilot-run-informed plan and re-optimizes after each executed job, changing
the plan as the UDF's true selectivity becomes visible.
"""

from repro.bench.experiments import figure2_plan_evolution

from .conftest import record, run_once


def test_fig2_plan_evolution(benchmark):
    evolution = run_once(benchmark, figure2_plan_evolution)
    record("fig2_plan_evolution", evolution.format())
    assert evolution.relopt_plan
    assert len(evolution.dyno_plans) >= 1
    # Signatures are recorded for every re-optimization point.
    assert len(evolution.signatures) == len(evolution.dyno_plans)
