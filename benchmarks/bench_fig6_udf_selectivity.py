"""Figure 6: Q9' runtime vs dimension-UDF selectivity (SF=300).

Paper: DYNOPT-SIMPLE (pilot runs) beats RELOPT by ~1.7-1.8x at 0.01%-0.1%
selectivity, ~1.15x at 1%-10%, and converges to parity at 100% where both
pick the same (repartition-dominated) plan. The speedup shrinks as the
filtered dimensions stop fitting in memory and the job count grows.
"""

from repro.bench.experiments import figure6_udf_selectivity

from .conftest import record, run_once


def test_fig6_udf_selectivity(benchmark):
    table = run_once(benchmark, figure6_udf_selectivity)
    record("fig6_udf_selectivity", table.format())
    speedups = [float(row[3].rstrip("x")) for row in table.rows]
    jobs = [row[4] for row in table.rows]
    # Big wins at high selectivity (small dimensions)...
    assert speedups[0] > 1.5
    assert speedups[1] > 1.5
    # ...decaying monotonically-ish to parity at 100%.
    assert speedups[-1] < 1.25
    assert min(speedups) > 0.9
    # The number of jobs grows as fewer dimensions fit together.
    assert jobs[0] <= jobs[-1]
