"""Figure 4: overhead of pilot runs, re-optimization, stats collection.

Paper (SF=300): re-optimization <0.25% except Q8' (~7%); pilot runs
2.5%-6.7%; statistics collection 0.1%-2.8%; total overhead 7%-10%.
At simulation scale fixed costs weigh relatively more, so the bands are
wider here; the *ordering* (pilots > stats > re-opt, except Q8''s
re-optimization spike) is asserted.
"""

from repro.bench.experiments import figure4_overhead

from .conftest import record, run_once


def test_fig4_overhead(benchmark):
    table = run_once(benchmark, figure4_overhead)
    record("fig4_overhead", table.format())
    by_query = {row[0]: row for row in table.rows}

    def pct(cell):
        return float(cell.rstrip("%"))

    for query, row in by_query.items():
        assert pct(row[3]) > 0.0, f"{query}: pilot overhead missing"
        assert pct(row[5]) < 60.0, f"{query}: total overhead exploded"
    # Q8' (8-way join) has by far the largest re-optimization share.
    reopt = {query: pct(row[2]) for query, row in by_query.items()}
    assert reopt["Q8'"] == max(reopt.values())
    assert reopt["Q8'"] > 3 * min(reopt.values())
