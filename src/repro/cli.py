"""Command-line interface: run queries on a generated TPC-H cluster.

Examples::

    # one of the paper's workloads, with plans and timing breakdown
    python -m repro --workload Q10 --paper-sf 100 --show-plans

    # ad-hoc SQL under the Hive backend, EXPLAIN only
    python -m repro --sql "SELECT n.n_name AS n FROM nation n, region r \
        WHERE n.n_regionkey = r.r_regionkey" --backend hive --explain

    # persist pilot-run statistics across invocations
    python -m repro --workload Q9' --save-stats stats.json
    python -m repro --workload Q9' --load-stats stats.json
"""

from __future__ import annotations

import argparse
import sys

from repro.config import DEFAULT_CONFIG
from repro.core.dyno import Dyno
from repro.data.tpch import PAPER_SCALE_FACTORS, generate_tpch
from repro.errors import DynoError
from repro.obs import JsonLinesSink, MetricsRegistry, Tracer
from repro.workloads.queries import TPCH_WORKLOADS, q3
from repro.workloads.skewed import SKEWED_WORKLOADS, generate_skewed


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0.0:
        raise argparse.ArgumentTypeError(
            f"must be > 0 (the generator cannot build a {value}-scale "
            f"dataset)")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be > 0 (a {value}-byte memory budget admits nothing)")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (cannot print {value} rows)")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DYNO (SIGMOD 2014) reproduction: dynamically "
                    "optimized queries over a simulated MapReduce cluster.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload",
        choices=sorted(TPCH_WORKLOADS) + ["Q3"] + sorted(SKEWED_WORKLOADS),
        help="one of the paper's TPC-H workloads, or a skewed hot-key "
             "workload (implies --skew)",
    )
    source.add_argument("--sql", help="ad-hoc SQL text to execute")
    source.add_argument("--sql-file", help="file containing SQL text")
    source.add_argument(
        "--batch", choices=["mixed"],
        help="run a query batch through the QueryService (concurrent "
             "drivers, shared metastore, pilot skipping, plan cache); "
             "'mixed' is TPC-H + weblogs with repeats",
    )
    source.add_argument(
        "--standing", action="store_true",
        help="run the changing-data scenario: register standing weblog "
             "queries, apply seeded CDC batches, and keep results fresh "
             "via cardinality-chosen delta refresh or full recompute "
             "(see docs/incremental.md)",
    )
    parser.add_argument(
        "--changes", type=_positive_int, default=None, metavar="N",
        help="number of change batches for --standing (default: one "
             "pass over the scenario's step list)",
    )
    parser.add_argument(
        "--change-rate", type=_positive_float, default=None, metavar="R",
        help="override every --standing step's change rate (fraction "
             "of the table touched per batch)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-batch differential check of --standing "
             "(maintained result vs from-scratch recompute)",
    )
    parser.add_argument(
        "--service-workers", type=int, default=4, metavar="N",
        help="driver threads for --batch (default 4; results are "
             "identical at any worker count)",
    )
    parser.add_argument(
        "--tenants", type=_positive_int, default=1, metavar="N",
        help="replicate the --batch workload across N tenants with "
             "varied priorities; the scheduler's deficit-weighted "
             "round robin shares admission slots fairly between them "
             "(default 1)",
    )
    parser.add_argument(
        "--qps", type=_positive_float, default=None, metavar="RATE",
        help="submit --batch queries at RATE per second through the "
             "long-lived scheduler queue instead of all at once; "
             "reports queue wait and end-to-end latency per tenant",
    )
    parser.add_argument(
        "--result-cache", action="store_true",
        help="enable the result-set cache for --batch: a recurring "
             "(block key x stats fingerprint x correction token) "
             "identity returns cached rows without executing",
    )

    parser.add_argument(
        "--skew", action="store_true",
        help="generate the seeded hot-key dataset (Zipfian clicks x "
             "oversized users x pages) instead of TPC-H; default scale "
             "factor becomes 1.0 so the skew join is in play",
    )

    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--scale-factor", type=_positive_float, default=None,
                       help="generator scale factor, > 0 (default 0.25)")
    scale.add_argument("--paper-sf", type=int,
                       choices=sorted(PAPER_SCALE_FACTORS),
                       help="use the paper's SF 100/300/1000 mapping")

    parser.add_argument("--mode", choices=["dynopt", "simple"],
                        default="dynopt")
    parser.add_argument("--strategy", default="UNC-1",
                        help="execution strategy (UNC-1/2, CHEAP-1/2, "
                             "SIMPLE_SO/MO)")
    parser.add_argument("--backend", choices=["jaql", "hive"],
                        default="jaql")
    parser.add_argument("--pilot-mode", choices=["MT", "ST"], default="MT")
    parser.add_argument("--parallel", action="store_true",
                        help="run dependency-free leaf jobs on a worker "
                             "pool (results identical to serial execution)")
    parser.add_argument("--columnar", action="store_true",
                        help="execute tasks over column batches (vectorized "
                             "scan/filter/join/aggregate; results identical "
                             "to the row engine)")
    parser.add_argument("--task-memory", type=_positive_int, default=None,
                        metavar="BYTES",
                        help="per-task memory budget Mmax in bytes: caps "
                             "broadcast build sides and the spill join's "
                             "resident share (default: config)")
    parser.add_argument("--cluster-memory", type=_positive_int, default=None,
                        metavar="BYTES",
                        help="cluster-wide memory pool in bytes, governing "
                             "concurrent job and query admission (default: "
                             "map slots x task memory)")
    parser.add_argument("--fault-plan", metavar="PATH",
                        help="arm a JSON fault plan (see docs/testing.md): "
                             "inject deterministic task/job failures, "
                             "stragglers and node losses; results are "
                             "identical to a fault-free run")
    parser.add_argument("--explain", action="store_true",
                        help="plan only; do not execute the query")
    parser.add_argument("--show-plans", action="store_true",
                        help="print the plan of every (re)optimization")
    parser.add_argument("--limit", type=_non_negative_int, default=10,
                        help="result rows to print, >= 0 (default 10)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--load-stats", metavar="PATH",
                        help="pre-load a statistics metastore file")
    parser.add_argument("--save-stats", metavar="PATH",
                        help="persist the statistics metastore afterwards")
    parser.add_argument("--feedback", action="store_true",
                        help="close the workload feedback loop: audit every "
                             "estimate, learn per-signature selectivity "
                             "corrections, auto-tune pilot samples, track "
                             "plan-choice regret (see docs/feedback.md)")
    parser.add_argument("--feedback-report", action="store_true",
                        help="print the feedback store's correction / "
                             "pilot-tuning / regret report afterwards "
                             "(implies --feedback)")
    parser.add_argument("--load-feedback", metavar="PATH",
                        help="pre-load a feedback store file (implies "
                             "--feedback)")
    parser.add_argument("--save-feedback", metavar="PATH",
                        help="persist the feedback store afterwards "
                             "(implies --feedback)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSON-lines trace of the query "
                             "lifecycle (see docs/observability.md)")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write a metrics summary JSON after the run")
    parser.add_argument("--profile", action="store_true",
                        help="print a driver/simulated time and "
                             "estimate-quality breakdown after the run")
    return parser


def _scale_factor(args: argparse.Namespace, default: float = 0.25) -> float:
    if args.paper_sf is not None:
        return PAPER_SCALE_FACTORS[args.paper_sf]
    if args.scale_factor is not None:
        return args.scale_factor
    return default


def _resolve_workload(args: argparse.Namespace):
    if args.workload:
        if args.workload in SKEWED_WORKLOADS:
            factory = SKEWED_WORKLOADS[args.workload]
        elif args.workload == "Q3":
            factory = q3
        else:
            factory = TPCH_WORKLOADS[args.workload]
        return factory()
    return None


def _apply_memory(config, args: argparse.Namespace):
    """Apply --task-memory / --cluster-memory overrides, if any."""
    if args.task_memory is None and args.cluster_memory is None:
        return config
    return config.with_memory(task_memory_bytes=args.task_memory,
                              cluster_memory_bytes=args.cluster_memory)


def _build_feedback(args: argparse.Namespace, out):
    """Construct the feedback store when any --feedback* flag asks for it."""
    if not (args.feedback or args.feedback_report
            or args.load_feedback or args.save_feedback):
        return None
    from repro.feedback import FeedbackStore

    if args.load_feedback:
        feedback = FeedbackStore.load(args.load_feedback)
        print(f"loaded feedback store from {args.load_feedback} "
              f"({len(feedback)} correction key(s))", file=out)
    else:
        feedback = FeedbackStore()
    return feedback


def _finish_feedback(feedback, args: argparse.Namespace, out) -> None:
    """Report / persist the feedback store after a run."""
    if feedback is None:
        return
    if args.feedback_report:
        print("\n" + feedback.report(), file=out)
    if args.save_feedback:
        feedback.save(args.save_feedback)
        print(f"saved feedback store to {args.save_feedback}", file=out)


def _print_tenant_stats(outcomes, out) -> None:
    """Per-tenant wait / end-to-end latency table for queued runs."""
    by_tenant: dict[str, list] = {}
    for outcome in outcomes:
        by_tenant.setdefault(outcome.tenant, []).append(outcome)
    print(f"\n{'tenant':<12} {'queries':>8} {'errors':>7} "
          f"{'mean wait':>10} {'p99 latency':>12}", file=out)
    for tenant in sorted(by_tenant):
        group = by_tenant[tenant]
        waits = [o.wait_seconds for o in group]
        latencies = sorted(o.latency_seconds for o in group)
        p99 = latencies[min(len(latencies) - 1,
                            int(0.99 * len(latencies)))]
        print(f"{tenant:<12} {len(group):>8} "
              f"{sum(1 for o in group if not o.ok):>7} "
              f"{sum(waits) / len(waits):>9.4f}s {p99:>11.4f}s", file=out)


def _run_service(args: argparse.Namespace, out) -> int:
    """--batch: execute a mixed workload through the QueryService."""
    from repro.service import QueryService
    from repro.workloads.mixed import (
        mixed_batch,
        mixed_tables,
        mixed_tenant_batch,
    )

    scale_factor = _scale_factor(args)
    print(f"generating TPC-H + weblogs at scale factor {scale_factor} ...",
          file=out)
    tables = mixed_tables(scale_factor, seed=args.seed)
    if args.tenants > 1:
        base, udfs = mixed_batch()
        requests, _ = mixed_tenant_batch(len(base) * args.tenants,
                                         args.tenants)
    else:
        requests, udfs = mixed_batch()
    for request in requests:
        request.mode = args.mode
        request.strategy = args.strategy
        request.pilot_mode = args.pilot_mode

    config = _apply_memory(DEFAULT_CONFIG.with_backend(args.backend), args)
    if args.columnar:
        config = config.with_columnar()
    if args.parallel:
        config = config.with_parallel_execution()
    tracer = Tracer(JsonLinesSink(args.trace)) if args.trace else None
    metrics = MetricsRegistry() if (args.metrics or args.profile) else None
    feedback = _build_feedback(args, out)
    service = QueryService(tables, config=config, udfs=udfs,
                           tracer=tracer, metrics=metrics,
                           workers=args.service_workers,
                           feedback=feedback,
                           result_cache=args.result_cache)
    if args.load_stats:
        count = service.dyno.load_statistics(args.load_stats)
        print(f"loaded {count} statistics entries from "
              f"{args.load_stats}", file=out)

    mode = (f"sustained at {args.qps} qps" if args.qps
            else "as one batch")
    print(f"running {len(requests)} queries from {args.tenants} "
          f"tenant(s) {mode} on {args.service_workers} driver "
          f"thread(s) ...", file=out)
    try:
        if args.qps:
            outcomes = service.scheduler.run_sustained(requests,
                                                       qps=args.qps)
        else:
            outcomes = service.run_batch(requests)
    except DynoError as error:
        print(f"error: {error}", file=out)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
            print(f"wrote trace to {args.trace}", file=out)

    print(f"\n{'query':<20} {'tenant':<12} {'rows':>6} {'pilots':>7} "
          f"{'skipped':>8} {'plan hits':>10} {'cached':>7}", file=out)
    failed = 0
    for outcome in outcomes:
        if not outcome.ok:
            failed += 1
            print(f"{outcome.name:<20} {outcome.tenant:<12} "
                  f"error: {outcome.error}", file=out)
            continue
        print(f"{outcome.name:<20} {outcome.tenant:<12} "
              f"{len(outcome.rows):>6} "
              f"{outcome.pilot_jobs:>7} {outcome.pilots_skipped:>8} "
              f"{outcome.plan_cache_hits:>10} "
              f"{'yes' if outcome.result_cache_hit else '':>7}", file=out)
    if args.tenants > 1 or args.qps:
        _print_tenant_stats(outcomes, out)
    cache = service.plan_cache.summary()
    print(f"\nplan cache: {cache['hits']} hit(s), {cache['misses']} "
          f"miss(es), {cache['invalidations']} invalidation(s) across "
          f"{cache['shards']} shard(s)", file=out)
    if service.result_cache is not None:
        rcache = service.result_cache.summary()
        print(f"result cache: {rcache['hits']} hit(s), "
              f"{rcache['misses']} miss(es), "
              f"{rcache['invalidations']} invalidation(s), "
              f"{rcache['entries']} entries", file=out)
    print(f"metastore: {len(service.metastore)} statistics entries",
          file=out)

    if args.metrics:
        metrics.save(args.metrics)
        print(f"wrote metrics summary to {args.metrics}", file=out)
    if args.profile:
        _print_profile(metrics.summary(), out)
    if args.save_stats:
        service.dyno.save_statistics(args.save_stats)
        print(f"saved statistics to {args.save_stats}", file=out)
    _finish_feedback(feedback, args, out)
    return 1 if failed else 0


def _run_standing(args: argparse.Namespace, out) -> int:
    """--standing: the changing-data scenario (docs/incremental.md)."""
    import itertools

    from repro.incremental import (
        ChangeGenerator,
        StandingQueryManager,
        apply_change_batch,
    )
    from repro.service import QueryRequest, QueryService
    from repro.validation import canonical_rows
    from repro.workloads.changing import (
        DEFAULT_STEPS,
        KEY_COLUMNS,
        changing_tables,
        changing_udfs,
        standing_workloads,
    )
    from repro.workloads.weblogs import weblog_premium_blink

    scale_factor = _scale_factor(args)
    print(f"generating weblogs at scale factor {scale_factor} ...",
          file=out)
    tables = changing_tables(scale_factor, seed=args.seed)

    config = _apply_memory(DEFAULT_CONFIG.with_backend(args.backend), args)
    if args.columnar:
        config = config.with_columnar()
    if args.parallel:
        config = config.with_parallel_execution()
    tracer = Tracer(JsonLinesSink(args.trace)) if args.trace else None
    metrics = MetricsRegistry() if (args.metrics or args.profile) else None
    feedback = _build_feedback(args, out)
    service = QueryService(tables, config=config, udfs=changing_udfs(),
                           tracer=tracer, metrics=metrics,
                           workers=args.service_workers,
                           feedback=feedback,
                           result_cache=args.result_cache)

    workloads = standing_workloads()
    manager = StandingQueryManager(service)
    adhoc_workload = weblog_premium_blink()

    count = args.changes if args.changes is not None else len(DEFAULT_STEPS)
    steps = list(itertools.islice(itertools.cycle(DEFAULT_STEPS), count))

    exit_code = 0
    try:
        for workload in workloads:
            standing = manager.register(workload.name, workload.final_spec)
            print(f"registered {workload.name}: "
                  f"{len(standing.state)} state row(s), reads "
                  f"{', '.join(sorted(standing.base_tables))}", file=out)

        generators = {
            table: ChangeGenerator(service.dyno.tables[table],
                                   KEY_COLUMNS[table], seed=args.seed)
            for table in KEY_COLUMNS
        }
        delta_total = full_total = 0
        for step in steps:
            rate = args.change_rate or step.change_rate
            batch = generators[step.table].next_batch(rate, step.mix)
            applied = apply_change_batch(service.dyno, batch,
                                         KEY_COLUMNS[step.table])
            adhoc = [QueryRequest.from_workload(adhoc_workload,
                                                tenant="adhoc")]
            report = manager.refresh(applied, adhoc=adhoc)
            print(f"\nchange batch {batch.describe()} "
                  f"({applied.delta_rows} delta row(s)):", file=out)
            for outcome in report.outcomes:
                if not outcome.ok:
                    exit_code = 1
                    print(f"  {outcome.query:<20} ERROR {outcome.error}",
                          file=out)
                    continue
                decision = outcome.decision
                print(f"  {outcome.query:<20} strategy={decision.strategy}"
                      f" ratio={decision.ratio:6.1%} rows={outcome.rows}"
                      f" sim={outcome.simulated_seconds:.1f}s", file=out)
            for outcome in report.adhoc:
                status = ("ok" if outcome.ok
                          else f"ERROR {outcome.error}")
                print(f"  adhoc {outcome.name:<14} {status} "
                      f"rows={len(outcome.rows)}", file=out)
            delta_total += report.delta_count
            full_total += report.full_count

            if not args.no_verify:
                for workload in workloads:
                    fresh = Dyno(dict(service.dyno.tables),
                                 udfs=changing_udfs())
                    expected = fresh.execute(workload.final_spec).rows
                    maintained = manager.result(workload.name)
                    if canonical_rows(maintained, float_places=6) \
                            != canonical_rows(expected, float_places=6):
                        exit_code = 1
                        print(f"  VERIFY FAILED {workload.name}: "
                              "maintained result diverged from "
                              "recompute", file=out)
                    else:
                        print(f"  verified {workload.name}: maintained "
                              "== recompute "
                              f"({len(maintained)} row(s))", file=out)

        print(f"\nrefresh summary: {delta_total} delta, {full_total} "
              f"full across {len(steps)} change batch(es)", file=out)
        print(f"metastore: {len(service.metastore)} statistics entries",
              file=out)
    except DynoError as error:
        print(f"error: {error}", file=out)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
            print(f"wrote trace to {args.trace}", file=out)

    if args.metrics:
        metrics.save(args.metrics)
        print(f"wrote metrics summary to {args.metrics}", file=out)
    if args.profile:
        _print_profile(metrics.summary(), out)
    if args.save_stats:
        service.dyno.save_statistics(args.save_stats)
        print(f"saved statistics to {args.save_stats}", file=out)
    _finish_feedback(feedback, args, out)
    return exit_code


def main(argv: list[str] | None = None,
         out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.batch:
        return _run_service(args, out)
    if args.standing:
        return _run_standing(args, out)

    skewed = args.skew or args.workload in SKEWED_WORKLOADS
    if skewed:
        scale_factor = _scale_factor(args, default=1.0)
        print(f"generating skewed hot-key dataset at scale factor "
              f"{scale_factor} ...", file=out)
        tables = generate_skewed(scale_factor, seed=args.seed)
    else:
        scale_factor = _scale_factor(args)
        print(f"generating TPC-H at scale factor {scale_factor} ...",
              file=out)
        tables = generate_tpch(scale_factor, seed=args.seed).tables

    workload = _resolve_workload(args)
    config = _apply_memory(DEFAULT_CONFIG.with_backend(args.backend), args)
    if args.columnar:
        config = config.with_columnar()
    if args.parallel:
        config = config.with_parallel_execution()
    if args.fault_plan:
        from repro.cluster.faults import FaultPlan
        try:
            with open(args.fault_plan) as handle:
                plan = FaultPlan.from_json(handle.read())
        except (OSError, DynoError) as error:
            print(f"error: cannot load fault plan: {error}", file=out)
            return 1
        config = config.with_fault_plan(plan)
        print(f"armed fault plan {plan.name or '<unnamed>'} "
              f"(seed {plan.seed})", file=out)

    tracer = Tracer(JsonLinesSink(args.trace)) if args.trace else None
    metrics = MetricsRegistry() if (args.metrics or args.profile) else None
    feedback = _build_feedback(args, out)
    dyno = Dyno(tables, config=config,
                udfs=workload.udfs if workload else None,
                tracer=tracer, metrics=metrics, feedback=feedback)

    if args.load_stats:
        count = dyno.load_statistics(args.load_stats)
        print(f"loaded {count} statistics entries from "
              f"{args.load_stats}", file=out)

    if args.sql_file:
        with open(args.sql_file) as handle:
            query_text = handle.read()
    else:
        query_text = args.sql

    try:
        if args.explain:
            query = workload.final_spec if workload else query_text
            print(dyno.explain(query, name="cli"), file=out)
        elif workload and len(workload.stages) > 1:
            execution = dyno.execute_multi(
                workload.stages, mode=args.mode, strategy=args.strategy,
                pilot_mode=args.pilot_mode,
            )
            _report(execution, args, out)
        else:
            query = workload.final_spec if workload else query_text
            execution = dyno.execute(
                query, mode=args.mode, strategy=args.strategy,
                pilot_mode=args.pilot_mode, name="cli",
            )
            _report(execution, args, out)
    except DynoError as error:
        print(f"error: {error}", file=out)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
            print(f"wrote trace to {args.trace}", file=out)

    injector = dyno.runtime.fault_injector
    if injector is not None:
        print(f"\nfault injection: {injector.summary()}", file=out)

    if args.metrics:
        metrics.save(args.metrics)
        print(f"wrote metrics summary to {args.metrics}", file=out)
    if args.profile:
        _print_profile(metrics.summary(), out)

    if args.save_stats:
        dyno.save_statistics(args.save_stats)
        print(f"saved statistics to {args.save_stats}", file=out)
    _finish_feedback(feedback, args, out)
    return 0


def _print_profile(summary: dict, out) -> None:
    """Human-readable breakdown of the run's metrics summary."""
    counters = summary["counters"]
    observations = summary["observations"]

    def obs_line(label: str, name: str, unit: str = "s") -> None:
        stats = observations.get(name)
        if not stats:
            return
        print(f"  {label:<22} total {stats['total']:10.3f} {unit}  "
              f"mean {stats['mean']:8.3f}  max {stats['max']:8.3f}  "
              f"(n={stats['count']})", file=out)

    print("\nprofile:", file=out)
    print("driver wall-clock:", file=out)
    obs_line("query", "query.driver_wall_s")
    obs_line("leaf jobs", "job.driver_wall_s")
    print("simulated time:", file=out)
    obs_line("pilot runs", "query.sim_pilot_s")
    obs_line("optimizer", "query.sim_optimizer_s")
    obs_line("plan execution", "query.sim_execution_s")
    obs_line("batch makespan", "batch.makespan_s")
    if "qerror.rows" in observations or "qerror.bytes" in observations:
        print("estimate quality (q-error, 1.0 = perfect):", file=out)
        obs_line("rows", "qerror.rows", unit=" ")
        obs_line("bytes", "qerror.bytes", unit=" ")
    interesting = ("queries.executed", "jobs.executed",
                   "dynopt.optimizations", "dynopt.subplans_executed",
                   "dynopt.estimate_misses", "dynopt.replans",
                   "dynopt.recovered_jobs", "pilot.jobs_run",
                   "pilot.reused", "faults.events", "faults.task_retries",
                   "faults.stragglers", "faults.node_losses")
    lines = [(name, counters[name]) for name in interesting
             if counters.get(name)]
    if lines:
        print("counters:", file=out)
        for name, value in lines:
            if value == int(value):
                value = int(value)
            print(f"  {name:<26} {value}", file=out)


def _report(execution, args: argparse.Namespace, out) -> None:
    rows = execution.rows
    print(f"\n{len(rows)} result row(s); showing up to {args.limit}:",
          file=out)
    for row in rows[: args.limit]:
        print(f"  {row}", file=out)

    print("\nsimulated time:", file=out)
    print(f"  pilot runs     {execution.pilot_seconds:10.1f} s", file=out)
    print(f"  optimizer      {execution.optimizer_seconds:10.2f} s",
          file=out)
    print(f"  plan execution {execution.execution_seconds:10.1f} s",
          file=out)
    print(f"  total          {execution.total_seconds:10.1f} s", file=out)

    if args.show_plans:
        for block_result in execution.block_results:
            print(f"\nblock {block_result.block_name}:", file=out)
            for record in block_result.iterations:
                print(f"-- iteration {record.index} "
                      f"({record.makespan_seconds:.1f}s, jobs "
                      f"{record.jobs_executed}) --", file=out)
                print(record.plan_text, file=out)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
