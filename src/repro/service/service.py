"""QueryService: a concurrent multi-query front end over one shared stack.

This is the serving layer the ROADMAP's north star asks for: many queries
against ONE :class:`~repro.storage.dfs.DistributedFileSystem`, ONE
:class:`~repro.cluster.runtime.ClusterRuntime` (so all queries compete for
the same simulated slots), and ONE persistent
:class:`~repro.stats.metastore.StatisticsMetastore` -- which is what makes
Section 4.1's statistics reuse observable end to end:

* **pilot-run skipping** -- before PILR, the metastore is probed by leaf
  signature; pilots run only for unseen signatures (a ``pilot_skipped``
  trace event per hit);
* **plan caching** -- optimizer results are cached by (canonical join-block
  key, statistics fingerprint) and invalidated when any contributing leaf's
  statistics are updated (:mod:`repro.service.plan_cache`);
* **concurrent admission** -- N driver threads execute queries in parallel,
  sharing the cluster's slots through the (now reentrant)
  :class:`~repro.cluster.scheduler.SlotScheduler` behind the runtime's
  batch lock.

Isolation and determinism
-------------------------

Every admitted query is renamed under a unique ``q<index>`` prefix.
Compiled job names, DFS intermediate files, pilot counters and tracer
spans all derive from the block (= spec) name, so two concurrent copies of
the same query never collide in the shared namespace. Multi-block
workloads additionally rename their intermediate *tables* (and the later
stages' scans of them) under the same prefix.

Pilot ownership is decided at admission time, serially, in submission
order: each base-leaf signature is classified as *known* (already in the
metastore), *claimed* (this query will run its pilot), or *waiting*
(an earlier in-flight query claimed it; this query blocks on that query's
completion before starting). Claims make the set of pilot jobs -- and
therefore every reuse trace -- a function of the submitted batch alone,
not of thread timing; results are byte-identical regardless (plans never
change answers, only timings).

Fault plans are a single-driver feature: ``run_batch`` refuses to run
concurrently with an armed fault injector, since fault suspension during
pilots is runtime-global (``workers=1`` batches run fault plans fine).

Memory backpressure
-------------------

Each request may declare a memory demand
(:attr:`QueryRequest.memory_demand_bytes`); the service holds a gate over
the cluster memory pool and *blocks admission* of a query whose demand
would push the aggregate of running queries past the pool. Blocked
queries are granted memory in deterministic FIFO submission order (no
bypass), each wait traced as an ``admission_wait`` span. Backpressure
changes only timing, never results: concurrent outcomes stay
byte-identical to a serial run.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.dyno import Dyno, QueryExecution
from repro.core.dynopt import MODE_DYNOPT
from repro.data.table import Row, Table
from repro.errors import DynoError, PlanError
from repro.jaql.expr import QuerySpec, Scan, transform_bottom_up
from repro.jaql.functions import UdfRegistry
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.service.plan_cache import PlanCache
from repro.service.result_cache import (
    RequestIdentity,
    ResultCache,
    request_identity,
)
from repro.stats.metastore import StatisticsMetastore


@dataclass
class QueryRequest:
    """One query submitted to the service.

    ``stages`` follows :meth:`Dyno.execute_multi`: a list of
    ``(QuerySpec or SQL text, output table name)`` pairs, the final stage's
    output name being ``None``. Single-block queries are one-element lists.
    """

    name: str
    stages: list[tuple[QuerySpec | str, str | None]]
    mode: str = MODE_DYNOPT
    strategy: str = "UNC-1"
    pilot_mode: str = "MT"
    #: declared build/buffer memory this query needs while running; 0
    #: admits immediately (no governance). Demands above the cluster pool
    #: are clamped, so an oversized query runs alone instead of never.
    memory_demand_bytes: int = 0
    #: owner of the request; the scheduler's fair dispatcher round-robins
    #: admission slots across tenants (see repro.service.scheduler).
    tenant: str = "default"
    #: relative weight of this tenant's admission share while this request
    #: is at the head of its queue; clamped to >= 1 by the dispatcher.
    priority: int = 1

    @classmethod
    def single(cls, name: str, query: QuerySpec | str,
               **kwargs) -> "QueryRequest":
        return cls(name, [(query, None)], **kwargs)

    @classmethod
    def from_workload(cls, workload, **kwargs) -> "QueryRequest":
        """Build from a :class:`repro.workloads.queries.Workload`."""
        return cls(workload.name, list(workload.stages), **kwargs)


@dataclass
class QueryOutcome:
    """Result and reuse evidence for one query of a batch."""

    index: int
    name: str
    #: prefixed name the query ran under (``q003.Q3``).
    query_name: str
    rows: list[Row] = field(default_factory=list)
    #: pilot jobs actually executed across the query's blocks.
    pilot_jobs: int = 0
    #: leaf signatures whose pilots were skipped via metastore hits.
    pilots_skipped: int = 0
    #: optimizer invocations answered from the plan cache.
    plan_cache_hits: int = 0
    execution: QueryExecution | None = None
    error: str | None = None
    #: owner of the originating request.
    tenant: str = "default"
    #: True when the rows came from the result cache (no execution at all).
    result_cache_hit: bool = False
    #: seconds from scheduler submission to execution start.
    wait_seconds: float = 0.0
    #: seconds from scheduler submission to completion.
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Admission:
    """Per-query state decided serially at submission time."""

    index: int
    request: QueryRequest
    prefix: str
    stages: list[tuple[QuerySpec, str | None]]
    #: globally monotonic admission ticket; the memory gate orders its
    #: waiters by it, so concurrent batches never collide (they used to
    #: share per-batch indices -- see ``_MemoryGate``).
    ticket: int = 0
    #: signatures this query runs the pilot for (it owns their events).
    claimed: list[str] = field(default_factory=list)
    #: signatures already in the metastore at admission.
    known: list[str] = field(default_factory=list)
    #: events of earlier in-flight queries that claimed shared signatures.
    wait_for: list[threading.Event] = field(default_factory=list)
    #: events this query must set when done (one per claimed signature).
    own_events: list[threading.Event] = field(default_factory=list)
    #: admission-time failure (parse/extraction error); skips execution.
    error: str | None = None
    #: result-cache identity of the original (unprefixed) request, or
    #: None when the request is not cacheable (see result_cache.py).
    identity: "RequestIdentity | None" = None
    #: perf_counter timestamp of scheduler submission (None for direct
    #: batches); wait/latency metrics derive from it.
    submitted_at: float | None = None

    @property
    def query_name(self) -> str:
        if not self.stages:
            return f"{self.prefix}.{self.request.name}"
        return self.stages[-1][0].name


class _MemoryGate:
    """Admission gate over the cluster memory pool.

    Grants are FIFO by *admission ticket* -- a globally monotonic number
    minted under the service's admission lock -- not wall-clock arrival:
    when memory frees, the lowest-ticket waiter goes first, and no later
    waiter may bypass it even if its own demand would fit (starvation
    freedom + determinism given the admission order). Deadlock-free by
    ordering: queries acquire memory only *after* their pilot-claim
    waits, so a memory holder never waits on a later admission.

    Tickets must be unique across *all* concurrent batches. They used to
    be per-batch submission indices: two concurrent ``run_batch`` calls
    both waited as index 0, the set's second ``add(0)`` was a no-op, the
    first ``discard(0)`` erased both markers -- leaving the still-blocked
    second waiter invisible, so ``try_acquire``'s empty-waiters fast path
    bypassed it and its own wake-up crashed on ``min(set())``.
    """

    def __init__(self, pool_bytes: int):
        self.pool_bytes = max(pool_bytes, 0)
        self._free = self.pool_bytes
        self._waiters: set[int] = set()
        self._condition = threading.Condition()

    def clamp(self, demand: int) -> int:
        """Demands above the pool run alone instead of never."""
        return min(max(demand, 0), self.pool_bytes)

    def try_acquire(self, demand: int) -> bool:
        """Non-blocking fast path; never bypasses existing waiters."""
        with self._condition:
            if not self._waiters and demand <= self._free:
                self._free -= demand
                return True
            return False

    def acquire(self, ticket: int, demand: int) -> float:
        """Block until granted; returns seconds spent waiting.

        ``ticket`` must be unique among concurrent callers (the service
        passes ``_Admission.ticket``); a duplicate would corrupt the
        waiter set exactly the way per-batch indices used to.
        """
        started = time.perf_counter()
        with self._condition:
            if ticket in self._waiters:
                raise PlanError(
                    f"duplicate memory-gate ticket {ticket}: admission "
                    "tickets must be globally unique"
                )
            self._waiters.add(ticket)
            try:
                while not (ticket == min(self._waiters)
                           and demand <= self._free):
                    self._condition.wait()
            finally:
                self._waiters.discard(ticket)
            self._free -= demand
            # The next-lowest waiter may fit in what remains.
            self._condition.notify_all()
        return time.perf_counter() - started

    def release(self, demand: int) -> None:
        with self._condition:
            self._free += demand
            self._condition.notify_all()


class QueryService:
    """Executes batches of queries over one shared simulated platform."""

    def __init__(self, tables: dict[str, Table],
                 config: DynoConfig = DEFAULT_CONFIG,
                 udfs: UdfRegistry | None = None,
                 metastore: StatisticsMetastore | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 workers: int = 4,
                 plan_cache: PlanCache | None = None,
                 feedback=None,
                 result_cache: ResultCache | bool | None = None):
        if workers < 1:
            raise PlanError("QueryService needs at least one worker")
        self.workers = workers
        # `or` would discard a caller's *empty* cache (len == 0 is falsy).
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: optional shared workload feedback store (repro.feedback); its
        #: own RLock makes it safe under the service's driver threads.
        self.feedback = feedback
        self.dyno = Dyno(tables, config=config, udfs=udfs,
                         metastore=metastore, tracer=tracer,
                         metrics=metrics, plan_cache=self.plan_cache,
                         feedback=feedback)
        self.tracer = self.dyno.tracer
        self.metrics = self.dyno.metrics
        self._memory_gate = _MemoryGate(
            config.cluster.effective_cluster_memory_bytes
        )
        #: optional result-set cache (opt-in: repeats then skip execution
        #: entirely, so reuse evidence like pilot/plan-cache counters no
        #: longer accrues for them). ``True`` builds a default cache.
        self.result_cache: ResultCache | None
        if result_cache is True:
            self.result_cache = ResultCache()
        else:
            self.result_cache = result_cache or None
        if self.result_cache is not None:
            self.metastore.subscribe(self.result_cache.on_stats_update)
        # Admission is a critical section: batch ids and memory-gate
        # tickets are minted here, and both must be globally monotonic
        # across concurrent run_batch / drain callers.
        self._admit_lock = threading.Lock()
        self._batch_ids = itertools.count()
        self._admission_tickets = itertools.count()
        from repro.service.scheduler import QueryScheduler

        #: long-lived submission queue (see repro.service.scheduler);
        #: ``run_batch`` is a thin submit-everything-then-drain wrapper
        #: over it.
        self.scheduler = QueryScheduler(self)

    # -- public ---------------------------------------------------------------

    @property
    def metastore(self) -> StatisticsMetastore:
        return self.dyno.metastore

    def run_batch(self, requests: list[QueryRequest]) -> list[QueryOutcome]:
        """Execute ``requests`` concurrently; outcomes in submission order.

        Compatibility wrapper over the scheduler's ``submit()/drain()``:
        the whole list is enqueued at once and drained to completion.
        Because the drain is scoped to exactly these tickets, concurrent
        ``run_batch`` callers never steal each other's outcomes.
        """
        tickets = [self.scheduler.submit(request) for request in requests]
        return self.scheduler.drain(tickets)

    # -- admission ------------------------------------------------------------

    def _check_fault_guard(self) -> None:
        if self.dyno.runtime.fault_injector is not None and self.workers > 1:
            raise PlanError(
                "fault injection is driver-global; run the service with "
                "workers=1 when a fault plan is armed"
            )

    def _admit(self, requests: list[QueryRequest],
               indices: list[int] | None = None) -> list[_Admission]:
        """Serially classify each query's base-leaf signatures.

        Processing in admission order gives deterministic pilot ownership:
        the first query to mention an unseen signature claims its pilot;
        later queries sharing it wait for the claimant instead of racing
        it. The whole pass holds the admission lock: the batch id and the
        per-admission memory-gate tickets must be minted atomically, or
        two concurrent batches mint the same ``b{batch}.q{position}``
        prefix -- colliding query names, DFS intermediates and
        ``hits_for_prefix`` attribution.

        ``indices`` carries each request's submission index (defaults to
        its position); the scheduler passes per-drain sequence numbers so
        outcomes can be returned in submission order even when the fair
        dispatcher admitted them in a different order.
        """
        claims: dict[str, threading.Event] = {}
        admissions: list[_Admission] = []
        if indices is None:
            indices = list(range(len(requests)))
        with self._admit_lock:
            batch = next(self._batch_ids)
            for position, request in enumerate(requests):
                prefix = f"b{batch}.q{position:03d}"
                admission = _Admission(
                    index=indices[position], request=request,
                    prefix=prefix, stages=[],
                    ticket=next(self._admission_tickets),
                )
                try:
                    admission.stages = self._isolate_stages(prefix,
                                                            request.stages)
                    seen: set[str] = set()
                    for spec, _ in admission.stages:
                        extracted = self.dyno.prepare(spec)
                        for leaf in extracted.block.base_leaves():
                            signature = leaf.signature()
                            if signature in seen:
                                continue
                            seen.add(signature)
                            if signature in self.dyno.metastore:
                                admission.known.append(signature)
                                continue
                            event = claims.get(signature)
                            if event is None:
                                event = threading.Event()
                                claims[signature] = event
                                admission.claimed.append(signature)
                                admission.own_events.append(event)
                            else:
                                admission.wait_for.append(event)
                    if self.result_cache is not None:
                        admission.identity = request_identity(
                            self.dyno, request.stages
                        )
                except DynoError as error:
                    # A malformed query fails alone, not the whole batch.
                    admission.error = f"{type(error).__name__}: {error}"
                if self.tracer.enabled:
                    self.tracer.event(
                        "service.admit",
                        query=admission.query_name,
                        request=request.name,
                        tenant=request.tenant,
                        priority=request.priority,
                        ticket=admission.ticket,
                        claimed=sorted(admission.claimed),
                        known=len(admission.known),
                        waiting=len(admission.wait_for),
                    )
                admissions.append(admission)
        return admissions

    # -- batch execution ------------------------------------------------------

    def _execute_admissions(
        self, admissions: list[_Admission]
    ) -> list[QueryOutcome]:
        """Run admitted queries on the driver pool, in admission order."""
        with self.tracer.span("service.batch",
                              queries=len(admissions),
                              workers=self.workers) as span:
            if self.workers == 1:
                outcomes = [self._run_one(adm) for adm in admissions]
            else:
                with ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="query-driver",
                ) as pool:
                    futures = [pool.submit(self._run_one, adm)
                               for adm in admissions]
                    outcomes = [future.result() for future in futures]
            span.set(
                pilot_jobs=sum(o.pilot_jobs for o in outcomes),
                pilots_skipped=sum(o.pilots_skipped for o in outcomes),
                plan_cache_hits=sum(o.plan_cache_hits for o in outcomes),
                result_cache_hits=sum(
                    1 for o in outcomes if o.result_cache_hit
                ),
                errors=sum(1 for o in outcomes if not o.ok),
            )
        if self.metrics.enabled:
            self.metrics.inc("service.batches")
            self.metrics.inc("service.queries", len(outcomes))
        return outcomes

    def _isolate_stages(
        self, prefix: str,
        stages: list[tuple[QuerySpec | str, str | None]],
    ) -> list[tuple[QuerySpec, str | None]]:
        """Rename specs (and intermediate tables) under a per-query prefix.

        Job names, DFS outputs, pilot counters and tracer spans all derive
        from the spec name, so the prefix is what keeps concurrent copies
        of one query apart in the shared namespace.
        """
        if not stages:
            raise PlanError("query request has no stages")
        renamed_tables = {
            output: f"{prefix}.{output}"
            for _, output in stages[:-1] if output is not None
        }

        def rename_scans(node):
            if isinstance(node, Scan) and node.table in renamed_tables:
                return Scan(renamed_tables[node.table], node.alias)
            return node

        isolated: list[tuple[QuerySpec, str | None]] = []
        for spec, output in stages:
            if isinstance(spec, str):
                spec = self.dyno.parse(spec, name="query")
            root = transform_bottom_up(spec.root, rename_scans)
            isolated.append((
                QuerySpec(f"{prefix}.{spec.name}", root, spec.description),
                renamed_tables.get(output) if output is not None else None,
            ))
        return isolated

    # -- execution ------------------------------------------------------------

    def _acquire_memory(self, admission: _Admission) -> int:
        """Charge the query's declared demand; block under backpressure.

        Returns the bytes actually held (0 for undeclared queries), which
        the caller must release when the query completes.
        """
        demand = self._memory_gate.clamp(
            admission.request.memory_demand_bytes
        )
        if demand == 0:
            return 0
        if self._memory_gate.try_acquire(demand):
            return demand
        with self.tracer.span(
            "admission_wait",
            query=admission.query_name,
            ticket=admission.ticket,
            demand_bytes=demand,
            pool_bytes=self._memory_gate.pool_bytes,
        ) as span:
            waited = self._memory_gate.acquire(admission.ticket, demand)
            span.set(waited_s=round(waited, 6))
        if self.metrics.enabled:
            self.metrics.inc("service.admission_waits")
            self.metrics.observe("service.admission_wait_s", waited)
        return demand

    def _lookup_result(self, admission: _Admission) -> list[Row] | None:
        """Probe the result cache; None on miss or uncacheable identity."""
        if self.result_cache is None or admission.identity is None:
            return None
        key = admission.identity.key(self.metastore, self.feedback)
        if key is None:  # some contributing statistics still unknown
            return None
        rows = self.result_cache.lookup(key)
        if self.tracer.enabled:
            self.tracer.event("result_cache",
                              query=admission.query_name,
                              hit=rows is not None)
        if self.metrics.enabled:
            self.metrics.inc("service.result_cache_hits"
                             if rows is not None
                             else "service.result_cache_misses")
        return rows

    def _store_result(self, admission: _Admission,
                      rows: list[Row]) -> None:
        """Cache a completed query's rows under its post-run identity."""
        if self.result_cache is None or admission.identity is None:
            return
        key = admission.identity.key(self.metastore, self.feedback)
        if key is None:
            return
        self.result_cache.store(key, rows,
                                admission.identity.contributing)

    def _run_one(self, admission: _Admission) -> QueryOutcome:
        request = admission.request
        outcome = QueryOutcome(admission.index, request.name,
                               admission.query_name,
                               tenant=request.tenant)
        started = time.perf_counter()
        if admission.submitted_at is not None:
            outcome.wait_seconds = started - admission.submitted_at
            if self.metrics.enabled:
                self.metrics.inc("service.tenant_waits")
                self.metrics.observe("service.tenant_wait_s",
                                     outcome.wait_seconds)
                self.metrics.observe(
                    f"service.tenant_wait_s.{request.tenant}",
                    outcome.wait_seconds,
                )
        held_bytes = 0
        try:
            if admission.error is not None:
                outcome.error = admission.error
                return outcome
            for event in admission.wait_for:
                event.wait()
            cached_rows = self._lookup_result(admission)
            if cached_rows is not None:
                outcome.rows = cached_rows
                outcome.result_cache_hit = True
                return outcome
            held_bytes = self._acquire_memory(admission)
            execution = self.dyno.execute_multi(
                admission.stages,
                mode=request.mode,
                strategy=request.strategy,
                pilot_mode=request.pilot_mode,
            )
            outcome.execution = execution
            outcome.rows = execution.rows
            for block_result in execution.block_results:
                report = block_result.pilot
                if report is None:
                    continue
                outcome.pilot_jobs += report.jobs_run
                outcome.pilots_skipped += sum(
                    1 for leaf_outcome in report.outcomes.values()
                    if leaf_outcome.reused
                )
            outcome.plan_cache_hits = self.plan_cache.hits_for_prefix(
                f"{admission.prefix}."
            )
            self._store_result(admission, outcome.rows)
        except Exception as error:  # noqa: BLE001 - one query must not
            # take down the batch; UDFs run arbitrary user code.
            outcome.error = f"{type(error).__name__}: {error}"
        finally:
            if held_bytes:
                self._memory_gate.release(held_bytes)
            # Claims are coordination, not correctness: if this query died
            # before collecting its claimed statistics, waiters find the
            # metastore still empty and simply run the pilots themselves.
            for event in admission.own_events:
                event.set()
            if admission.submitted_at is not None:
                outcome.latency_seconds = \
                    time.perf_counter() - admission.submitted_at
            if self.tracer.enabled:
                self.tracer.event(
                    "service.complete",
                    query=admission.query_name,
                    tenant=request.tenant,
                    rows=len(outcome.rows),
                    pilot_jobs=outcome.pilot_jobs,
                    pilots_skipped=outcome.pilots_skipped,
                    plan_cache_hits=outcome.plan_cache_hits,
                    result_cache_hit=outcome.result_cache_hit,
                    error=outcome.error,
                )
        return outcome
