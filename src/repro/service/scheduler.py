"""Multi-tenant queued admission for :class:`~repro.service.service.QueryService`.

The service used to be a one-shot batch runner: ``run_batch`` admitted a
list all at once and the only fairness was FIFO. This module turns it
into a front door: callers ``submit()`` requests -- each tagged with a
``tenant`` and ``priority`` -- into a long-lived queue, and ``drain()``
dispatches the queued work through a **deficit weighted round robin**
(DWRR) scheduler before handing it to the service's existing admission
pipeline (pilot claims, memory gate, driver pool).

Fairness policy
---------------

Tenants are visited round-robin in order of first appearance in the
queue. On each visit a tenant's *deficit* grows by ``quantum`` times the
priority of its head-of-queue request (clamped to >= 1), and it
dispatches one query per unit of deficit until the deficit or its queue
runs out. A tenant whose queue empties forfeits its remaining deficit,
so idle tenants cannot hoard credit and burst later. Consequences:

* **starvation-free** -- every tenant with queued work dispatches at
  least one query per round, whatever the other tenants' priorities;
* **weighted** -- over a long backlog, tenants receive admission slots
  proportional to their priorities;
* **deterministic** -- the dispatch order is a pure function of the
  submitted (ticket, tenant, priority) sequence; thread timing never
  changes it. Within one tenant, requests dispatch strictly FIFO.

Dispatch order decides *admission* order -- and with it pilot-claim
ownership and memory-gate ticket order -- but never results: plans and
caches are answer-invariant, so a drain is byte-identical to running the
same queries serially in any order.

``run_batch`` remains as a thin submit-all-then-drain wrapper; since a
drain can be scoped to an explicit ticket list, concurrent ``run_batch``
callers sharing the one scheduler never steal each other's outcomes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["QueryScheduler", "dispatch_order"]


def dispatch_order(
    entries: list[tuple[int, str, int]],
    quantum: float = 1.0,
    deficits: dict[str, float] | None = None,
) -> list[int]:
    """Pure DWRR ordering of queued requests.

    ``entries`` is the queue snapshot in submission order as
    ``(ticket, tenant, priority)`` triples; the return value is every
    ticket exactly once, in dispatch order. ``deficits`` (mutated in
    place when given) carries per-tenant credit across calls; tenants
    drained to empty are reset to zero.
    """
    if deficits is None:
        deficits = {}
    queues: dict[str, list[tuple[int, int]]] = {}
    ring: list[str] = []  # tenants in first-appearance order
    for ticket, tenant, priority in entries:
        if tenant not in queues:
            queues[tenant] = []
            ring.append(tenant)
        queues[tenant].append((ticket, max(priority, 1)))
    order: list[int] = []
    while len(order) < len(entries):
        for tenant in ring:
            queue = queues[tenant]
            if not queue:
                continue
            deficits[tenant] = deficits.get(tenant, 0.0) \
                + quantum * queue[0][1]
            while queue and deficits[tenant] >= 1.0:
                ticket, _ = queue.pop(0)
                order.append(ticket)
                deficits[tenant] -= 1.0
            if not queue:
                deficits[tenant] = 0.0
    return order


@dataclass
class _Pending:
    """One submitted-but-not-yet-drained request."""

    request: object
    submitted_at: float


class QueryScheduler:
    """Long-lived submission queue + DWRR dispatcher over one service.

    Thread-safe: many producers may ``submit()`` while consumers
    ``drain()``; a queued request is dispatched by exactly one drain
    (entries are popped from the queue atomically under the scheduler
    lock before dispatch ordering).
    """

    def __init__(self, service, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError("scheduler quantum must be positive")
        self._service = service
        self.quantum = quantum
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_ticket = 0
        self._deficits: dict[str, float] = {}

    @property
    def _tracer(self) -> Tracer:
        return self._service.tracer

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._service.metrics

    def submit(self, request) -> int:
        """Enqueue one request; returns its submission ticket.

        Tickets are globally monotonic in submission order and scope a
        later ``drain`` to exactly this caller's requests.
        """
        with self._lock:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._pending[ticket] = _Pending(request, time.perf_counter())
            depth = len(self._pending)
        if self._metrics.enabled:
            self._metrics.observe("service.queue_depth", depth)
        if self._tracer.enabled:
            self._tracer.event(
                "service.submit",
                request=request.name,
                tenant=request.tenant,
                priority=request.priority,
                ticket=ticket,
                depth=depth,
            )
        return ticket

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self, tickets: list[int] | None = None):
        """Dispatch queued requests to completion; outcomes in
        submission order.

        With ``tickets`` the drain is scoped to those submissions (ones
        already drained elsewhere are skipped) and each outcome's
        ``index`` is the ticket's position in the list -- so
        ``run_batch`` keeps its 0..n-1 indices. Without, everything
        currently queued is drained and ``index`` is the global ticket.
        """
        # The guard must fire before the queue is touched: a refused
        # drain leaves the submissions queued, not half-admitted.
        self._service._check_fault_guard()
        with self._lock:
            if tickets is None:
                scoped = sorted(self._pending)
            else:
                scoped = [t for t in tickets if t in self._pending]
            taken = {t: self._pending.pop(t) for t in scoped}
            order = dispatch_order(
                [(t, taken[t].request.tenant, taken[t].request.priority)
                 for t in scoped],
                self.quantum,
                self._deficits,
            )
            depth = len(self._pending)
        if not order:
            return []
        if self._metrics.enabled:
            self._metrics.observe("service.queue_depth", depth)
        if self._tracer.enabled:
            self._tracer.event(
                "service.drain",
                queued=len(order),
                tenants=len({taken[t].request.tenant for t in order}),
                remaining_depth=depth,
            )
        if tickets is None:
            index_of = {ticket: ticket for ticket in scoped}
        else:
            index_of = {ticket: position
                        for position, ticket in enumerate(tickets)}
        admissions = self._service._admit(
            [taken[ticket].request for ticket in order],
            indices=[index_of[ticket] for ticket in order],
        )
        for admission, ticket in zip(admissions, order):
            admission.submitted_at = taken[ticket].submitted_at
        outcomes = self._service._execute_admissions(admissions)
        return sorted(outcomes, key=lambda outcome: outcome.index)

    def run_sustained(self, requests, qps: float | None = None):
        """Paced open-loop load: submit at ``qps`` while a background
        drainer executes; returns outcomes in submission order.

        This is the CLI/bench entry point for sustained traffic -- the
        queue genuinely builds depth whenever the submission rate beats
        the service, which is what exercises the fair dispatcher.
        ``qps=None`` submits as fast as possible.
        """
        outcomes = []
        collected = threading.Lock()
        done_submitting = threading.Event()

        def drainer() -> None:
            while True:
                drained = self.drain()
                if drained:
                    with collected:
                        outcomes.extend(drained)
                elif done_submitting.is_set():
                    if self.queue_depth() == 0:
                        return
                else:
                    time.sleep(0.0005)

        thread = threading.Thread(target=drainer,
                                  name="scheduler-drainer")
        thread.start()
        interval = 1.0 / qps if qps and qps > 0 else 0.0
        try:
            for request in requests:
                self.submit(request)
                if interval:
                    time.sleep(interval)
        finally:
            done_submitting.set()
            thread.join()
        return sorted(outcomes, key=lambda outcome: outcome.index)
