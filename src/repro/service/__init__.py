"""Serving layer: concurrent multi-query execution with cross-query reuse.

See :mod:`repro.service.service` for the QueryService,
:mod:`repro.service.scheduler` for the multi-tenant submission queue,
:mod:`repro.service.plan_cache` for the sharded plan cache and
:mod:`repro.service.result_cache` for the result-set cache shared across
queries. ``docs/serving.md`` walks through the design.
"""

from repro.service.plan_cache import (
    CachedOptimization,
    PlanCache,
    canonical_block_key,
    statistics_fingerprint,
)
from repro.service.result_cache import ResultCache, request_identity
from repro.service.scheduler import QueryScheduler, dispatch_order
from repro.service.service import QueryOutcome, QueryRequest, QueryService

__all__ = [
    "CachedOptimization",
    "PlanCache",
    "QueryOutcome",
    "QueryRequest",
    "QueryScheduler",
    "QueryService",
    "ResultCache",
    "canonical_block_key",
    "dispatch_order",
    "request_identity",
    "statistics_fingerprint",
]
