"""Serving layer: concurrent multi-query execution with cross-query reuse.

See :mod:`repro.service.service` for the QueryService and
:mod:`repro.service.plan_cache` for the plan cache it shares across
queries. ``docs/serving.md`` walks through the design.
"""

from repro.service.plan_cache import (
    CachedOptimization,
    PlanCache,
    canonical_block_key,
    statistics_fingerprint,
)
from repro.service.service import QueryOutcome, QueryRequest, QueryService

__all__ = [
    "CachedOptimization",
    "PlanCache",
    "QueryOutcome",
    "QueryRequest",
    "QueryService",
    "canonical_block_key",
    "statistics_fingerprint",
]
