"""Cross-query plan cache keyed by (join-block signature, statistics
fingerprint).

DYNOPT re-optimizes a block every iteration, so a recurring query pays the
optimizer once per executed step *every time it runs*. But the optimizer is
a pure function of (block shape, leaf statistics): when both recur, the
plan recurs -- the per-plan reuse argument of "One Join Order Does Not Fit
All" applied to the serving layer. The cache therefore keys on:

* the **canonical block key** -- the block's leaves, join conditions, and
  non-local predicates, rendered *name-independently*: base leaves appear
  as their statistics signature (Section 4.1), intermediate leaves as their
  alias set. Per-query DFS file names (``q003.Q3.it0.j1.out``) never enter
  the key, so iteration-k blocks of repeated queries hit;
* the **statistics fingerprint** -- a stable hash of every contributing
  leaf's :class:`TableStats`. A later statistics collection that changes
  any contributing entry changes the fingerprint, so stale plans miss.

Entries are additionally invalidated eagerly when the metastore reports an
updated base-leaf entry (see :meth:`PlanCache.on_stats_update`), keeping
the cache from accumulating unreachable fingerprints.

Cached plans embed the original query's :class:`PhysLeaf` nodes, whose
intermediate leaves carry that query's DFS file names; :meth:`lookup`
therefore *remaps* the plan onto the current block's leaves (matched by
alias set) before returning it.

Correctness note: results in this system are plan-invariant (the
differential oracle of earlier PRs), so a cache collision could at worst
execute a suboptimal plan -- never return wrong rows.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.feedback.keys import canonical_block_key
from repro.feedback.keys import leaf_identity as _leaf_identity
from repro.jaql.blocks import JoinBlock
from repro.optimizer.plans import PhysicalNode, PhysJoin, PhysLeaf
from repro.stats.statistics import TableStats


@dataclass
class CachedOptimization:
    """What a cache hit hands back to the DYNOPT loop.

    Mirrors the fields of
    :class:`repro.optimizer.search.OptimizationResult` the executor reads;
    ``simulated_seconds`` is zero because a hit skips the optimizer
    entirely -- that is the point of the cache.
    """

    plan: PhysicalNode
    cost: float
    groups_explored: int = 0
    plans_considered: int = 0
    simulated_seconds: float = 0.0


__all__ = [
    "CachedOptimization",
    "PlanCache",
    "canonical_block_key",
    "statistics_fingerprint",
]


def statistics_fingerprint(block: JoinBlock,
                           leaf_stats: dict[str, TableStats],
                           salt: str = "") -> str | None:
    """Stable hash over the contributing leaves' statistics.

    ``salt`` folds caller state that changes the optimizer's estimates
    without changing the statistics themselves (the feedback store's
    correction token), so corrected estimates never resurrect plans
    cached under uncorrected ones. Returns None when a contributing
    leaf's statistics are missing -- the caller must treat that as a
    cache miss, not a crash (a concurrent invalidation or a caller bug
    may leave a leaf unstated; degrading keeps the driver thread alive).
    """
    payload = {}
    for leaf in block.leaves:
        signature = leaf.signature()
        identity = _leaf_identity(leaf)
        if identity == "intermediate":
            identity = "intermediate:" + "+".join(sorted(leaf.aliases))
        stats = leaf_stats.get(signature)
        if stats is None:
            return None
        payload[identity] = stats.to_dict()
    text = json.dumps(payload, sort_keys=True)
    if salt:
        text += "|salt:" + salt
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class _Entry:
    plan: PhysicalNode
    cost: float
    #: base-leaf statistics signatures this plan's estimates came from;
    #: an update to any of them evicts the entry.
    contributing: frozenset[str]


class _Shard:
    """One lock + one LRU segment of the plan cache."""

    __slots__ = ("lock", "entries", "capacity",
                 "hits", "misses", "invalidations")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0


class PlanCache:
    """Thread-safe (block key, statistics fingerprint) -> plan store.

    Sharded by canonical-block-key hash: each shard has its own lock and
    its own LRU segment, so N driver threads looking up N different
    recurring blocks no longer serialize on one cache lock. Small caches
    (``max_entries`` < 64) stay single-shard, which preserves exact
    global-LRU capacity semantics where they are observable; at serving
    sizes the per-shard capacity split is the standard trade (a skewed
    key distribution may evict slightly early).

    Eviction is true LRU per shard: a lookup hit and a re-store of an
    existing key both refresh the entry's recency, so under sustained
    traffic the hottest recurring plans survive and the cold tail is
    what falls out. ``hits_by_block`` is LRU-capped at
    ``max_block_stats`` entries -- block names are per-query prefixed in
    the service, so an unbounded map is a slow memory leak; the cap
    keeps the recent (in-flight) queries readable, which is all the
    service's per-query attribution needs. It stays a single map under
    its own lock (attribution reads want one consistent view and the
    map is touched only on hits).
    """

    def __init__(self, max_entries: int = 256,
                 max_block_stats: int = 512,
                 shards: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("PlanCache needs max_entries >= 1")
        self.max_entries = max_entries
        self.max_block_stats = max_block_stats
        shard_count = max(1, min(shards, max_entries // 32))
        capacity = -(-max_entries // shard_count)  # ceil division
        self._shards = [_Shard(capacity) for _ in range(shard_count)]
        self._stats_lock = threading.Lock()
        #: per-block-name hit counts; block names are query-prefixed in the
        #: service, so this attributes hits to queries (recent ones only --
        #: see the class docstring for the bound).
        self.hits_by_block: OrderedDict[str, int] = OrderedDict()

    def _shard(self, block_key: str) -> _Shard:
        # crc32, not hash(): str.__hash__ is per-process salted and shard
        # routing must be reproducible across runs.
        return self._shards[zlib.crc32(block_key.encode("utf-8"))
                            % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def invalidations(self) -> int:
        return sum(shard.invalidations for shard in self._shards)

    # -- lookup / store -------------------------------------------------------

    def lookup(self, block: JoinBlock,
               leaf_stats: dict[str, TableStats],
               salt: str = "") -> CachedOptimization | None:
        block_key = canonical_block_key(block)
        shard = self._shard(block_key)
        fingerprint = statistics_fingerprint(block, leaf_stats, salt)
        if fingerprint is None:
            with shard.lock:
                shard.misses += 1
            return None
        key = (block_key, fingerprint)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
        with self._stats_lock:
            self.hits_by_block[block.name] = \
                self.hits_by_block.get(block.name, 0) + 1
            self.hits_by_block.move_to_end(block.name)
            while len(self.hits_by_block) > self.max_block_stats:
                self.hits_by_block.popitem(last=False)
        plan = _remap_plan(entry.plan, block)
        return CachedOptimization(plan=plan, cost=entry.cost)

    def store(self, block: JoinBlock, leaf_stats: dict[str, TableStats],
              plan: PhysicalNode, cost: float, salt: str = "") -> None:
        fingerprint = statistics_fingerprint(block, leaf_stats, salt)
        if fingerprint is None:
            return
        block_key = canonical_block_key(block)
        key = (block_key, fingerprint)
        contributing = frozenset(
            identity for identity in map(_leaf_identity, block.leaves)
            if identity.startswith("table:")
        )
        shard = self._shard(block_key)
        with shard.lock:
            shard.entries[key] = _Entry(plan, cost, contributing)
            shard.entries.move_to_end(key)
            while len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)

    # -- invalidation ---------------------------------------------------------

    def on_stats_update(self, signature: str,
                        stats: TableStats | None) -> None:
        """Metastore listener: a leaf's statistics were (re)collected, or
        invalidated (``stats is None`` -- a CDC delta dropped the entry).

        Only base-leaf entries matter -- ``intermediate:`` signatures are
        per-query scratch that never contributes to a cache key's
        fingerprint identity across queries. The stats payload itself is
        irrelevant: any change to a contributing signature's state voids
        the fingerprint the entry was stored under.
        """
        if not signature.startswith("table:"):
            return
        for shard in self._shards:
            with shard.lock:
                stale = [key for key, entry in shard.entries.items()
                         if signature in entry.contributing]
                for key in stale:
                    del shard.entries[key]
                shard.invalidations += len(stale)

    def hits_for_prefix(self, prefix: str) -> int:
        """Total hits attributed to block names starting with ``prefix``.

        Reads under the stats lock: concurrent lookups reorder
        ``hits_by_block`` (LRU), so callers must not iterate it raw.
        """
        with self._stats_lock:
            return sum(count
                       for block, count in self.hits_by_block.items()
                       if block.startswith(prefix))

    def summary(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "shards": len(self._shards),
        }


def _remap_plan(plan: PhysicalNode, block: JoinBlock) -> PhysicalNode:
    """Rebind a cached plan's leaves onto the current block's leaf objects.

    Matched by alias set; base leaves are interchangeable by construction
    (same signature), intermediate leaves differ only in their per-query
    DFS file name.
    """
    by_aliases = {leaf.aliases: leaf for leaf in block.leaves}
    return _remap_node(plan, by_aliases)


def _remap_node(node: PhysicalNode, by_aliases) -> PhysicalNode:
    if isinstance(node, PhysLeaf):
        current = by_aliases[node.aliases]
        if current == node.leaf:
            return node
        return replace(node, leaf=current)
    if isinstance(node, PhysJoin):
        left = _remap_node(node.left, by_aliases)
        right = _remap_node(node.right, by_aliases)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    return node
