"""Cross-query plan cache keyed by (join-block signature, statistics
fingerprint).

DYNOPT re-optimizes a block every iteration, so a recurring query pays the
optimizer once per executed step *every time it runs*. But the optimizer is
a pure function of (block shape, leaf statistics): when both recur, the
plan recurs -- the per-plan reuse argument of "One Join Order Does Not Fit
All" applied to the serving layer. The cache therefore keys on:

* the **canonical block key** -- the block's leaves, join conditions, and
  non-local predicates, rendered *name-independently*: base leaves appear
  as their statistics signature (Section 4.1), intermediate leaves as their
  alias set. Per-query DFS file names (``q003.Q3.it0.j1.out``) never enter
  the key, so iteration-k blocks of repeated queries hit;
* the **statistics fingerprint** -- a stable hash of every contributing
  leaf's :class:`TableStats`. A later statistics collection that changes
  any contributing entry changes the fingerprint, so stale plans miss.

Entries are additionally invalidated eagerly when the metastore reports an
updated base-leaf entry (see :meth:`PlanCache.on_stats_update`), keeping
the cache from accumulating unreachable fingerprints.

Cached plans embed the original query's :class:`PhysLeaf` nodes, whose
intermediate leaves carry that query's DFS file names; :meth:`lookup`
therefore *remaps* the plan onto the current block's leaves (matched by
alias set) before returning it.

Correctness note: results in this system are plan-invariant (the
differential oracle of earlier PRs), so a cache collision could at worst
execute a suboptimal plan -- never return wrong rows.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, replace

from repro.jaql.blocks import JoinBlock
from repro.optimizer.plans import PhysicalNode, PhysJoin, PhysLeaf
from repro.stats.statistics import TableStats


@dataclass
class CachedOptimization:
    """What a cache hit hands back to the DYNOPT loop.

    Mirrors the fields of
    :class:`repro.optimizer.search.OptimizationResult` the executor reads;
    ``simulated_seconds`` is zero because a hit skips the optimizer
    entirely -- that is the point of the cache.
    """

    plan: PhysicalNode
    cost: float
    groups_explored: int = 0
    plans_considered: int = 0
    simulated_seconds: float = 0.0


def _leaf_identity(leaf) -> str:
    """Name-independent relation identity of one leaf.

    A pilot-substituted intermediate *is* the base leaf it materialized
    (same rows, same statistics), so it keys under that leaf's signature;
    cold runs (pilots substituted) and warm runs (pilots skipped, base
    leaves intact) of one query then share cache entries. Join-result
    intermediates have no cross-query identity beyond their alias set.
    """
    if leaf.is_base:
        return leaf.signature()
    return leaf.provenance or "intermediate"


def canonical_block_key(block: JoinBlock) -> str:
    """Name-independent identity of a join block's remaining work."""
    leaf_parts = []
    for leaf in sorted(block.leaves, key=lambda l: tuple(sorted(l.aliases))):
        aliases = "+".join(sorted(leaf.aliases))
        leaf_parts.append(f"{aliases}={_leaf_identity(leaf)}")
    conditions = sorted(c.describe() for c in block.conditions)
    predicates = sorted(p.signature() for p in block.non_local_predicates)
    return (
        "leaves[" + ";".join(leaf_parts) + "]"
        "|conds[" + ";".join(conditions) + "]"
        "|preds[" + ";".join(predicates) + "]"
    )


def statistics_fingerprint(block: JoinBlock,
                           leaf_stats: dict[str, TableStats]) -> str:
    """Stable hash over the contributing leaves' statistics."""
    payload = {}
    for leaf in block.leaves:
        signature = leaf.signature()
        identity = _leaf_identity(leaf)
        if identity == "intermediate":
            identity = "intermediate:" + "+".join(sorted(leaf.aliases))
        payload[identity] = leaf_stats[signature].to_dict()
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class _Entry:
    plan: PhysicalNode
    cost: float
    #: base-leaf statistics signatures this plan's estimates came from;
    #: an update to any of them evicts the entry.
    contributing: frozenset[str]


class PlanCache:
    """Thread-safe (block key, statistics fingerprint) -> plan store."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str], _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: per-block-name hit counts; block names are query-prefixed in the
        #: service, so this attributes hits to queries.
        self.hits_by_block: dict[str, int] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / store -------------------------------------------------------

    def lookup(self, block: JoinBlock,
               leaf_stats: dict[str, TableStats]) -> CachedOptimization | None:
        key = (canonical_block_key(block),
               statistics_fingerprint(block, leaf_stats))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self.hits_by_block[block.name] = \
                self.hits_by_block.get(block.name, 0) + 1
        plan = _remap_plan(entry.plan, block)
        return CachedOptimization(plan=plan, cost=entry.cost)

    def store(self, block: JoinBlock, leaf_stats: dict[str, TableStats],
              plan: PhysicalNode, cost: float) -> None:
        key = (canonical_block_key(block),
               statistics_fingerprint(block, leaf_stats))
        contributing = frozenset(
            identity for identity in map(_leaf_identity, block.leaves)
            if identity.startswith("table:")
        )
        with self._lock:
            if key not in self._entries and \
                    len(self._entries) >= self.max_entries:
                # Drop the oldest entry (dict preserves insertion order).
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = _Entry(plan, cost, contributing)

    # -- invalidation ---------------------------------------------------------

    def on_stats_update(self, signature: str, stats: TableStats) -> None:
        """Metastore listener: a leaf's statistics were (re)collected.

        Only base-leaf entries matter -- ``intermediate:`` signatures are
        per-query scratch that never contributes to a cache key's
        fingerprint identity across queries.
        """
        if not signature.startswith("table:"):
            return
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if signature in entry.contributing]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)

    def summary(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }


def _remap_plan(plan: PhysicalNode, block: JoinBlock) -> PhysicalNode:
    """Rebind a cached plan's leaves onto the current block's leaf objects.

    Matched by alias set; base leaves are interchangeable by construction
    (same signature), intermediate leaves differ only in their per-query
    DFS file name.
    """
    by_aliases = {leaf.aliases: leaf for leaf in block.leaves}
    return _remap_node(plan, by_aliases)


def _remap_node(node: PhysicalNode, by_aliases) -> PhysicalNode:
    if isinstance(node, PhysLeaf):
        current = by_aliases[node.aliases]
        if current == node.leaf:
            return node
        return replace(node, leaf=current)
    if isinstance(node, PhysJoin):
        left = _remap_node(node.left, by_aliases)
        right = _remap_node(node.right, by_aliases)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    return node
