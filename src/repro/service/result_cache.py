"""Cross-query result-set cache keyed by (structural identity, statistics
fingerprint, correction token).

The plan cache (PR 4) reuses *plans* when a block's canonical key and
statistics recur; under sustained multi-tenant traffic the same identity
argument extends one level up: when a whole query's structure AND every
contributing base leaf's statistics AND the feedback store's correction
state recur, the *result rows* recur too -- results in this system are
plan-invariant (the differential oracle of earlier PRs), data is immutable
between statistics updates, and statistics updates are the data-change
signal (the CDC roadmap item keys off the same path). A hit therefore
skips pilots, optimizer, and execution entirely and returns the cached
rows, copied on read so callers can mutate their copy freely.

The identity has three parts:

* **structural key** -- per original (unprefixed) stage: the canonical
  block key (name-independent: leaves as statistics signatures, join
  conditions, non-local predicates) plus the one-line renderings of the
  post-join stages (group-by/order-by/project headers, which the block
  key does not cover -- two queries sharing a join block but differing in
  projection must not collide) plus the stage's output-table name;
* **statistics fingerprint** -- a hash of every contributing base leaf's
  current :class:`TableStats` *and* the data epoch of every contributing
  base table. Statistics alone are not a safe data-change signal: they
  are lossy synopses, and two different table contents can freeze to
  byte-identical statistics (or a caller can swap a table's rows without
  re-running pilots at all). The metastore's per-table epoch -- bumped by
  every ``Dyno.register_table`` -- closes that hole: any re-registration
  changes the key, so cached rows computed over the previous contents can
  never be returned. Unknown statistics (a cold query) mean "no key": the
  query executes and is cached afterwards, when its own pilots have
  published them;
* **correction token** -- the feedback store's quantized correction state
  over the request's alias identities, mirroring the plan cache's salt.
  (Corrections never change rows -- plans are answer-invariant -- but
  keying identically to the plan cache keeps the two caches' lifetimes
  aligned and costs nothing.)

Invalidation mirrors the plan cache exactly: the cache subscribes to the
metastore, and a statistics update for any contributing base-leaf
signature evicts every dependent entry (:meth:`ResultCache.on_stats_update`).

The store is sharded by key hash -- per-shard locks, per-shard LRU -- so
driver threads serving different queries do not serialize on one lock;
``summary()`` aggregates across shards.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.data.table import Row
from repro.feedback.keys import canonical_block_key, leaf_identity

__all__ = ["RequestIdentity", "ResultCache", "request_identity"]


@dataclass(frozen=True)
class RequestIdentity:
    """Admission-time identity of one request, fingerprinted at run time.

    ``structural`` is fixed at admission; the statistics fingerprint and
    correction token are resolved by :meth:`key` against the *current*
    metastore/feedback state, because a cold query's statistics only
    exist after its own pilots ran.
    """

    #: canonical rendering of every stage (block key + post-join stages).
    structural: str
    #: base-leaf statistics signatures the result depends on.
    contributing: frozenset[str]
    #: alias -> relation identity over all stages (correction-token scope).
    alias_identity: tuple[tuple[str, str], ...]

    def tables(self) -> list[str]:
        """Base tables named by the contributing signatures, sorted."""
        names = set()
        for signature in self.contributing:
            if signature.startswith("table:"):
                names.add(signature[len("table:"):].split("|", 1)[0])
        return sorted(names)

    def key(self, metastore, feedback=None) -> str | None:
        """Full cache key under current statistics, or None when any
        contributing leaf is still unstated (nothing to fingerprint)."""
        stats_payload = {}
        for signature in sorted(self.contributing):
            stats = metastore.get(signature)
            if stats is None:
                return None
            stats_payload[signature] = stats.to_dict()
        epochs = {table: metastore.table_epoch(table)
                  for table in self.tables()}
        token = ""
        if feedback is not None:
            token = feedback.correction_token(dict(self.alias_identity))
        text = json.dumps(
            {"structural": self.structural, "stats": stats_payload,
             "epochs": epochs, "correction": token},
            sort_keys=True,
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def request_identity(dyno, stages) -> RequestIdentity | None:
    """Build a request's identity from its ORIGINAL (unprefixed) stages.

    Computed pre-isolation so repeated submissions -- from any tenant,
    under any per-query prefix -- share one identity. Leaves scanning an
    earlier stage's output table are structurally covered by that stage
    and carry no metastore statistics of their own, so they are excluded
    from the contributing set. May raise DynoError for malformed stages
    (the caller's admission error path covers it).
    """
    if not stages:
        return None
    structural_parts: list[str] = []
    contributing: set[str] = set()
    alias_identity: dict[str, str] = {}
    prior_outputs: set[str] = set()
    for spec, output in stages:
        extracted = dyno.prepare(spec)
        block = extracted.block
        stage_heads = [
            stage.describe().splitlines()[0].strip()
            for stage in extracted.stages
        ]
        structural_parts.append(
            "block[" + canonical_block_key(block) + "]"
            "|stages[" + ";".join(stage_heads) + "]"
            "|out:" + (output or "")
        )
        for leaf in block.base_leaves():
            if leaf.source_name in prior_outputs:
                continue
            contributing.add(leaf.signature())
            for alias in leaf.aliases:
                alias_identity[alias] = leaf_identity(leaf)
        if output is not None:
            prior_outputs.add(output)
    return RequestIdentity(
        structural="||".join(structural_parts),
        contributing=frozenset(contributing),
        alias_identity=tuple(sorted(alias_identity.items())),
    )


@dataclass
class _Entry:
    rows: tuple[Row, ...]
    contributing: frozenset[str]


class _Shard:
    """One lock + one LRU segment of the cache."""

    __slots__ = ("lock", "entries", "capacity",
                 "hits", "misses", "invalidations")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[str, _Entry] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0


class ResultCache:
    """Sharded, thread-safe key -> result-rows store with LRU eviction.

    Rows are copied on store AND on read: cached rows are shared state,
    and post-join stages / clients mutate row dicts freely. Eviction is
    per-shard LRU; ``max_entries`` is split evenly across shards, so a
    pathologically skewed key distribution may evict earlier than a
    single global LRU would -- an accepted trade for lock-free-ish reads
    across driver threads.
    """

    def __init__(self, max_entries: int = 128, shards: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("ResultCache needs max_entries >= 1")
        shard_count = max(1, min(shards, max_entries))
        capacity = -(-max_entries // shard_count)  # ceil division
        self._shards = [_Shard(capacity) for _ in range(shard_count)]
        self.max_entries = max_entries

    def _shard(self, key: str) -> _Shard:
        # crc32 is stable across processes (str.__hash__ is salted).
        return self._shards[zlib.crc32(key.encode("utf-8"))
                            % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def lookup(self, key: str) -> list[Row] | None:
        shard = self._shard(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            rows = entry.rows
        return [dict(row) for row in rows]

    def store(self, key: str, rows: list[Row],
              contributing: frozenset[str]) -> None:
        frozen = tuple(dict(row) for row in rows)
        shard = self._shard(key)
        with shard.lock:
            shard.entries[key] = _Entry(frozen, contributing)
            shard.entries.move_to_end(key)
            while len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)

    def on_stats_update(self, signature: str, stats) -> None:
        """Metastore listener: statistics were (re)collected for a leaf,
        or invalidated (``stats is None`` -- e.g. a CDC delta batch).

        Same contract as ``PlanCache.on_stats_update``: any entry whose
        result was computed over the old statistics for ``signature`` is
        dropped, so a cached result never outlives the statistics state
        it was keyed under.
        """
        if not signature.startswith("table:"):
            return
        for shard in self._shards:
            with shard.lock:
                stale = [key for key, entry in shard.entries.items()
                         if signature in entry.contributing]
                for key in stale:
                    del shard.entries[key]
                shard.invalidations += len(stale)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def invalidations(self) -> int:
        return sum(shard.invalidations for shard in self._shards)

    def summary(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "shards": len(self._shards),
        }
