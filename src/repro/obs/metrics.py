"""Metrics registry: counters and observation summaries.

Complements :mod:`repro.obs.tracer`: the tracer answers "what happened,
in what order"; the registry answers "how much, in total". Two primitive
kinds keep it dependency-free and cheap:

* **counters** -- monotonically increasing tallies
  (``jobs.executed``, ``dynopt.replans``);
* **observations** -- per-sample statistics (count / total / min / max /
  mean) over a named value stream (``qerror.rows``,
  ``driver.batch_wall_s``). The q-error observations are the paper's
  estimated-vs-actual audit in aggregate form.

``summary()`` renders everything as one plain dict, ``save()`` writes it
as JSON (the CLI's ``--metrics PATH``). Thread-safe; the parallel job
executor reports from worker threads.

Like the tracer, the registry has a disabled twin: :data:`NULL_METRICS`
advertises ``enabled = False`` and turns every method into a no-op, so
instrumentation is free when nobody asked for numbers.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = ["MetricsRegistry", "NULL_METRICS", "q_error"]


def q_error(estimated: float, actual: float) -> float:
    """The standard cardinality-estimation quality metric.

    ``max(est/act, act/est)`` with both sides clamped to >= 1 row, so a
    perfect estimate scores 1.0 and the measure is symmetric in over- and
    under-estimation.
    """
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


class MetricsRegistry:
    """Named counters and observation streams. Thread-safe."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._observations: dict[str, list[float]] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        with self._lock:
            entry = self._observations.get(name)
            if entry is None:
                self._observations[name] = [1.0, value, value, value]
            else:
                entry[0] += 1.0
                entry[1] += value
                if value < entry[2]:
                    entry[2] = value
                if value > entry[3]:
                    entry[3] = value

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def observation(self, name: str) -> dict | None:
        with self._lock:
            entry = self._observations.get(name)
        if entry is None:
            return None
        count, total, low, high = entry
        return {
            "count": int(count),
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count,
        }

    def summary(self) -> dict:
        """Everything recorded so far, as one JSON-serializable dict."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            names = sorted(self._observations)
        return {
            "counters": counters,
            "observations": {
                name: self.observation(name) for name in names
            },
        }

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.summary(), indent=2, sort_keys=True) + "\n"
        )


class _NullMetrics(MetricsRegistry):
    """The disabled registry: recording is a constant no-op."""

    enabled = False

    def __init__(self) -> None:
        pass

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0.0

    def observation(self, name: str) -> dict | None:
        return None

    def summary(self) -> dict:
        return {"counters": {}, "observations": {}}

    def save(self, path) -> None:  # pragma: no cover - never wired up
        raise ValueError("cannot save the disabled metrics registry")


#: The default registry everywhere: metrics off, zero overhead.
NULL_METRICS: MetricsRegistry = _NullMetrics()
