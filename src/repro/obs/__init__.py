"""Observability: tracing and metrics for the query lifecycle.

See :mod:`repro.obs.tracer` and :mod:`repro.obs.metrics`, and
``docs/observability.md`` for the event schema and CLI flags.
"""

from repro.obs.metrics import MetricsRegistry, NULL_METRICS, q_error
from repro.obs.tracer import (
    JsonLinesSink,
    MemorySink,
    NULL_TRACER,
    Span,
    Tracer,
)

__all__ = [
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "q_error",
]
