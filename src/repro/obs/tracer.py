"""Structured tracing for the query lifecycle.

DYNO's thesis is that the optimizer should watch itself run; this module
is how the *reproduction* watches itself run. A :class:`Tracer` emits
typed records -- spans (a named interval with attributes) and point
events -- to a pluggable sink: JSON-lines on disk for offline analysis,
an in-memory list for tests, or nothing at all.

Every record is one flat JSON object::

    {"ts": 0.0123, "seq": 7, "kind": "span_start"|"span_end"|"event",
     "name": "optimize", "span": 3, "attrs": {...}}

* ``ts``     -- driver wall-clock seconds since the tracer was created
                (``time.perf_counter`` based, monotonic);
* ``seq``    -- global emission order, dense and deterministic per run;
* ``kind``   -- ``span_start`` / ``span_end`` bracket an interval
                (``span_end`` additionally carries ``dur_s``); ``event``
                is a point occurrence;
* ``span``   -- the span id tying a start to its end (absent on events);
* ``attrs``  -- free-form JSON-serializable attributes. Attributes set
                during the span (e.g. the cost found by an optimization)
                appear on the ``span_end`` record.

Disabled tracing costs nothing measurable: the module-level
:data:`NULL_TRACER` advertises ``enabled = False`` so instrumented call
sites can guard attribute construction, and its ``span``/``event``
methods are allocation-free no-ops, keeping PR 1's perf baselines intact.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO

__all__ = [
    "JsonLinesSink",
    "MemorySink",
    "NULL_TRACER",
    "Span",
    "Tracer",
]


class MemorySink:
    """Collects records in a list -- the test sink."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonLinesSink:
    """Appends one JSON object per line to a file."""

    def __init__(self, path) -> None:
        self.path = path
        self._handle: IO[str] = open(path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._handle.write(
            json.dumps(record, sort_keys=True, default=str) + "\n"
        )

    def close(self) -> None:
        self._handle.flush()
        self._handle.close()


class Span:
    """One named interval; usable as a context manager.

    Attributes added with :meth:`set` after the span opened are carried
    on the closing ``span_end`` record -- how an ``optimize`` span ends
    up annotated with the cost it found.
    """

    __slots__ = ("_tracer", "name", "span_id", "attrs", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_span_id()
        self._started = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._started = self._tracer._now()
        self._tracer._emit("span_start", self.name, self.attrs,
                           span=self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._emit(
            "span_end", self.name, self.attrs, span=self.span_id,
            dur_s=self._tracer._now() - self._started,
        )


class Tracer:
    """Emits trace records to one sink. Thread-safe."""

    enabled = True

    def __init__(self, sink) -> None:
        self.sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        self._span_ids = 0
        self._epoch = time.perf_counter()

    # -- recording ------------------------------------------------------

    def span(self, name: str, /, **attrs) -> Span:
        """Open a span; use as ``with tracer.span("optimize") as sp:``.

        ``name`` is positional-only so ``name=...`` can be a span attr.
        """
        return Span(self, name, attrs)

    def event(self, name: str, /, **attrs) -> None:
        """Emit a point event (``name`` positional-only, as for spans)."""
        self._emit("event", name, attrs)

    def close(self) -> None:
        self.sink.close()

    # -- internals ------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _next_span_id(self) -> int:
        with self._lock:
            self._span_ids += 1
            return self._span_ids

    def _emit(self, kind: str, name: str, attrs: dict,
              span: int | None = None, dur_s: float | None = None) -> None:
        record: dict = {"ts": round(self._now(), 6), "kind": kind,
                        "name": name, "attrs": dict(attrs)}
        if span is not None:
            record["span"] = span
        if dur_s is not None:
            record["dur_s"] = round(dur_s, 6)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.sink.write(record)


class _NullSpan:
    """Shared do-nothing span returned by the disabled tracer."""

    __slots__ = ()
    name = ""
    span_id = 0
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullTracer(Tracer):
    """The disabled tracer: every operation is a constant no-op."""

    enabled = False

    def __init__(self) -> None:  # no sink, no clock, no lock
        pass

    def span(self, name: str, /, **attrs) -> Span:  # type: ignore[override]
        return _NULL_SPAN  # type: ignore[return-value]

    def event(self, name: str, /, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


#: The default tracer everywhere: tracing off, zero overhead.
NULL_TRACER: Tracer = _NullTracer()
