"""Change data capture over the simulated DFS.

A :class:`ChangeBatch` is one table's worth of row-level changes --
inserts, deletes (preimages), updates (preimage/postimage pairs) -- as a
CDC stream would deliver them. Batches come from the seeded
:class:`ChangeGenerator` (deterministic: same seed, same sequence of
batches) and are applied by :func:`apply_change_batch`, which does three
things atomically from the engine's point of view:

1. the base table is rebuilt (:meth:`Table.with_changes`) and
   re-registered under its own name -- the DFS file is overwritten and
   the table's data epoch bumps, so the result cache can never serve
   rows computed over the previous contents;
2. the batch's *delta files* are published as ordinary scannable tables:
   the insert side (inserts + update postimages) as
   ``{table}@delta{seq}``, the delete side (deletes + update preimages)
   as ``{table}@delta{seq}-del``. Delta tables are first-class leaves --
   they pilot, collect statistics, and optimize like any base table,
   which is what lets a refresh query go through the full
   optimize->pilot->replan path;
3. the metastore folds the delta into the table's statistics
   (:meth:`StatisticsMetastore.apply_table_delta`): append-only batches
   merge row/byte counts conservatively, delete/update batches
   invalidate every signature (synopses cannot un-count), and either way
   the subscribed plan and result caches evict their dependent entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.schema import FLOAT, INT, STRING
from repro.data.table import Row, Table
from repro.errors import PlanError

__all__ = [
    "AppliedChange",
    "ChangeBatch",
    "ChangeGenerator",
    "apply_change_batch",
    "delete_delta_name",
    "insert_delta_name",
]


def insert_delta_name(table: str, sequence: int) -> str:
    """DFS/table name of a batch's insert-side delta file."""
    return f"{table}@delta{sequence}"


def delete_delta_name(table: str, sequence: int) -> str:
    """DFS/table name of a batch's delete-side delta file."""
    return f"{table}@delta{sequence}-del"


@dataclass(frozen=True)
class ChangeBatch:
    """One table's row-level changes, CDC style.

    ``deletes`` holds full preimage rows (not just keys): the delete-side
    delta file must be joinable against the unchanged tables to compute
    which derived rows disappear. ``updates`` pairs (preimage,
    postimage); an update is exactly a delete of the preimage plus an
    insert of the postimage, which is how the delta files expose it.
    """

    table: str
    sequence: int
    inserts: tuple[Row, ...] = ()
    deletes: tuple[Row, ...] = ()
    updates: tuple[tuple[Row, Row], ...] = ()

    @property
    def append_only(self) -> bool:
        return not self.deletes and not self.updates

    @property
    def delta_inserts(self) -> tuple[Row, ...]:
        """Rows the table gained: inserts plus update postimages."""
        return self.inserts + tuple(after for _, after in self.updates)

    @property
    def delta_deletes(self) -> tuple[Row, ...]:
        """Rows the table lost: deletes plus update preimages."""
        return self.deletes + tuple(before for before, _ in self.updates)

    @property
    def change_count(self) -> int:
        return len(self.inserts) + len(self.deletes) + len(self.updates)

    def describe(self) -> str:
        return (f"{self.table}@batch{self.sequence}: "
                f"+{len(self.inserts)} -{len(self.deletes)} "
                f"~{len(self.updates)}")


class ChangeGenerator:
    """Seeded deterministic CDC source over one table.

    Each :meth:`next_batch` call samples the *current* table state (the
    generator applies its own batches as it emits them, so delete and
    update targets always exist), derives everything from
    ``random.Random(seed * 1_000_003 + sequence)``, and never touches
    wall clock or global randomness -- the batch stream is a pure
    function of ``(table, key_column, seed)``.

    Inserts clone an existing row as a template and mint a fresh key:
    integer keys continue past the current maximum, string keys get a
    ``cdc{seq}-{i}`` suffix-free synthetic value. Updates perturb the
    first numeric (or string) non-key column via ``mutate`` --
    overridable for workload-specific shapes.
    """

    def __init__(self, table: Table, key_column: str, seed: int = 2014,
                 mutate=None):
        table.schema.type_of(key_column)
        self.key_column = key_column
        self.seed = seed
        self.sequence = 0
        self.current = table
        self._mutate = mutate or self._default_mutate

    def next_batch(self, change_rate: float,
                   mix: tuple[float, float, float] = (1.0, 0.0, 0.0),
                   ) -> ChangeBatch:
        """Emit (and internally apply) one batch.

        ``change_rate`` is the fraction of the current cardinality to
        touch (at least one row); ``mix`` weights (inserts, updates,
        deletes). The default mix is append-only.
        """
        if change_rate <= 0:
            raise PlanError("change_rate must be positive")
        weights = [max(w, 0.0) for w in mix]
        if sum(weights) <= 0:
            raise PlanError("change mix needs at least one positive weight")
        rng = random.Random(self.seed * 1_000_003 + self.sequence)
        total = max(1, round(len(self.current.rows) * change_rate))
        n_insert = round(total * weights[0] / sum(weights))
        n_update = round(total * weights[1] / sum(weights))
        n_delete = total - n_insert - n_update
        # Mutating rows must exist; clamp to the current cardinality.
        n_update = min(n_update, len(self.current.rows))
        n_delete = min(max(n_delete, 0),
                       len(self.current.rows) - n_update)

        victims = rng.sample(range(len(self.current.rows)),
                             n_update + n_delete) \
            if (n_update + n_delete) else []
        updates = tuple(
            (dict(self.current.rows[i]),
             self._mutate(rng, dict(self.current.rows[i])))
            for i in victims[:n_update]
        )
        deletes = tuple(dict(self.current.rows[i])
                        for i in victims[n_update:])
        inserts = tuple(self._synthesize(rng, i) for i in range(n_insert))

        batch = ChangeBatch(self.current.name, self.sequence,
                            inserts, deletes, updates)
        self.current = self.current.with_changes(
            self.key_column, batch.inserts, batch.deletes, batch.updates
        )
        self.sequence += 1
        return batch

    # -- row synthesis -------------------------------------------------------

    def _synthesize(self, rng: random.Random, offset: int) -> Row:
        template = dict(rng.choice(self.current.rows))
        key_type = self.current.schema.type_of(self.key_column)
        if key_type.kind in (INT.kind, FLOAT.kind):
            top = max(
                (row[self.key_column] for row in self.current.rows
                 if isinstance(row.get(self.key_column), (int, float))),
                default=0,
            )
            template[self.key_column] = int(top) + 1 + offset
        else:
            template[self.key_column] = \
                f"cdc{self.sequence}-{offset}"
        return template

    def _default_mutate(self, rng: random.Random, row: Row) -> Row:
        """Perturb one non-key column; the postimage must differ."""
        for name, ftype in self.current.schema.fields:
            if name == self.key_column:
                continue
            value = row.get(name)
            if ftype.kind == INT.kind and isinstance(value, int):
                row[name] = value + rng.randint(1, 9)
                return row
            if ftype.kind == FLOAT.kind and isinstance(value, float):
                row[name] = value + rng.randint(1, 9)
                return row
        for name, ftype in self.current.schema.fields:
            if name != self.key_column and ftype.kind == STRING.kind \
                    and isinstance(row.get(name), str):
                row[name] = row[name] + "~"
                return row
        raise PlanError(
            f"no mutable non-key column in {self.current.name}; "
            "pass a custom mutate callable"
        )


@dataclass
class AppliedChange:
    """What :func:`apply_change_batch` did to the engine."""

    batch: ChangeBatch
    #: post-change cardinality of the base table.
    table_rows: int
    #: registered insert-side delta table name, or None when empty.
    insert_delta: str | None
    #: registered delete-side delta table name, or None when empty.
    delete_delta: str | None
    #: total delta rows across both sides.
    delta_rows: int
    #: estimated serialized bytes of the delta rows.
    delta_bytes: float
    #: metastore outcome per touched signature ("merged"/"invalidated").
    stats_actions: dict[str, str] = field(default_factory=dict)


def apply_change_batch(dyno, batch: ChangeBatch,
                       key_column: str) -> AppliedChange:
    """Fold one change batch into a running :class:`~repro.core.dyno.Dyno`.

    Ordering matters only at the end: the metastore fold runs *after*
    the base table is re-registered, so by the time cache-invalidation
    listeners fire, any re-executed query already sees the new data.
    """
    base = dyno.tables.get(batch.table)
    if base is None:
        raise PlanError(f"unknown table {batch.table!r} in change batch")

    new_table = base.with_changes(key_column, batch.inserts,
                                  batch.deletes, batch.updates)

    insert_rows = [dict(row) for row in batch.delta_inserts]
    delete_rows = [dict(row) for row in batch.delta_deletes]
    insert_delta = delete_delta = None
    delta_bytes = 0.0
    if insert_rows:
        insert_delta = insert_delta_name(batch.table, batch.sequence)
        delta_table = Table(insert_delta, base.schema, insert_rows)
        dyno.register_table(insert_delta, delta_table)
        delta_bytes += delta_table.size_in_bytes()
    if delete_rows:
        delete_delta = delete_delta_name(batch.table, batch.sequence)
        delta_table = Table(delete_delta, base.schema, delete_rows)
        dyno.register_table(delete_delta, delta_table)
        delta_bytes += delta_table.size_in_bytes()

    dyno.register_table(batch.table, new_table)
    actions = dyno.metastore.apply_table_delta(
        batch.table,
        delta_rows=float(len(insert_rows)),
        delta_bytes=delta_bytes if batch.append_only else 0.0,
        append_only=batch.append_only,
    )

    applied = AppliedChange(
        batch=batch,
        table_rows=len(new_table),
        insert_delta=insert_delta,
        delete_delta=delete_delta,
        delta_rows=len(insert_rows) + len(delete_rows),
        delta_bytes=delta_bytes,
        stats_actions=actions,
    )
    if dyno.tracer.enabled:
        dyno.tracer.event(
            "cdc.batch",
            table=batch.table,
            sequence=batch.sequence,
            inserts=len(batch.inserts),
            deletes=len(batch.deletes),
            updates=len(batch.updates),
            append_only=batch.append_only,
            table_rows=applied.table_rows,
            stats_merged=sum(1 for a in actions.values() if a == "merged"),
            stats_invalidated=sum(
                1 for a in actions.values() if a == "invalidated"
            ),
        )
    if dyno.metrics.enabled:
        dyno.metrics.inc("incremental.cdc_batches")
        dyno.metrics.observe("incremental.cdc_rows",
                             float(applied.delta_rows))
    return applied
