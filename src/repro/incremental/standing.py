"""Standing queries: registered once, kept fresh across change batches.

The manager mirrors the dynamic-tables design (SNIPPETS.md §1): each
registered query is split into a *core* (the join block plus an optional
GROUP BY -- everything that runs as MapReduce jobs) and a *tail* (the
trailing ORDER BY / projection stages Jaql evaluates client-side). The
maintained state lives at core level; the tail is re-applied to the full
state after every refresh, which is what makes LIMIT queries safely
maintainable (the state is never truncated).

Per change batch, each affected query picks a refresh strategy:

* **delta** -- run the core query with the changed table's scan
  substituted by the batch's delta file(s)
  (:func:`repro.jaql.rewrites.substitute_scan`), then merge the delta
  rows into the maintained state: group-level merge for GROUP BY cores
  (count/sum add, min/max take extrema -- append-only batches only),
  multiset union/subtract for pure-join cores (inserts and deletes);
* **full** -- re-run the core query from scratch and replace the state.

The choice is cardinality-based, via the optimizer's own
:class:`~repro.optimizer.cardinality.CardinalityModel`: estimate the
core's output once with the changed leaf at delta size and once at full
size; when the ratio exceeds ``full_threshold`` (default 0.3, the
dynamic-tables rule of thumb) the delta join would touch so much of the
data that recomputing is cheaper. Queries whose shape cannot be merged
(avg aggregates, self-joined change tables, delete batches against
GROUP BY state -- synopses and group states cannot un-count) force the
full strategy with an explicit reason.

Both strategies execute as ordinary :class:`QueryRequest`s through the
service's tenant scheduler -- refreshes compete fairly with ad-hoc
traffic, and the refresh query itself goes through the complete
optimize->pilot->replan path, so corrections and mid-job triggers apply
to maintenance work exactly as to queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.data.table import Row
from repro.errors import PlanError
from repro.incremental.cdc import AppliedChange
from repro.jaql.expr import GroupBy, OrderBy, Project, QuerySpec
from repro.jaql.interpreter import order_key
from repro.jaql.rewrites import substitute_scan
from repro.optimizer.cardinality import CardinalityModel
from repro.service.service import QueryOutcome, QueryRequest
from repro.stats.statistics import TableStats

__all__ = [
    "RefreshDecision",
    "RefreshOutcome",
    "RefreshReport",
    "StandingQuery",
    "StandingQueryManager",
]

#: aggregate ops whose per-group outputs merge exactly under appends.
MERGEABLE_OPS = frozenset(("count", "sum", "min", "max"))


@dataclass(frozen=True)
class RefreshDecision:
    """Why one standing query refreshed the way it did."""

    query: str
    table: str
    sequence: int
    #: "delta" or "full".
    strategy: str
    reason: str
    #: estimated core-output rows with the changed leaf at delta size.
    delta_estimate: float
    #: estimated core-output rows at full size.
    full_estimate: float
    #: delta_estimate / full_estimate (0 when estimation was skipped).
    ratio: float


@dataclass
class RefreshOutcome:
    """One standing query's refresh result for one change batch."""

    query: str
    decision: RefreshDecision
    #: final (tail-applied) row count after the refresh.
    rows: int = 0
    #: simulated seconds spent by the refresh queries.
    simulated_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RefreshReport:
    """Everything one change batch triggered."""

    table: str
    sequence: int
    outcomes: list[RefreshOutcome] = field(default_factory=list)
    #: outcomes of ad-hoc requests submitted alongside the refreshes.
    adhoc: list[QueryOutcome] = field(default_factory=list)

    @property
    def delta_count(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.decision.strategy == "delta")

    @property
    def full_count(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.decision.strategy == "full")


@dataclass
class StandingQuery:
    """One registered query and its maintained core-level state."""

    name: str
    spec: QuerySpec
    #: core spec: the original root with trailing Project/OrderBy stripped.
    core: QuerySpec
    #: stripped trailing stages, outermost first.
    tail: tuple[Any, ...]
    base_tables: frozenset[str]
    #: table -> number of block aliases scanning it (self-join detection).
    alias_counts: dict[str, int]
    group_by: GroupBy | None
    #: static reason delta refresh can never apply (None = eligible).
    ineligible: str | None
    tenant: str
    priority: int
    #: maintained rows at core level (group rows or raw join rows).
    state: list[Row] = field(default_factory=list)
    decisions: list[RefreshDecision] = field(default_factory=list)


class StandingQueryManager:
    """Registers queries with a service and keeps their results fresh."""

    def __init__(self, service, full_threshold: float = 0.3,
                 tenant: str = "standing", priority: int = 1):
        if not 0 < full_threshold <= 1:
            raise PlanError("full_threshold must be in (0, 1]")
        self.service = service
        self.full_threshold = full_threshold
        self.tenant = tenant
        self.priority = priority
        self.queries: dict[str, StandingQuery] = {}

    # -- registration --------------------------------------------------------

    def register(self, name: str, query: QuerySpec | str,
                 tenant: str | None = None,
                 priority: int | None = None) -> StandingQuery:
        """Register a query and seed its state with an initial run.

        The seed executes the *core* query through the service (full
        pilot/optimize path), so the metastore is warm for the very
        first refresh decision.
        """
        if name in self.queries:
            raise PlanError(f"standing query {name!r} already registered")
        dyno = self.service.dyno
        spec = dyno.parse(query, name) if isinstance(query, str) else query

        node = spec.root
        tail: list[Any] = []
        while isinstance(node, (Project, OrderBy)):
            tail.append(node)
            node = node.children()[0]
        core = QuerySpec(f"{name}.core", node, spec.description)
        group_by = node if isinstance(node, GroupBy) else None

        extracted = dyno.prepare(core)
        alias_counts: dict[str, int] = {}
        for leaf in extracted.block.base_leaves():
            for _ in leaf.aliases:
                alias_counts[leaf.source_name] = \
                    alias_counts.get(leaf.source_name, 0) + 1
        base_tables = frozenset(alias_counts)

        ineligible = None
        if group_by is not None:
            bad = sorted({agg.op for agg in group_by.aggregates}
                         - MERGEABLE_OPS)
            if bad:
                ineligible = (f"aggregate(s) {', '.join(bad)} cannot be "
                              "merged from partial outputs")

        standing = StandingQuery(
            name=name, spec=spec, core=core, tail=tuple(tail),
            base_tables=base_tables, alias_counts=alias_counts,
            group_by=group_by, ineligible=ineligible,
            tenant=tenant or self.tenant,
            priority=priority or self.priority,
        )
        outcome, = self.service.run_batch([
            QueryRequest.single(f"{name}.seed", core,
                                tenant=standing.tenant,
                                priority=standing.priority)
        ])
        if not outcome.ok:
            raise PlanError(
                f"seeding standing query {name!r} failed: {outcome.error}"
            )
        standing.state = [dict(row) for row in outcome.rows]
        self.queries[name] = standing
        if self.service.tracer.enabled:
            self.service.tracer.event(
                "standing.register", query=name,
                tables=sorted(base_tables),
                eligible=ineligible is None,
                rows=len(standing.state),
            )
        return standing

    def result(self, name: str) -> list[Row]:
        """Current maintained result (tail stages applied), a fresh copy."""
        standing = self._get(name)
        return self._apply_tail(standing, standing.state)

    # -- refresh -------------------------------------------------------------

    def refresh(self, applied: AppliedChange,
                adhoc: Sequence[QueryRequest] = ()) -> RefreshReport:
        """React to one applied change batch.

        Builds refresh requests for every affected standing query,
        submits them *together with* any ad-hoc requests through the
        service's tenant scheduler (fair competition), then folds the
        refresh results into the maintained states.
        """
        batch = applied.batch
        report = RefreshReport(batch.table, batch.sequence)
        affected = [q for q in self.queries.values()
                    if batch.table in q.base_tables]
        if not affected and not adhoc:
            return report

        requests: list[QueryRequest] = []
        plan: list[tuple[StandingQuery, RefreshDecision,
                         list[tuple[str, int]]]] = []
        with self.service.tracer.span(
            "refresh", table=batch.table, sequence=batch.sequence,
            queries=len(affected),
        ) as span:
            for standing in affected:
                decision = self._decide(standing, applied)
                standing.decisions.append(decision)
                slots: list[tuple[str, int]] = []
                for kind, spec in self._refresh_specs(standing, applied,
                                                      decision):
                    slots.append((kind, len(requests)))
                    requests.append(QueryRequest.single(
                        spec.name, spec,
                        tenant=standing.tenant,
                        priority=standing.priority,
                    ))
                plan.append((standing, decision, slots))
                if self.service.tracer.enabled:
                    self.service.tracer.event(
                        "refresh.decision",
                        query=standing.name,
                        table=batch.table,
                        sequence=batch.sequence,
                        strategy=decision.strategy,
                        reason=decision.reason,
                        ratio=round(decision.ratio, 6),
                    )
                if self.service.metrics.enabled:
                    self.service.metrics.inc(
                        f"incremental.refresh_{decision.strategy}"
                    )

            outcomes = self.service.run_batch(requests + list(adhoc))
            report.adhoc = outcomes[len(requests):]

            for standing, decision, slots in plan:
                outcome = self._merge(standing, applied, decision,
                                      {kind: outcomes[index]
                                       for kind, index in slots})
                report.outcomes.append(outcome)
            span.set(
                delta=report.delta_count, full=report.full_count,
                errors=sum(1 for o in report.outcomes if not o.ok),
            )
        return report

    # -- decision ------------------------------------------------------------

    def _decide(self, standing: StandingQuery,
                applied: AppliedChange) -> RefreshDecision:
        batch = applied.batch
        forced = self._forced_full_reason(standing, applied)
        if forced is not None:
            return RefreshDecision(standing.name, batch.table,
                                   batch.sequence, "full", forced,
                                   0.0, 0.0, 0.0)
        delta_est, full_est = self._estimate(standing, applied)
        ratio = delta_est / max(full_est, 1.0)
        if ratio > self.full_threshold:
            return RefreshDecision(
                standing.name, batch.table, batch.sequence, "full",
                f"estimated delta output is {ratio:.0%} of a full "
                f"recompute (> {self.full_threshold:.0%})",
                delta_est, full_est, ratio,
            )
        return RefreshDecision(
            standing.name, batch.table, batch.sequence, "delta",
            f"estimated delta output is {ratio:.0%} of a full "
            f"recompute (<= {self.full_threshold:.0%})",
            delta_est, full_est, ratio,
        )

    def _forced_full_reason(self, standing: StandingQuery,
                            applied: AppliedChange) -> str | None:
        if standing.ineligible is not None:
            return standing.ineligible
        if standing.alias_counts.get(applied.batch.table, 0) > 1:
            return (f"{applied.batch.table} is scanned under multiple "
                    "aliases (self-join deltas need cross terms)")
        if standing.group_by is not None \
                and not applied.batch.append_only:
            return ("group states cannot un-count deleted or updated "
                    "rows")
        return None

    def _estimate(self, standing: StandingQuery,
                  applied: AppliedChange) -> tuple[float, float]:
        """(delta-sized, full-sized) core-output row estimates."""
        dyno = self.service.dyno
        block = dyno.prepare(standing.core).block
        full_stats: dict[str, TableStats] = {}
        missing: list[str] = []
        for leaf in block.base_leaves():
            signature = leaf.signature()
            stats = dyno.metastore.get(signature)
            if stats is None:
                missing.append(signature)
            else:
                full_stats[signature] = stats
        if missing:
            # The changed table's signatures are the first casualties of
            # a delta batch (the metastore invalidates them). The ratio
            # needs *column synopses* -- without distinct counts the
            # model's join selectivities default asymmetrically and the
            # delta/full ratio is noise -- so probe ground truth for the
            # missing leaves only. Deliberately NOT published to the
            # metastore: these are decision-local; the refresh query
            # still re-pilots and republishes honestly.
            from repro.core.baselines import oracle_leaf_stats

            probed = oracle_leaf_stats(dyno.tables, block)
            for signature in missing:
                full_stats[signature] = probed[signature]
        delta_stats = dict(full_stats)
        delta_rows = float(max(applied.delta_rows, 1))
        for leaf in block.base_leaves():
            if leaf.source_name != applied.batch.table:
                continue
            signature = leaf.signature()
            stats = full_stats[signature]
            scale = delta_rows / max(stats.row_count, 1.0)
            delta_stats[signature] = stats.scaled_to(
                delta_rows, max(stats.size_bytes * scale, 1.0)
            )
        aliases = frozenset(
            alias for leaf in block.leaves for alias in leaf.aliases
        )
        full_est = CardinalityModel(block, full_stats).estimate(aliases)
        delta_est = CardinalityModel(block, delta_stats).estimate(aliases)
        return delta_est.rows, full_est.rows

    # -- refresh execution ---------------------------------------------------

    def _refresh_specs(self, standing: StandingQuery,
                       applied: AppliedChange,
                       decision: RefreshDecision,
                       ) -> list[tuple[str, QuerySpec]]:
        """(kind, spec) pairs to execute for one query's refresh."""
        batch = applied.batch
        if decision.strategy == "full":
            return [("full", QuerySpec(
                f"{standing.name}.full{batch.sequence}",
                standing.core.root,
            ))]
        specs: list[tuple[str, QuerySpec]] = []
        if applied.insert_delta is not None:
            specs.append(("insert", QuerySpec(
                f"{standing.name}.delta{batch.sequence}i",
                substitute_scan(standing.core.root, batch.table,
                                applied.insert_delta),
            )))
        if applied.delete_delta is not None:
            specs.append(("delete", QuerySpec(
                f"{standing.name}.delta{batch.sequence}d",
                substitute_scan(standing.core.root, batch.table,
                                applied.delete_delta),
            )))
        return specs

    def _merge(self, standing: StandingQuery, applied: AppliedChange,
               decision: RefreshDecision,
               by_kind: dict[str, QueryOutcome]) -> RefreshOutcome:
        outcome = RefreshOutcome(standing.name, decision)
        failed = [o for o in by_kind.values() if not o.ok]
        if failed:
            outcome.error = failed[0].error
            return outcome
        outcome.simulated_seconds = sum(
            o.execution.total_seconds
            for o in by_kind.values() if o.execution is not None
        )
        if decision.strategy == "full":
            standing.state = [dict(row)
                              for row in by_kind["full"].rows]
        elif standing.group_by is not None:
            inserted = by_kind.get("insert")
            if inserted is not None:
                self._merge_groups(standing, inserted.rows)
        else:
            inserted = by_kind.get("insert")
            if inserted is not None:
                standing.state.extend(
                    dict(row) for row in inserted.rows
                )
            deleted = by_kind.get("delete")
            if deleted is not None:
                self._subtract_rows(standing, deleted.rows)
        outcome.rows = len(self._apply_tail(standing, standing.state))
        return outcome

    def _merge_groups(self, standing: StandingQuery,
                      delta_rows: list[Row]) -> None:
        """Fold delta group rows into the state (append-only merges)."""
        group_by = standing.group_by
        assert group_by is not None
        key_names = [key.qualified for key in group_by.keys]
        index = {
            tuple(_hashable(row.get(k)) for k in key_names): row
            for row in standing.state
        }
        for delta in delta_rows:
            key = tuple(_hashable(delta.get(k)) for k in key_names)
            current = index.get(key)
            if current is None:
                fresh = dict(delta)
                standing.state.append(fresh)
                index[key] = fresh
                continue
            for agg in group_by.aggregates:
                name = agg.output_name
                old, new = current.get(name), delta.get(name)
                if agg.op in ("count", "sum"):
                    current[name] = (old or 0) + (new or 0)
                elif new is None:
                    continue
                elif old is None:
                    current[name] = new
                elif agg.op == "min":
                    current[name] = min(old, new)
                else:  # max
                    current[name] = max(old, new)

    def _subtract_rows(self, standing: StandingQuery,
                       delta_rows: list[Row]) -> None:
        """Multiset-subtract delete-side join rows from the state."""
        pending: dict[Any, int] = {}
        for row in delta_rows:
            key = _row_key(row)
            pending[key] = pending.get(key, 0) + 1
        kept: list[Row] = []
        for row in standing.state:
            key = _row_key(row)
            remaining = pending.get(key, 0)
            if remaining > 0:
                pending[key] = remaining - 1
            else:
                kept.append(row)
        leftovers = sum(pending.values())
        if leftovers:
            raise PlanError(
                f"standing query {standing.name!r} delete refresh "
                f"produced {leftovers} row(s) absent from the state; "
                "the maintained result diverged from the data"
            )
        standing.state = kept

    # -- helpers -------------------------------------------------------------

    def _apply_tail(self, standing: StandingQuery,
                    rows: list[Row]) -> list[Row]:
        current = list(rows)
        for stage in reversed(standing.tail):
            if isinstance(stage, OrderBy):
                current = sorted(
                    current,
                    key=lambda row: tuple(
                        order_key(ref.evaluate(row))
                        for ref in stage.keys
                    ),
                    reverse=stage.descending,
                )
                if stage.limit is not None:
                    current = current[: stage.limit]
            else:
                current = [stage.project_row(row) for row in current]
        return [dict(row) for row in current]

    def _get(self, name: str) -> StandingQuery:
        standing = self.queries.get(name)
        if standing is None:
            raise PlanError(f"unknown standing query {name!r}")
        return standing


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _hashable(item)) for key, item in value.items()
        ))
    return value


def _row_key(row: Row) -> Any:
    """Order-independent hashable fingerprint of one row."""
    return tuple(sorted(
        (name, _hashable(value)) for name, value in row.items()
    ))
