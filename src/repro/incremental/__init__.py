"""Incremental maintenance of standing queries over changing data.

The ROADMAP's last open item: every workload so far was a read-only
one-shot, yet the paper's core promise -- re-optimizing as statistics
shift -- matters most when the data itself keeps changing. This package
adds the two halves:

* :mod:`repro.incremental.cdc` -- a change-data-capture layer over the
  simulated DFS: seeded, deterministic append/update/delete batches per
  table, applied atomically (base table re-registered, delta files
  published as scannable tables, metastore statistics merged or
  invalidated per the delta's shape);
* :mod:`repro.incremental.standing` -- a ``StandingQueryManager`` that
  registers queries with the service, tracks which base tables each
  canonical block reads, and on every change batch chooses -- by
  estimated affected-row cardinality against the full recompute, via the
  existing :class:`~repro.optimizer.cardinality.CardinalityModel` --
  between an incremental delta-join refresh and a full DYNOPT recompute,
  both executed through the service's optimize->pilot->replan path.
"""

from repro.incremental.cdc import (
    AppliedChange,
    ChangeBatch,
    ChangeGenerator,
    apply_change_batch,
    delete_delta_name,
    insert_delta_name,
)
from repro.incremental.standing import (
    RefreshDecision,
    RefreshOutcome,
    RefreshReport,
    StandingQuery,
    StandingQueryManager,
)

__all__ = [
    "AppliedChange",
    "ChangeBatch",
    "ChangeGenerator",
    "RefreshDecision",
    "RefreshOutcome",
    "RefreshReport",
    "StandingQuery",
    "StandingQueryManager",
    "apply_change_batch",
    "delete_delta_name",
    "insert_delta_name",
]
