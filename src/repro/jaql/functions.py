"""User-defined functions.

UDFs are opaque to the optimizer: no selectivity can be derived from their
definition, which is the core motivation for pilot runs (Sections 1 and 4).
Each :class:`Udf` carries a Python callable (its real semantics -- pilot runs
measure its *actual* selectivity on the data) plus a simulated per-call CPU
cost that the time model charges.

Two families are provided:

* domain UDFs used by the paper's examples -- ``sentanalysis`` over review
  text and ``checkid`` over review/tweet pairs (query Q1, Section 4.1);
* :func:`make_selective_udf`, a deterministic hash-based filter with an
  exactly tunable selectivity, used to build the modified queries Q8'/Q9'
  and the Figure 6 selectivity sweep (0.01% .. 100%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PlanError
from repro.stats.kmv import HASH_DOMAIN, kmv_hash


@dataclass(frozen=True)
class Udf:
    """A named user-defined boolean function with a simulated CPU cost."""

    name: str
    fn: Callable[..., bool]
    cost_seconds: float = 0.0
    #: free-form version tag so re-registered UDFs get fresh statistics.
    version: str = "1"

    def __call__(self, *args: Any) -> bool:
        return bool(self.fn(*args))

    def signature(self) -> str:
        return f"udf:{self.name}@{self.version}"


class UdfRegistry:
    """Name -> UDF mapping, as Jaql's function catalog."""

    def __init__(self) -> None:
        self._udfs: dict[str, Udf] = {}

    def register(self, udf: Udf, replace: bool = False) -> Udf:
        if udf.name in self._udfs and not replace:
            raise PlanError(f"UDF already registered: {udf.name!r}")
        self._udfs[udf.name] = udf
        return udf

    def get(self, name: str) -> Udf:
        try:
            return self._udfs[name]
        except KeyError:
            raise PlanError(f"unknown UDF: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._udfs

    def names(self) -> list[str]:
        return sorted(self._udfs)


# ---------------------------------------------------------------------------
# Paper example UDFs (query Q1)
# ---------------------------------------------------------------------------

_POSITIVE_MARKERS = ("great", "amazing", "fantastic", "excellent", "tasty")


def sentanalysis(text: Any) -> bool:
    """Toy sentiment analysis: True when the review reads positive."""
    if not isinstance(text, str):
        return False
    return any(marker in text for marker in _POSITIVE_MARKERS)


def checkid(verified: Any, stars: Any) -> bool:
    """Toy identity check over the review x tweet join result.

    A review counts as identity-checked when the matched tweet's author is
    verified and the review is substantive (a star rating exists and is
    above the spam floor).
    """
    return bool(verified) and isinstance(stars, int) and stars >= 2


def default_registry() -> UdfRegistry:
    registry = UdfRegistry()
    registry.register(Udf("sentanalysis", sentanalysis, cost_seconds=0.002))
    registry.register(Udf("checkid", checkid, cost_seconds=0.001))
    return registry


# ---------------------------------------------------------------------------
# Tunable-selectivity UDFs (Q8', Q9', Figure 6 sweep)
# ---------------------------------------------------------------------------


def make_selective_udf(name: str, selectivity: float,
                       cost_seconds: float = 0.001,
                       salt: str = "") -> Udf:
    """A UDF passing a deterministic ``selectivity`` fraction of values.

    The decision hashes ``(name, salt, value)``, so it is stable across
    processes, uncorrelated with other UDFs, and its realized selectivity on
    any large column converges to the requested one -- but the *optimizer*
    cannot know this; only a pilot run can observe it.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise PlanError(f"selectivity must be in [0, 1], got {selectivity}")
    threshold = int(selectivity * HASH_DOMAIN)

    def accept(value: Any) -> bool:
        return kmv_hash((name, salt, value)) <= threshold

    return Udf(
        name,
        accept,
        cost_seconds=cost_seconds,
        version=f"sel={selectivity}:salt={salt}",
    )


def make_pair_udf(name: str, selectivity: float,
                  cost_seconds: float = 0.001, salt: str = "") -> Udf:
    """Two-argument variant (e.g. Q8''s UDF over the orders x customer join)."""
    if not 0.0 <= selectivity <= 1.0:
        raise PlanError(f"selectivity must be in [0, 1], got {selectivity}")
    threshold = int(selectivity * HASH_DOMAIN)

    def accept(left: Any, right: Any) -> bool:
        return kmv_hash((name, salt, left, right)) <= threshold

    return Udf(
        name,
        accept,
        cost_seconds=cost_seconds,
        version=f"pair-sel={selectivity}:salt={salt}",
    )


@dataclass
class UdfCallCounter:
    """Test/diagnostic helper wrapping a UDF to count invocations."""

    udf: Udf
    calls: int = 0
    accepted: int = 0
    _wrapped: Udf | None = field(default=None, repr=False)

    def wrapped(self) -> Udf:
        if self._wrapped is None:
            def counting(*args: Any) -> bool:
                self.calls += 1
                result = self.udf(*args)
                if result:
                    self.accepted += 1
                return result

            self._wrapped = Udf(
                self.udf.name, counting, self.udf.cost_seconds,
                self.udf.version,
            )
        return self._wrapped

    @property
    def observed_selectivity(self) -> float:
        return self.accepted / self.calls if self.calls else 0.0
