"""Vectorized predicate evaluation over column batches.

The row engine evaluates predicates one row-dict at a time; the columnar
path evaluates them as *selections*: a predicate maps a list of candidate
row indices to the sublist that passes. Semantics are exactly those of
``Predicate.evaluate`` on qualified rows:

* a ``None`` operand fails a comparison;
* a ``TypeError`` from a comparison counts as False (mixed-type data);
* ``And`` narrows sequentially, ``Or`` unions its branches (a row passes
  if any branch passes), UDFs are applied per surviving index.

Comparisons against literals over None-free ``int64``/``float64`` columns
can use numpy boolean masks; the mask is converted straight back to a
Python index list (``flatnonzero(...).tolist()``) so numpy scalars never
escape into rows, keys, or statistics. Mask eligibility is conservative:
any pairing whose numpy comparison could differ from Python's exact
semantics (e.g. ``int64`` column vs ``float`` literal, huge int literals
past 2**53 against floats) falls back to the Python loop.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.jaql.expr import (
    And,
    ColumnRef,
    Comparison,
    Or,
    Predicate,
    UdfPredicate,
    _COMPARATORS,
)

try:  # optional accelerator (see repro.data.columns)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

#: numpy comparison per operator; only built when numpy imports.
_NP_OPS: dict[str, Any] = {}
if _np is not None:
    _NP_OPS = {
        "=": _np.equal,
        "!=": _np.not_equal,
        "<": _np.less,
        "<=": _np.less_equal,
        ">": _np.greater,
        ">=": _np.greater_equal,
    }

#: int literals past this magnitude are not exactly representable as
#: float64; comparing them against a float column via numpy could round.
_FLOAT_EXACT_INT = 1 << 53


def supports_vector(predicates: Sequence[Predicate]) -> bool:
    """True when every predicate is a known, vectorizable node type."""
    return all(_supported(predicate) for predicate in predicates)


def _supported(predicate: Predicate) -> bool:
    kind = type(predicate)
    if kind is Comparison or kind is UdfPredicate:
        return True
    if kind is And or kind is Or:
        return supports_vector(predicate.parts)
    return False


class ColumnResolver:
    """Per-batch cache of ``ColumnRef -> column values`` (and arrays).

    ``raw`` selects the unqualified field name (``ref.column``) -- the leaf
    scan evaluates predicates over base-table rows *before* qualification,
    which is equivalent because qualification renames every field 1:1.
    ``use_numpy`` gates the mask path; arrays only exist for step-free
    refs over batches that expose them (DFS split batches).
    """

    __slots__ = ("_batch", "_raw", "_use_numpy", "_values", "_arrays")

    def __init__(self, batch: Any, raw: bool = False,
                 use_numpy: bool = False):
        self._batch = batch
        self._raw = raw
        self._use_numpy = use_numpy
        self._values: dict[ColumnRef, list[Any]] = {}
        self._arrays: dict[ColumnRef, Any] = {}

    def _name(self, ref: ColumnRef) -> str:
        return ref.column if self._raw else ref.qualified

    def values(self, ref: ColumnRef) -> list[Any]:
        values = self._values.get(ref)
        if values is None:
            values = self._batch.column(self._name(ref))
            if ref.steps:
                values = _walk_steps(values, ref.steps)
            self._values[ref] = values
        return values

    def array(self, ref: ColumnRef) -> Any:
        if not self._use_numpy or ref.steps:
            return None
        if ref in self._arrays:
            return self._arrays[ref]
        array = self._batch.array(self._name(ref))
        self._arrays[ref] = array
        return array


def _walk_steps(values: list[Any], steps: tuple[str | int, ...]) -> list[Any]:
    """Apply a ref's nested-path steps to every value (None-propagating)."""
    out: list[Any] = []
    append = out.append
    for value in values:
        for step in steps:
            if value is None:
                break
            if isinstance(step, str):
                value = value.get(step) if isinstance(value, dict) else None
            else:
                if isinstance(value, list) and step < len(value):
                    value = value[step]
                else:
                    value = None
        append(value)
    return out


def select(predicates: Sequence[Predicate], columns: ColumnResolver,
           count: int) -> list[int]:
    """Indices (ascending) of the batch rows passing all ``predicates``."""
    indices: Sequence[int] = range(count)
    for predicate in predicates:
        if not indices:
            break
        indices = _apply(predicate, indices, columns)
    if type(indices) is range:
        return list(indices)
    return indices  # type: ignore[return-value]


def _apply(predicate: Predicate, indices: Sequence[int],
           columns: ColumnResolver) -> list[int]:
    kind = type(predicate)
    if kind is Comparison:
        return _apply_comparison(predicate, indices, columns)
    if kind is And:
        narrowed: Sequence[int] = indices
        for part in predicate.parts:
            if not narrowed:
                break
            narrowed = _apply(part, narrowed, columns)
        return list(narrowed) if type(narrowed) is range else narrowed
    if kind is Or:
        survivors: set[int] = set()
        for part in predicate.parts:
            survivors.update(_apply(part, indices, columns))
        return sorted(survivors)
    if kind is UdfPredicate:
        udf = predicate.udf
        arg_columns = [columns.values(arg) for arg in predicate.args]
        if len(arg_columns) == 1:
            column = arg_columns[0]
            return [i for i in indices if udf(column[i])]
        return [
            i for i in indices
            if udf(*(column[i] for column in arg_columns))
        ]
    raise TypeError(
        f"cannot vectorize predicate type {kind.__name__}"
    )


def _apply_comparison(predicate: Comparison, indices: Sequence[int],
                      columns: ColumnResolver) -> list[int]:
    right = predicate.right
    comparator = _COMPARATORS[predicate.op]
    if isinstance(right, ColumnRef):
        left_values = columns.values(predicate.left)
        right_values = columns.values(right)
        try:
            return [
                i for i in indices
                if (lv := left_values[i]) is not None
                and (rv := right_values[i]) is not None
                and comparator(lv, rv)
            ]
        except TypeError:
            # Mixed-type data: redo the scan guarding each comparison the
            # way Comparison.evaluate does (a failing pair is just False).
            return _guarded_pair_scan(comparator, left_values, right_values,
                                      indices)
    if right is None:
        # `col op None` is False for every row in the row engine.
        return []
    array = columns.array(predicate.left)
    if array is not None:
        mask = _literal_mask(array, predicate.op, right)
        if mask is not None:
            if type(indices) is range and len(indices) == len(mask):
                return _np.flatnonzero(mask).tolist()
            return [i for i in indices if mask[i]]
    left_values = columns.values(predicate.left)
    try:
        return [
            i for i in indices
            if (lv := left_values[i]) is not None and comparator(lv, right)
        ]
    except TypeError:
        return _guarded_literal_scan(comparator, left_values, right, indices)


def _guarded_pair_scan(comparator, left_values, right_values,
                       indices) -> list[int]:
    out: list[int] = []
    append = out.append
    for i in indices:
        lv = left_values[i]
        rv = right_values[i]
        if lv is None or rv is None:
            continue
        try:
            if comparator(lv, rv):
                append(i)
        except TypeError:
            pass
    return out


def _guarded_literal_scan(comparator, left_values, right,
                          indices) -> list[int]:
    out: list[int] = []
    append = out.append
    for i in indices:
        lv = left_values[i]
        if lv is None:
            continue
        try:
            if comparator(lv, right):
                append(i)
        except TypeError:
            pass
    return out


def _literal_mask(array: Any, op: str, literal: Any) -> Any:
    """Boolean mask for ``array op literal``, or None when not exact.

    The array is None-free ``int64`` or ``float64`` by construction
    (:func:`repro.data.columns.to_column_array`). Only literal/dtype
    pairings whose numpy comparison provably matches Python's exact
    semantics take the mask path.
    """
    kind = type(literal)
    dtype_kind = array.dtype.kind
    if dtype_kind == "i":
        # int64 column: only exact-int literals that fit comfortably.
        if kind is not int or abs(literal) > (1 << 62):
            return None
    elif dtype_kind == "f":
        if kind is int:
            if abs(literal) > _FLOAT_EXACT_INT:
                return None
        elif kind is not float:
            return None
    else:  # pragma: no cover - to_column_array only emits i/f
        return None
    return _NP_OPS[op](array, literal)
