"""Parser for the SQL dialect Jaql accepts (close to SQL-92, Section 2.1).

Supports the query shape the paper works with: SELECT-FROM-WHERE with
conjunctive predicates, UDF calls in the WHERE clause, nested paths into
arrays/structs (``rs.addr[0].zip``), a parenthesized OR group (Q7's
nation-pair disjunction), GROUP BY, ORDER BY and LIMIT.

The FROM-clause join tree is built with Jaql's documented heuristic
(Section 2.2.2): relations are joined in the order they appear, except that
a relation avoiding a cartesian product is preferred when the next one in
line has no join condition with the tables joined so far.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError, PlanError
from repro.jaql.expr import (
    Aggregate,
    ColumnRef,
    Comparison,
    Expr,
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Or,
    OrderBy,
    Predicate,
    Project,
    QuerySpec,
    Scan,
    UdfPredicate,
    conjunction,
)
from repro.jaql.functions import UdfRegistry

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d+|\d+)"
    r"|(?P<string>'(?:[^'\\]|\\.)*')"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<punct>[(),.\[\]*])"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "group", "order", "by",
    "as", "desc", "asc", "limit", "count", "sum", "min", "max", "avg",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | ident | keyword | op | punct | eof
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise ParseError(f"unexpected character {remainder[0]!r}", pos)
        pos = match.end()
        if match.group("number") is not None:
            tokens.append(_Token("number", match.group("number"),
                                 match.start()))
        elif match.group("string") is not None:
            tokens.append(_Token("string", match.group("string"),
                                 match.start()))
        elif match.group("ident") is not None:
            word = match.group("ident")
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            tokens.append(_Token(kind, word, match.start()))
        elif match.group("op") is not None:
            tokens.append(_Token("op", match.group("op"), match.start()))
        else:
            tokens.append(_Token("punct", match.group("punct"),
                                 match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class SqlParser:
    """Recursive-descent parser producing a :class:`QuerySpec`."""

    def __init__(self, udfs: UdfRegistry | None = None):
        self.udfs = udfs or UdfRegistry()
        self._tokens: list[_Token] = []
        self._index = 0

    # -- public -------------------------------------------------------------------

    def parse(self, text: str, name: str = "query") -> QuerySpec:
        self._tokens = _tokenize(text)
        self._index = 0

        self._expect_keyword("select")
        select_items = self._parse_select_list()
        self._expect_keyword("from")
        relations = self._parse_from_list()
        predicates: list[Predicate] = []
        if self._at_keyword("where"):
            self._advance()
            predicates = self._parse_conjunction()
        group_keys: list[ColumnRef] = []
        if self._at_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_keys = self._parse_ref_list()
        order_keys: list[ColumnRef] = []
        descending = False
        limit: int | None = None
        if self._at_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            order_keys = self._parse_ref_list()
            if self._at_keyword("desc"):
                descending = True
                self._advance()
            elif self._at_keyword("asc"):
                self._advance()
        if self._at_keyword("limit"):
            self._advance()
            limit = int(self._expect("number").text)
        self._expect("eof")

        root = self._build_tree(
            relations, predicates, select_items, group_keys,
            order_keys, descending, limit,
        )
        return QuerySpec(name, root)

    # -- token plumbing -------------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.position
            )
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text.lower() == word

    def _expect_keyword(self, word: str) -> None:
        if not self._at_keyword(word):
            token = self._peek()
            raise ParseError(
                f"expected {word.upper()}, found {token.text!r}",
                token.position,
            )
        self._advance()

    def _at_punct(self, char: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == char

    def _expect_punct(self, char: str) -> None:
        if not self._at_punct(char):
            token = self._peek()
            raise ParseError(
                f"expected {char!r}, found {token.text!r}", token.position
            )
        self._advance()

    # -- clause parsers --------------------------------------------------------------

    def _parse_select_list(self) -> list[tuple[ColumnRef | Aggregate, str]]:
        items: list[tuple[ColumnRef | Aggregate, str]] = []
        while True:
            token = self._peek()
            if (token.kind == "keyword"
                    and token.text.lower() in ("count", "sum", "min",
                                               "max", "avg")):
                aggregate = self._parse_aggregate()
                name = self._parse_optional_alias(
                    default=aggregate.output_name
                )
                items.append((
                    Aggregate(aggregate.op, aggregate.arg, name), name
                ))
            else:
                column = self._parse_ref()
                default = (column.column if not column.steps
                           else column.describe())
                name = self._parse_optional_alias(default=default)
                items.append((column, name))
            if self._at_punct(","):
                self._advance()
                continue
            return items

    def _parse_aggregate(self) -> Aggregate:
        op = self._advance().text.lower()
        self._expect_punct("(")
        arg: ColumnRef | None = None
        if self._at_punct("*"):
            if op != "count":
                raise ParseError(f"{op}(*) is not valid", self._peek().position)
            self._advance()
        else:
            arg = self._parse_ref()
        self._expect_punct(")")
        default = f"{op}_{arg.column}" if arg is not None else "count"
        return Aggregate(op, arg, default)

    def _parse_optional_alias(self, default: str) -> str:
        if self._at_keyword("as"):
            self._advance()
            return self._expect("ident").text
        return default

    def _parse_ref_list(self) -> list[ColumnRef]:
        refs = [self._parse_ref()]
        while self._at_punct(","):
            self._advance()
            refs.append(self._parse_ref())
        return refs

    def _parse_from_list(self) -> list[tuple[str, str]]:
        relations: list[tuple[str, str]] = []
        while True:
            table = self._expect("ident").text
            alias = table
            if self._peek().kind == "ident":
                alias = self._advance().text
            relations.append((table, alias))
            if self._at_punct(","):
                self._advance()
                continue
            return relations

    def _parse_conjunction(self) -> list[Predicate]:
        predicates = [self._parse_predicate()]
        while self._at_keyword("and"):
            self._advance()
            predicates.append(self._parse_predicate())
        return predicates

    def _parse_predicate(self) -> Predicate:
        if self._at_punct("("):
            return self._parse_or_group()
        token = self._peek()
        if token.kind != "ident":
            raise ParseError(
                f"expected predicate, found {token.text!r}", token.position
            )
        # Lookahead: identifier followed by '(' is a UDF call.
        next_token = self._tokens[self._index + 1]
        if next_token.kind == "punct" and next_token.text == "(":
            return self._parse_udf_predicate()
        left = self._parse_ref()
        op = self._expect("op").text
        right = self._parse_value()
        return Comparison(left, op, right)

    def _parse_or_group(self) -> Predicate:
        self._expect_punct("(")
        branches = [conjunction(self._parse_conjunction())]
        while self._at_keyword("or"):
            self._advance()
            branches.append(conjunction(self._parse_conjunction()))
        self._expect_punct(")")
        if len(branches) == 1:
            return branches[0]
        return Or(tuple(branches))

    def _parse_udf_predicate(self) -> Predicate:
        name = self._expect("ident").text
        udf = self.udfs.get(name)
        self._expect_punct("(")
        args = [self._parse_ref()]
        while self._at_punct(","):
            self._advance()
            args.append(self._parse_ref())
        self._expect_punct(")")
        # Optional '= positive' / '= true' sugar from the paper's Q1 syntax;
        # the UDF itself is boolean, so the right side must be truthy.
        if self._peek().kind == "op" and self._peek().text == "=":
            self._advance()
            value_token = self._advance()
            if value_token.kind not in ("ident", "string", "keyword"):
                raise ParseError(
                    "UDF comparisons support only '= <label>' sugar",
                    value_token.position,
                )
        return UdfPredicate(udf, tuple(args))

    def _parse_ref(self) -> ColumnRef:
        alias = self._expect("ident").text
        steps: list[str | int] = []
        column: str | None = None
        while True:
            if self._at_punct("."):
                self._advance()
                token = self._peek()
                if token.kind not in ("ident", "keyword"):
                    raise ParseError(
                        f"expected field name, found {token.text!r}",
                        token.position,
                    )
                word = self._advance().text
                if column is None:
                    column = word
                else:
                    steps.append(word)
            elif self._at_punct("["):
                self._advance()
                index = int(self._expect("number").text)
                self._expect_punct("]")
                if column is None:
                    raise ParseError(
                        "array index before column name", self._peek().position
                    )
                steps.append(index)
            else:
                break
        if column is None:
            # Bare identifier: unqualified column (e.g. an aggregate output
            # of an upstream block scanned under this query).
            return ColumnRef("", alias)
        return ColumnRef(alias, column, tuple(steps))

    def _parse_value(self) -> Any:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self._advance()
            return token.text[1:-1].replace("\\'", "'")
        if token.kind in ("ident", "keyword"):
            return self._parse_ref()
        raise ParseError(f"expected value, found {token.text!r}",
                         token.position)

    # -- tree construction --------------------------------------------------------

    def _build_tree(
        self,
        relations: list[tuple[str, str]],
        predicates: list[Predicate],
        select_items: list[tuple[ColumnRef | Aggregate, str]],
        group_keys: list[ColumnRef],
        order_keys: list[ColumnRef],
        descending: bool,
        limit: int | None,
    ) -> Expr:
        join_conditions: list[JoinCondition] = []
        filters: list[Predicate] = []
        for predicate in predicates:
            if (isinstance(predicate, Comparison) and predicate.op == "="
                    and isinstance(predicate.right, ColumnRef)
                    and predicate.left.alias != predicate.right.alias
                    and not predicate.left.steps
                    and not predicate.right.steps):
                join_conditions.append(
                    JoinCondition(predicate.left, predicate.right)
                )
            else:
                filters.append(predicate)

        tree = self._build_join_tree(relations, join_conditions)
        for predicate in filters:
            tree = Filter(tree, predicate)

        aggregates = tuple(
            item for item, _ in select_items if isinstance(item, Aggregate)
        )
        if group_keys or aggregates:
            tree = GroupBy(tree, tuple(group_keys), aggregates)
        if order_keys:
            tree = OrderBy(tree, tuple(order_keys), descending, limit)
        outputs = tuple(
            (item if isinstance(item, ColumnRef) else item.output_name, name)
            for item, name in select_items
        )
        return Project(tree, outputs)

    def _build_join_tree(
        self,
        relations: list[tuple[str, str]],
        conditions: list[JoinCondition],
    ) -> Expr:
        """Jaql's FROM-order heuristic with cartesian avoidance."""
        if not relations:
            raise ParseError("FROM clause is empty")
        remaining = list(relations)
        table, alias = remaining.pop(0)
        tree: Expr = Scan(table, alias)
        joined = {alias}
        pending = list(conditions)
        while remaining:
            chosen_index = None
            for index, (_, candidate) in enumerate(remaining):
                connecting = [
                    c for c in pending
                    if candidate in c.aliases()
                    and bool((c.aliases() - {candidate}) & joined)
                ]
                if connecting:
                    chosen_index = index
                    break
            if chosen_index is None:
                names = [alias for _, alias in remaining]
                raise PlanError(
                    f"cartesian product required to join {names}; "
                    f"not supported"
                )
            table, alias = remaining.pop(chosen_index)
            joined.add(alias)
            # All pending conditions now fully inside the joined set attach
            # to this join -- including cycle-closing ones, which later make
            # the optimizer reject the block (as the paper does for Q5).
            connecting = [c for c in pending if c.aliases() <= joined]
            for condition in connecting:
                pending.remove(condition)
            tree = Join(tree, Scan(table, alias), tuple(connecting))
        assert not pending
        return tree


def parse_query(text: str, name: str = "query",
                udfs: UdfRegistry | None = None) -> QuerySpec:
    """Convenience one-shot parse."""
    return SqlParser(udfs).parse(text, name)
