"""Join-block extraction (paper Section 3, step 2).

After push-down, a query tree decomposes into:

* one **join block**: an n-way join over *block leaves*, each leaf being a
  scan plus its local predicates, with the remaining (non-local) predicates
  attached to the block; and
* **final stages** above the block -- group-by / order-by / projection --
  which the Jaql compiler executes after the joins and which the cost-based
  optimizer never sees (Section 5.1).

A :class:`BlockLeaf` is the unit of pilot runs and of statistics reuse.
Leaves are general enough to also represent *intermediate results*: when
DYNOPT executes part of a plan, the materialized output becomes a new leaf
covering several original aliases (Section 5.1: "the nodes in the join
block are the results of previous steps"). Rows of intermediates keep their
original alias-qualified field names, so all remaining conditions and
predicates evaluate unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.table import Row
from repro.errors import PlanError, UnsupportedQueryError
from repro.jaql.expr import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Or,
    OrderBy,
    Predicate,
    Project,
    QuerySpec,
    Scan,
    UdfPredicate,
    conjuncts,
    qualify_row,
)

#: Where a leaf's rows come from.
SOURCE_TABLE = "table"
SOURCE_INTERMEDIATE = "intermediate"

#: Placeholder alias used in statistics signatures (Section 4.1): the same
#: table+predicates combination must reuse statistics whatever alias the
#: query bound it to.
SIGNATURE_ALIAS = "$"


def normalize_predicate_alias(predicate: Predicate,
                              alias: str) -> Predicate:
    """Rewrite every :class:`ColumnRef` under ``alias`` to the signature
    placeholder, leaving literals (and refs to other aliases) untouched.

    This replaces the old textual ``signature().replace(f"{alias}.", "$.")``
    normalization, which mangled string literals that happened to contain
    ``<alias>.`` (alias ``l`` vs literal ``'ml.example'``) -- making
    distinct predicates collide or identical ones miss reuse.
    """

    def rewrite(column_ref: ColumnRef) -> ColumnRef:
        if column_ref.alias != alias:
            return column_ref
        return ColumnRef(SIGNATURE_ALIAS, column_ref.column,
                         column_ref.steps)

    if isinstance(predicate, And):
        return And(tuple(normalize_predicate_alias(part, alias)
                         for part in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(normalize_predicate_alias(part, alias)
                        for part in predicate.parts))
    if isinstance(predicate, Comparison):
        right = predicate.right
        if isinstance(right, ColumnRef):
            right = rewrite(right)
        return Comparison(rewrite(predicate.left), predicate.op, right)
    if isinstance(predicate, UdfPredicate):
        return UdfPredicate(predicate.udf,
                            tuple(rewrite(arg) for arg in predicate.args))
    raise PlanError(
        f"cannot normalize predicate of type {type(predicate).__name__}"
    )


@dataclass(frozen=True)
class BlockLeaf:
    """One node of a join block: base scan + local predicates, or an
    intermediate result covering several aliases."""

    aliases: frozenset[str]
    source_kind: str
    #: base table name or intermediate DFS file name.
    source_name: str
    predicates: tuple[Predicate, ...] = ()
    #: for an intermediate leaf that *materializes* another leaf (a pilot
    #: output covering the whole filtered relation), the signature of that
    #: leaf. Cross-query caches use it to treat the substituted leaf and
    #: its origin as the same relation.
    provenance: str | None = None

    def __post_init__(self) -> None:
        if not self.aliases:
            raise PlanError("block leaf must cover at least one alias")
        if self.source_kind not in (SOURCE_TABLE, SOURCE_INTERMEDIATE):
            raise PlanError(f"unknown leaf source kind: {self.source_kind!r}")
        if self.source_kind == SOURCE_INTERMEDIATE and self.predicates:
            raise PlanError("intermediate leaves carry no local predicates")
        if self.source_kind == SOURCE_TABLE and self.provenance is not None:
            raise PlanError("base leaves are their own provenance")

    @property
    def alias(self) -> str:
        """The single alias of a base leaf."""
        if len(self.aliases) != 1:
            raise PlanError(
                f"leaf covers multiple aliases: {sorted(self.aliases)}"
            )
        return next(iter(self.aliases))

    @property
    def is_base(self) -> bool:
        return self.source_kind == SOURCE_TABLE

    # -- statistics identity (Section 4.1, reusability) -----------------------

    def signature(self) -> str:
        """Alias-independent identity of (source, local predicates).

        The alias is replaced by a placeholder so the same table+predicates
        combination reuses statistics across queries.
        """
        if self.source_kind == SOURCE_INTERMEDIATE:
            return f"intermediate:{self.source_name}"
        alias = self.alias
        normalized = sorted(
            normalize_predicate_alias(predicate, alias).signature()
            for predicate in self.predicates
        )
        return f"table:{self.source_name}|" + ";".join(normalized)

    # -- row-level behaviour (used by compiler closures and pilot runs) -------

    def qualify_and_filter(self, row: Row) -> Row | None:
        """Apply this leaf to one raw input row; None when filtered out."""
        if self.source_kind == SOURCE_INTERMEDIATE:
            return row  # already qualified, predicates already applied
        qualified = qualify_row(self.alias, row)
        for predicate in self.predicates:
            if not predicate.evaluate(qualified):
                return None
        return qualified

    @property
    def cpu_seconds_per_row(self) -> float:
        """Simulated predicate/UDF cost per input row."""
        return sum(p.cpu_seconds_per_row for p in self.predicates)

    def describe(self) -> str:
        names = "+".join(sorted(self.aliases))
        if self.source_kind == SOURCE_INTERMEDIATE:
            return f"{names}<-{self.source_name}"
        if self.predicates:
            preds = " AND ".join(p.signature() for p in self.predicates)
            return f"{names}:{self.source_name}[{preds}]"
        return f"{names}:{self.source_name}"


@dataclass(frozen=True)
class JoinBlock:
    """An n-way join over block leaves plus the block's non-local predicates."""

    name: str
    leaves: tuple[BlockLeaf, ...]
    conditions: tuple[JoinCondition, ...]
    non_local_predicates: tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for leaf in self.leaves:
            overlap = seen & leaf.aliases
            if overlap:
                raise PlanError(
                    f"alias covered by two leaves: {sorted(overlap)}"
                )
            seen.update(leaf.aliases)
        for condition in self.conditions:
            missing = condition.aliases() - seen
            if missing:
                raise PlanError(
                    f"join condition references unknown aliases: "
                    f"{sorted(missing)}"
                )
        for predicate in self.non_local_predicates:
            missing = predicate.references() - seen
            if missing:
                raise PlanError(
                    f"non-local predicate references unknown aliases: "
                    f"{sorted(missing)}"
                )

    # -- lookups ----------------------------------------------------------------

    @property
    def aliases(self) -> frozenset[str]:
        merged: set[str] = set()
        for leaf in self.leaves:
            merged.update(leaf.aliases)
        return frozenset(merged)

    def leaf_for(self, alias: str) -> BlockLeaf:
        for leaf in self.leaves:
            if alias in leaf.aliases:
                return leaf
        raise PlanError(f"no leaf covers alias {alias!r}")

    def base_leaves(self) -> tuple[BlockLeaf, ...]:
        return tuple(leaf for leaf in self.leaves if leaf.is_base)

    def conditions_between(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[JoinCondition, ...]:
        """Conditions with one side in ``left`` and the other in ``right``."""
        selected = []
        for condition in self.conditions:
            l_alias = condition.left.alias
            r_alias = condition.right.alias
            if ((l_alias in left and r_alias in right)
                    or (r_alias in left and l_alias in right)):
                selected.append(condition)
        return tuple(selected)

    # -- DYNOPT plan substitution (Section 5.1, updatePlan) ----------------------

    def substitute(self, executed_aliases: frozenset[str],
                   intermediate_name: str,
                   applied_predicates: tuple[Predicate, ...],
                   provenance: str | None = None) -> "JoinBlock":
        """Replace the executed sub-plan by an intermediate leaf.

        Conditions internal to the executed alias set disappear (they were
        evaluated by the executed jobs); ``applied_predicates`` likewise.
        ``provenance`` marks a substitution that merely materializes one
        existing leaf (pilot-output reuse) rather than executing a join.
        """
        covered = [
            leaf for leaf in self.leaves if leaf.aliases <= executed_aliases
        ]
        covered_aliases: set[str] = set()
        for leaf in covered:
            covered_aliases.update(leaf.aliases)
        if frozenset(covered_aliases) != executed_aliases:
            raise PlanError(
                f"executed aliases {sorted(executed_aliases)} do not align "
                f"with block leaves"
            )
        new_leaf = BlockLeaf(
            executed_aliases, SOURCE_INTERMEDIATE, intermediate_name,
            provenance=provenance,
        )
        remaining_leaves = tuple(
            leaf for leaf in self.leaves if leaf not in covered
        ) + (new_leaf,)
        remaining_conditions = tuple(
            condition for condition in self.conditions
            if not condition.aliases() <= executed_aliases
        )
        applied = set(applied_predicates)
        remaining_predicates = tuple(
            predicate for predicate in self.non_local_predicates
            if predicate not in applied
        )
        return replace(
            self,
            leaves=remaining_leaves,
            conditions=remaining_conditions,
            non_local_predicates=remaining_predicates,
        )

    def describe(self) -> str:
        lines = [f"join block {self.name}:"]
        for leaf in self.leaves:
            lines.append(f"  leaf {leaf.describe()}")
        for condition in self.conditions:
            lines.append(f"  cond {condition.describe()}")
        for predicate in self.non_local_predicates:
            lines.append(f"  pred {predicate.signature()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExtractedQuery:
    """A query decomposed into its join block and post-join stages."""

    spec: QuerySpec
    block: JoinBlock
    #: stages applied to the block output, innermost first
    #: (GroupBy / OrderBy / Project expressions).
    stages: tuple[Expr, ...] = field(default_factory=tuple)


def extract_query(spec: QuerySpec) -> ExtractedQuery:
    """Decompose a (pushed-down) query tree into block + stages.

    Raises :class:`UnsupportedQueryError` for group/order operators nested
    below joins -- such queries must be split into multiple QuerySpecs
    executed block by block, as DYNO does (Section 5.1, "Executing the
    whole query").
    """
    stages: list[Expr] = []
    node: Expr = spec.root
    while isinstance(node, (Project, OrderBy, GroupBy)):
        stages.append(node)
        node = node.children()[0]
    stages.reverse()

    leaves: list[BlockLeaf] = []
    conditions: list[JoinCondition] = []
    non_local: list[Predicate] = []
    _collect(node, [], leaves, conditions, non_local)
    block = JoinBlock(
        spec.name,
        tuple(leaves),
        tuple(conditions),
        tuple(non_local),
    )
    return ExtractedQuery(spec, block, tuple(stages))


def _collect(node: Expr, filters_above: list[Predicate],
             leaves: list[BlockLeaf], conditions: list[JoinCondition],
             non_local: list[Predicate]) -> None:
    if isinstance(node, Filter):
        _collect(node.child, filters_above + conjuncts(node.predicate),
                 leaves, conditions, non_local)
        return
    if isinstance(node, Join):
        # Filters above a join that survived push-down are non-local.
        non_local.extend(filters_above)
        conditions.extend(node.conditions)
        _collect(node.left, [], leaves, conditions, non_local)
        _collect(node.right, [], leaves, conditions, non_local)
        return
    if isinstance(node, Scan):
        local: list[Predicate] = []
        for predicate in filters_above:
            if predicate.references() <= {node.alias}:
                local.append(predicate)
            else:
                non_local.append(predicate)
        leaves.append(
            BlockLeaf(
                frozenset((node.alias,)),
                SOURCE_TABLE,
                node.table,
                tuple(local),
            )
        )
        return
    raise UnsupportedQueryError(
        f"operator {type(node).__name__} below the join block; split the "
        f"query into multiple blocks (the paper executes dependent blocks "
        f"separately)"
    )
