"""Compiler: physical join plans -> MapReduce job DAGs (Section 5.1, step 5').

The translation mirrors Jaql's:

* a **repartition join** becomes one map+reduce job; each map task reads a
  split of either input, applies that side's *pipeline* (leaf predicates,
  plus any broadcast joins folded into the map phase), tags the record with
  its side, and emits it under the join key; reducers separate the two
  sides per key and produce the cartesian product (Section 2.2.1);
* a **broadcast join** extends the current map pipeline: the build side --
  a base leaf (filtered while loading) or a materialized intermediate --
  becomes a :class:`BroadcastBuild` of the job; consecutive broadcast joins
  marked ``chained`` by the optimizer stay in the same map-only job, others
  force a job boundary that materializes the probe pipeline first
  (Section 2.2.2, chaining);
* non-local predicates run right where the optimizer placed them (after the
  join covering their references).

The output is a :class:`JobGraph`: jobs plus dependencies. DYNOPT executes
only its *leaf jobs* each iteration (Section 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cluster.job import BroadcastBuild, MapReduceJob, TaskContext
from repro.config import DynoConfig
from repro.data.schema import Schema
from repro.data.table import Row
from repro.errors import PlanError
from repro.jaql.blocks import BlockLeaf
from repro.jaql.expr import GroupBy, Predicate
from repro.optimizer.plans import (
    HASH_BUILD_METHODS,
    HYBRID,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
)
from repro.storage.dfs import DistributedFileSystem

#: Per-row pipeline stage: one input row -> zero or more output rows.
RowTransform = Callable[[TaskContext, Row], Iterable[Row]]

#: Schema attached to intermediate files. Intermediates carry qualified
#: (flattened) rows whose exact field set varies per plan; a permissive
#: schema keeps size accounting consistent without re-deriving field types.
def _intermediate_schema() -> Schema:
    return Schema(())


@dataclass
class CompiledJob:
    """One MapReduce job plus plan-level metadata for DYNOPT strategies."""

    job: MapReduceJob
    depends_on: list[str]
    #: aliases whose join result this job materializes.
    output_aliases: frozenset[str]
    applied_predicates: tuple[Predicate, ...]
    #: joins evaluated inside this job -- the paper's *uncertainty* metric
    #: (Section 5.3: estimation error grows with the number of joins).
    join_count: int
    #: optimizer cost attributable to this job (for the CHEAP strategies).
    estimated_cost: float
    estimated_rows: float
    #: optimizer's output-size estimate; 0.0 where the plan has none
    #: (group-by stages). Feeds the estimated-vs-actual trace audit.
    estimated_bytes: float = 0.0
    final: bool = False

    @property
    def name(self) -> str:
        return self.job.name


@dataclass
class JobGraph:
    """The compiled workflow of one optimization step."""

    jobs: list[CompiledJob]
    final_output: str
    #: True when the block needed no work (single intermediate leaf).
    trivial: bool = False

    def job_named(self, name: str) -> CompiledJob:
        for compiled in self.jobs:
            if compiled.name == name:
                return compiled
        raise PlanError(f"no such job in graph: {name!r}")

    def leaf_jobs(self, completed: set[str] | None = None) -> list[CompiledJob]:
        """Jobs whose dependencies have all completed."""
        done = completed or set()
        return [
            compiled for compiled in self.jobs
            if compiled.name not in done
            and all(dep in done for dep in compiled.depends_on)
        ]

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    def describe(self) -> str:
        lines = []
        for compiled in self.jobs:
            deps = (f" after {sorted(compiled.depends_on)}"
                    if compiled.depends_on else "")
            kind = "map-only" if compiled.job.is_map_only else "map-reduce"
            lines.append(
                f"{compiled.name} [{kind}, joins={compiled.join_count}]"
                f" -> {compiled.job.output_name}{deps}"
            )
        return "\n".join(lines)


@dataclass
class _Stream:
    """A map-side pipeline under construction."""

    input_files: list[str]
    transform: RowTransform
    builds: list[BroadcastBuild] = field(default_factory=list)
    upstream: list[CompiledJob] = field(default_factory=list)
    aliases: frozenset[str] = frozenset()
    join_count: int = 0
    applied_predicates: tuple[Predicate, ...] = ()
    #: cumulative optimizer cost of subtrees already materialized upstream.
    upstream_cost: float = 0.0
    node: PhysicalNode | None = None


def _identity_transform(context: TaskContext, row: Row) -> Iterable[Row]:
    return (row,)


class PlanCompiler:
    """Compiles physical plans of one block into MapReduce jobs."""

    def __init__(self, dfs: DistributedFileSystem, config: DynoConfig,
                 name_prefix: str,
                 table_files: dict[str, str] | None = None):
        self.dfs = dfs
        self.config = config
        self.name_prefix = name_prefix
        #: base table name -> DFS file name (identity unless remapped).
        self.table_files = table_files or {}
        self._counter = 0

    # -- public ---------------------------------------------------------------------

    def compile_block(self, plan: PhysicalNode) -> JobGraph:
        """Compile a whole physical join plan into its job graph."""
        jobs: list[CompiledJob] = []
        stream = self._compile_node(plan, jobs)
        if (not stream.builds
                and stream.transform is _identity_transform
                and len(stream.input_files) == 1):
            # Nothing left to execute beyond already-emitted jobs: the plan
            # top is a materialized file (e.g. a repartition-join output).
            final_output = stream.input_files[0]
            for compiled in jobs:
                if compiled.job.output_name == final_output:
                    compiled.final = True
            return JobGraph(jobs, final_output, trivial=not jobs)
        final = self._materialize(stream, jobs, final=True)
        return JobGraph(jobs, final.job.output_name)

    def compile_group_by(self, input_file: str, group_by: GroupBy,
                         job_label: str = "groupby") -> CompiledJob:
        """One map+reduce job computing a GROUP BY over a materialized file."""
        keys = group_by.keys
        aggregates = group_by.aggregates

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            for row in rows:
                key = tuple(ref.evaluate(row) for ref in keys)
                context.emit(key, row)

        def reducer(context: TaskContext, key: object,
                    values: list[Row]) -> None:
            key_parts = key if isinstance(key, tuple) else (key,)
            out: Row = {
                ref.qualified: part for ref, part in zip(keys, key_parts)
            }
            for aggregate in aggregates:
                state = aggregate.initial()
                for row in values:
                    state = aggregate.step(state, row)
                out[aggregate.output_name] = aggregate.final(state)
            context.emit(None, out)

        name = self._next_name(job_label)
        output = f"{name}.out"
        job = MapReduceJob(
            name=name,
            inputs=[input_file],
            mapper=mapper,
            reducer=reducer,
            num_reducers=self._reducers_for([input_file]),
            output_name=output,
            output_schema=_intermediate_schema(),
            description=f"group by over {input_file}",
        )
        return CompiledJob(
            job=job,
            depends_on=[],
            output_aliases=frozenset(),
            applied_predicates=(),
            join_count=0,
            estimated_cost=0.0,
            estimated_rows=0.0,
            final=True,
        )

    # -- recursion -------------------------------------------------------------------

    def _compile_node(self, node: PhysicalNode,
                      jobs: list[CompiledJob]) -> _Stream:
        if isinstance(node, PhysLeaf):
            return self._leaf_stream(node)
        if not isinstance(node, PhysJoin):
            raise PlanError(f"cannot compile {type(node).__name__}")
        if node.method in HASH_BUILD_METHODS:
            # Hybrid hash joins compile exactly like broadcast joins -- the
            # build side is loaded per task -- but the build is marked
            # spillable so the runtime degrades it in place when it
            # overflows task memory instead of failing the job.
            return self._broadcast_stream(node, jobs)
        return self._repartition_stream(node, jobs)

    def _leaf_stream(self, node: PhysLeaf) -> _Stream:
        leaf = node.leaf
        input_file = self._file_of_leaf(leaf)
        if not leaf.is_base:
            return _Stream(
                input_files=[input_file],
                transform=_identity_transform,
                aliases=node.aliases,
                node=node,
            )
        cpu_per_row = leaf.cpu_seconds_per_row

        def transform(context: TaskContext, row: Row,
                      _leaf: BlockLeaf = leaf,
                      _cpu: float = cpu_per_row) -> Iterable[Row]:
            if _cpu:
                context.charge_cpu(_cpu)
            qualified = _leaf.qualify_and_filter(row)
            return (qualified,) if qualified is not None else ()

        return _Stream(
            input_files=[input_file],
            transform=transform,
            aliases=node.aliases,
            node=node,
        )

    def _broadcast_stream(self, node: PhysJoin,
                          jobs: list[CompiledJob]) -> _Stream:
        probe = self._compile_node(node.left, jobs)
        if probe.builds and not node.chained:
            # Job boundary: the optimizer decided this join must not share
            # a job with the probe-side broadcast chain (builds would not
            # fit in memory together). Materialize the probe first.
            materialized = self._materialize(probe, jobs)
            probe = _Stream(
                input_files=[materialized.job.output_name],
                transform=_identity_transform,
                upstream=[materialized],
                aliases=probe.aliases,
                upstream_cost=(probe.node.cost
                               if probe.node is not None else 0.0),
                node=probe.node,
            )

        build = self._build_side(
            node.right, jobs, probe, spillable=node.method == HYBRID,
        )
        probe_refs = [
            condition.side_for(node.left.aliases)
            for condition in node.conditions
        ]
        build_refs = [
            condition.side_for(node.right.aliases)
            for condition in node.conditions
        ]
        predicates = node.applied_predicates
        probe_cpu = self.config.cluster.probe_seconds_per_record
        pred_cpu = sum(p.cpu_seconds_per_row for p in predicates)
        inner_transform = probe.transform
        hash_holder: dict[str, object] = {}

        def transform(context: TaskContext, row: Row) -> Iterable[Row]:
            table = hash_holder.get("table")
            if table is None or hash_holder.get("source") is not build.rows:
                table = {}
                for build_row in build.built_rows():
                    key = tuple(ref.evaluate(build_row) for ref in build_refs)
                    if None in key:
                        continue
                    table.setdefault(key, []).append(build_row)
                hash_holder["table"] = table
                hash_holder["source"] = build.rows
            results: list[Row] = []
            append = results.append
            charge_cpu = context.charge_cpu
            table_get = table.get
            for probe_row in inner_transform(context, row):
                charge_cpu(probe_cpu)
                key = tuple(ref.evaluate(probe_row) for ref in probe_refs)
                if None in key:
                    continue
                bucket = table_get(key)
                if bucket is None:
                    continue
                for build_row in bucket:
                    merged = {**probe_row, **build_row}
                    if pred_cpu:
                        charge_cpu(pred_cpu)
                    if not predicates or \
                            all(p.evaluate(merged) for p in predicates):
                        append(merged)
            return results

        return _Stream(
            input_files=probe.input_files,
            transform=transform,
            builds=probe.builds + [build],
            upstream=probe.upstream,
            aliases=node.aliases,
            join_count=probe.join_count + 1,
            applied_predicates=probe.applied_predicates + predicates,
            upstream_cost=probe.upstream_cost,
            node=node,
        )

    def _build_side(self, node: PhysicalNode, jobs: list[CompiledJob],
                    probe: _Stream, spillable: bool = False,
                    ) -> BroadcastBuild:
        """Build sides must be materialized.

        Small base leaves load directly, applying their predicates while
        the hash table builds (Jaql's broadcast join loads S per task).
        A base leaf whose *raw file* exceeds task memory but whose filtered
        form fits is first reduced by a map-only filter job -- re-reading
        the big raw file in every task would defeat the broadcast join
        (this is the execution-side counterpart of the optimizer's
        "relations that fit in memory after a selective filter" insight,
        Section 2.2.3; pilot-run output reuse covers the most selective
        leaves without any extra job). Join subtrees are compiled into jobs
        of their own first.
        """
        if isinstance(node, PhysLeaf):
            leaf = node.leaf
            input_file = self._file_of_leaf(leaf)
            raw_bytes = (self.dfs.file_size(input_file)
                         if self.dfs.exists(input_file) else 0)
            budget = self.config.cluster.task_memory_bytes
            if leaf.is_base and leaf.predicates and raw_bytes > budget:
                filtered = self._materialize(self._leaf_stream(node), jobs)
                probe.upstream.append(filtered)
                return BroadcastBuild(
                    input_file=filtered.job.output_name,
                    loader=lambda raw_rows: list(raw_rows),
                    description=f"{leaf.describe()} (pre-filtered)",
                    spillable=spillable,
                    declared_bytes=int(node.est_bytes),
                )
            if leaf.is_base:
                def loader(raw_rows: list[Row],
                           _leaf: BlockLeaf = leaf) -> list[Row]:
                    loaded = []
                    for row in raw_rows:
                        qualified = _leaf.qualify_and_filter(row)
                        if qualified is not None:
                            loaded.append(qualified)
                    return loaded
            else:
                def loader(raw_rows: list[Row]) -> list[Row]:
                    return list(raw_rows)
            return BroadcastBuild(
                input_file=input_file,
                loader=loader,
                description=leaf.describe(),
                spillable=spillable,
                declared_bytes=int(node.est_bytes),
            )
        # Join subtree: materialize it, then broadcast its output.
        subtree = self._compile_node(node, jobs)
        if (not subtree.builds
                and subtree.transform is _identity_transform
                and len(subtree.input_files) == 1):
            # Already materialized (e.g. a repartition-join output).
            build_file = subtree.input_files[0]
            probe.upstream.extend(subtree.upstream)
        else:
            materialized = self._materialize(subtree, jobs)
            build_file = materialized.job.output_name
            probe.upstream.append(materialized)
        probe.upstream_cost += node.cost
        return BroadcastBuild(
            input_file=build_file,
            loader=lambda raw_rows: list(raw_rows),
            description=f"build from {build_file}",
            spillable=spillable,
            declared_bytes=int(node.est_bytes),
        )

    def _repartition_stream(self, node: PhysJoin,
                            jobs: list[CompiledJob]) -> _Stream:
        left = self._compile_node(node.left, jobs)
        right = self._compile_node(node.right, jobs)
        sides = (left, right)
        side_refs = [
            [condition.side_for(side.aliases) for condition in node.conditions]
            for side in sides
        ]
        predicates = node.applied_predicates
        pred_cpu = sum(p.cpu_seconds_per_row for p in predicates)

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            for side_index, side in enumerate(sides):
                if source not in side.input_files:
                    continue
                refs = side_refs[side_index]
                transform = side.transform
                emit = context.emit
                for row in rows:
                    for out in transform(context, row):
                        key = tuple(ref.evaluate(out) for ref in refs)
                        if None in key:
                            continue
                        emit(key, {"s": side_index, "r": out})

        def reducer(context: TaskContext, key: object,
                    values: list[Row]) -> None:
            left_rows = [value["r"] for value in values if value["s"] == 0]
            right_rows = [value["r"] for value in values if value["s"] == 1]
            for left_row in left_rows:
                for right_row in right_rows:
                    merged = {**left_row, **right_row}
                    if pred_cpu:
                        context.charge_cpu(pred_cpu)
                    if all(p.evaluate(merged) for p in predicates):
                        context.emit(None, merged)

        name = self._next_name("rjoin")
        output = f"{name}.out"
        inputs = sorted(set(left.input_files) | set(right.input_files))
        estimated_input_bytes = (
            node.left.est_bytes + node.right.est_bytes
        )
        job = MapReduceJob(
            name=name,
            inputs=inputs,
            mapper=mapper,
            reducer=reducer,
            num_reducers=self._reducers_for(inputs, estimated_input_bytes),
            output_name=output,
            output_schema=_intermediate_schema(),
            broadcast_builds=left.builds + right.builds,
            description=f"repartition join over {sorted(node.aliases)}",
            memory_demand_bytes=self._memory_demand(
                left.builds + right.builds
            ),
        )
        depends = _dedupe(
            [up.name for up in left.upstream + right.upstream]
        )
        upstream_cost = left.upstream_cost + right.upstream_cost
        compiled = CompiledJob(
            job=job,
            depends_on=depends,
            output_aliases=node.aliases,
            applied_predicates=(left.applied_predicates
                                + right.applied_predicates + predicates),
            join_count=left.join_count + right.join_count + 1,
            estimated_cost=max(node.cost - upstream_cost, 0.0),
            estimated_rows=node.est_rows,
            estimated_bytes=node.est_bytes,
        )
        jobs.append(compiled)
        return _Stream(
            input_files=[output],
            transform=_identity_transform,
            upstream=[compiled],
            aliases=node.aliases,
            upstream_cost=node.cost,
            node=node,
        )

    # -- materialization ---------------------------------------------------------------

    def _materialize(self, stream: _Stream, jobs: list[CompiledJob],
                     final: bool = False) -> CompiledJob:
        """Emit a map-only job writing the stream's rows to the DFS."""
        label = "final" if final else "mjoin"
        name = self._next_name(label)
        output = f"{name}.out"
        transform = stream.transform

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            emit = context.emit
            for row in rows:
                for out in transform(context, row):
                    emit(None, out)

        job = MapReduceJob(
            name=name,
            inputs=list(stream.input_files),
            mapper=mapper,
            output_name=output,
            output_schema=_intermediate_schema(),
            broadcast_builds=list(stream.builds),
            description=f"map-only pipeline over {sorted(stream.aliases)}",
            memory_demand_bytes=self._memory_demand(stream.builds),
        )
        node_cost = stream.node.cost if stream.node is not None else 0.0
        compiled = CompiledJob(
            job=job,
            depends_on=_dedupe([up.name for up in stream.upstream]),
            output_aliases=stream.aliases,
            applied_predicates=stream.applied_predicates,
            join_count=stream.join_count,
            estimated_cost=max(node_cost - stream.upstream_cost, 0.0),
            estimated_rows=(stream.node.est_rows
                            if stream.node is not None else 0.0),
            estimated_bytes=(stream.node.est_bytes
                             if stream.node is not None else 0.0),
            final=final,
        )
        jobs.append(compiled)
        return compiled

    # -- helpers -----------------------------------------------------------------------

    def _file_of_leaf(self, leaf: BlockLeaf) -> str:
        if leaf.is_base:
            return self.table_files.get(leaf.source_name, leaf.source_name)
        return leaf.source_name

    def _memory_demand(self, builds: list[BroadcastBuild]) -> int:
        """Declared build memory of one job, from optimizer estimates.

        Capped at the task budget: a spilling build never holds more than
        ``task_memory_bytes`` resident, and a non-spillable build beyond
        the budget fails before occupying it. The runtime later charges
        ``max(declaration, actually loaded in-memory bytes)`` so lying
        estimates cannot under-charge the cluster pool.
        """
        declared = sum(build.declared_bytes for build in builds)
        return min(declared, self.config.cluster.task_memory_bytes)

    def _next_name(self, label: str) -> str:
        self._counter += 1
        return f"{self.name_prefix}.{label}{self._counter}"

    def _reducers_for(self, inputs: list[str],
                      estimated_bytes: float = 0.0) -> int:
        """Hive-like default: proportional to input size, capped by slots.

        Inputs not yet materialized (downstream jobs of a not-yet-executed
        plan) fall back to the optimizer's byte estimates.
        """
        total_bytes = sum(self.dfs.file_size(name) for name in inputs
                          if self.dfs.exists(name))
        total_bytes = max(total_bytes, estimated_bytes)
        per_reducer = 2 * self.config.cluster.block_size_bytes
        wanted = max(1, math.ceil(total_bytes / per_reducer))
        return min(wanted, self.config.cluster.total_reduce_slots)


def _dedupe(names: list[str]) -> list[str]:
    seen: set[str] = set()
    ordered: list[str] = []
    for name in names:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return ordered
