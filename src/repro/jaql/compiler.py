"""Compiler: physical join plans -> MapReduce job DAGs (Section 5.1, step 5').

The translation mirrors Jaql's:

* a **repartition join** becomes one map+reduce job; each map task reads a
  split of either input, applies that side's *pipeline* (leaf predicates,
  plus any broadcast joins folded into the map phase), tags the record with
  its side, and emits it under the join key; reducers separate the two
  sides per key and produce the cartesian product (Section 2.2.1);
* a **broadcast join** extends the current map pipeline: the build side --
  a base leaf (filtered while loading) or a materialized intermediate --
  becomes a :class:`BroadcastBuild` of the job; consecutive broadcast joins
  marked ``chained`` by the optimizer stay in the same map-only job, others
  force a job boundary that materializes the probe pipeline first
  (Section 2.2.2, chaining);
* non-local predicates run right where the optimizer placed them (after the
  join covering their references).

The output is a :class:`JobGraph`: jobs plus dependencies. DYNOPT executes
only its *leaf jobs* each iteration (Section 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cluster.job import (
    BatchEmit,
    BroadcastBuild,
    MapReduceJob,
    TaskContext,
)
from repro.config import DynoConfig
from repro.data.columns import RowBatch, estimate_dict_size, resolve_backend
from repro.data.schema import Schema, estimate_value_size
from repro.data.table import Row
from repro.errors import PlanError
from repro.jaql.blocks import BlockLeaf
from repro.jaql.expr import Aggregate, GroupBy, Predicate, qualify_row
from repro.jaql.vector import ColumnResolver, select, supports_vector
from repro.optimizer.plans import (
    HASH_BUILD_METHODS,
    HYBRID,
    SKEW,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
)
from repro.storage.dfs import DistributedFileSystem

#: Per-row pipeline stage: one input row -> zero or more output rows.
RowTransform = Callable[[TaskContext, Row], Iterable[Row]]

#: Columnar pipeline stage: one whole batch in, one materialized batch out.
#: Output rows/order/sizes are identical to driving the stage's
#: :data:`RowTransform` over the batch row by row -- the batch path is an
#: execution strategy, never a semantic change.
BatchTransform = Callable[[TaskContext, object], object]

#: Schema attached to intermediate files. Intermediates carry qualified
#: (flattened) rows whose exact field set varies per plan; a permissive
#: schema keeps size accounting consistent without re-deriving field types.
def _intermediate_schema() -> Schema:
    return Schema(())


@dataclass
class CompiledJob:
    """One MapReduce job plus plan-level metadata for DYNOPT strategies."""

    job: MapReduceJob
    depends_on: list[str]
    #: aliases whose join result this job materializes.
    output_aliases: frozenset[str]
    applied_predicates: tuple[Predicate, ...]
    #: joins evaluated inside this job -- the paper's *uncertainty* metric
    #: (Section 5.3: estimation error grows with the number of joins).
    join_count: int
    #: optimizer cost attributable to this job (for the CHEAP strategies).
    estimated_cost: float
    estimated_rows: float
    #: optimizer's output-size estimate; 0.0 where the plan has none
    #: (group-by stages). Feeds the estimated-vs-actual trace audit.
    estimated_bytes: float = 0.0
    final: bool = False

    @property
    def name(self) -> str:
        return self.job.name


@dataclass
class JobGraph:
    """The compiled workflow of one optimization step."""

    jobs: list[CompiledJob]
    final_output: str
    #: True when the block needed no work (single intermediate leaf).
    trivial: bool = False

    def job_named(self, name: str) -> CompiledJob:
        for compiled in self.jobs:
            if compiled.name == name:
                return compiled
        raise PlanError(f"no such job in graph: {name!r}")

    def leaf_jobs(self, completed: set[str] | None = None) -> list[CompiledJob]:
        """Jobs whose dependencies have all completed."""
        done = completed or set()
        return [
            compiled for compiled in self.jobs
            if compiled.name not in done
            and all(dep in done for dep in compiled.depends_on)
        ]

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    def describe(self) -> str:
        lines = []
        for compiled in self.jobs:
            deps = (f" after {sorted(compiled.depends_on)}"
                    if compiled.depends_on else "")
            kind = "map-only" if compiled.job.is_map_only else "map-reduce"
            lines.append(
                f"{compiled.name} [{kind}, joins={compiled.join_count}]"
                f" -> {compiled.job.output_name}{deps}"
            )
        return "\n".join(lines)


@dataclass
class _Stream:
    """A map-side pipeline under construction."""

    input_files: list[str]
    transform: RowTransform
    builds: list[BroadcastBuild] = field(default_factory=list)
    upstream: list[CompiledJob] = field(default_factory=list)
    aliases: frozenset[str] = frozenset()
    join_count: int = 0
    applied_predicates: tuple[Predicate, ...] = ()
    #: cumulative optimizer cost of subtrees already materialized upstream.
    upstream_cost: float = 0.0
    node: PhysicalNode | None = None
    #: columnar counterpart of ``transform``; None when this stream (or the
    #: config) has no batch path, in which case the whole job falls back to
    #: the row engine.
    batch_transform: BatchTransform | None = None


def _identity_transform(context: TaskContext, row: Row) -> Iterable[Row]:
    return (row,)


def _make_join_reducer(predicates: tuple[Predicate, ...], pred_cpu: float):
    """Reduce-side join of tagged records (shared by repartition and the
    tail of skew joins): separate the sides per key, emit the cartesian
    product filtered by the join's non-local predicates."""

    def reducer(context: TaskContext, key: object,
                values: list[Row]) -> None:
        left_rows = [value["r"] for value in values if value["s"] == 0]
        right_rows = [value["r"] for value in values if value["s"] == 1]
        for left_row in left_rows:
            for right_row in right_rows:
                merged = {**left_row, **right_row}
                if pred_cpu:
                    context.charge_cpu(pred_cpu)
                if all(p.evaluate(merged) for p in predicates):
                    context.emit(None, merged)

    return reducer


def _make_join_batch_reducer(predicates: tuple[Predicate, ...],
                             pred_cpu: float):
    """Columnar counterpart of :func:`_make_join_reducer`; payload sizes
    are recovered from the tagged record sizes (16-byte tag framing)."""

    def batch_reducer(context: TaskContext, groups) -> BatchEmit:
        out_rows: list[Row] = []
        out_sizes: list[int] = []
        append_row = out_rows.append
        append_size = out_sizes.append
        candidates = 0
        for _key, values, value_sizes in groups:
            left_rows = []
            right_rows = []
            for value, size in zip(values, value_sizes):
                # Recover the payload size from the tagged record
                # size instead of re-walking the row dict.
                if value["s"] == 0:
                    left_rows.append((value["r"], size - 16))
                else:
                    right_rows.append((value["r"], size - 16))
            for left_row, left_size in left_rows:
                left_len = len(left_row)
                for right_row, right_size in right_rows:
                    merged = {**left_row, **right_row}
                    candidates += 1
                    if all(p.evaluate(merged) for p in predicates):
                        append_row(merged)
                        if len(merged) == left_len + len(right_row):
                            append_size(left_size + right_size - 2)
                        else:
                            append_size(estimate_value_size(merged))
        if pred_cpu and candidates:
            context.charge_cpu(pred_cpu * candidates)
        return BatchEmit(rows=out_rows, sizes=out_sizes)

    return batch_reducer


def _identity_batch_transform(context: TaskContext, batch: object) -> object:
    """Batch identity: split batches already satisfy the batch protocol."""
    return batch


class PlanCompiler:
    """Compiles physical plans of one block into MapReduce jobs."""

    def __init__(self, dfs: DistributedFileSystem, config: DynoConfig,
                 name_prefix: str,
                 table_files: dict[str, str] | None = None):
        self.dfs = dfs
        self.config = config
        self.name_prefix = name_prefix
        #: base table name -> DFS file name (identity unless remapped).
        self.table_files = table_files or {}
        self._counter = 0
        self._columnar = config.columnar
        self._use_numpy = (resolve_backend(config.columnar_backend)
                           if config.columnar else False)

    # -- public ---------------------------------------------------------------------

    def compile_block(self, plan: PhysicalNode) -> JobGraph:
        """Compile a whole physical join plan into its job graph."""
        jobs: list[CompiledJob] = []
        stream = self._compile_node(plan, jobs)
        if (not stream.builds
                and stream.transform is _identity_transform
                and len(stream.input_files) == 1):
            # Nothing left to execute beyond already-emitted jobs: the plan
            # top is a materialized file (e.g. a repartition-join output).
            final_output = stream.input_files[0]
            for compiled in jobs:
                if compiled.job.output_name == final_output:
                    compiled.final = True
            return JobGraph(jobs, final_output, trivial=not jobs)
        final = self._materialize(stream, jobs, final=True)
        return JobGraph(jobs, final.job.output_name)

    def compile_group_by(self, input_file: str, group_by: GroupBy,
                         job_label: str = "groupby") -> CompiledJob:
        """One map+reduce job computing a GROUP BY over a materialized file."""
        keys = group_by.keys
        aggregates = group_by.aggregates

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            for row in rows:
                key = tuple(ref.evaluate(row) for ref in keys)
                context.emit(key, row)

        def reducer(context: TaskContext, key: object,
                    values: list[Row]) -> None:
            key_parts = key if isinstance(key, tuple) else (key,)
            out: Row = {
                ref.qualified: part for ref, part in zip(keys, key_parts)
            }
            for aggregate in aggregates:
                state = aggregate.initial()
                for row in values:
                    state = aggregate.step(state, row)
                out[aggregate.output_name] = aggregate.final(state)
            context.emit(None, out)

        batch_mapper = None
        batch_reducer = None
        if self._columnar:
            def batch_mapper(context: TaskContext, source: str,
                             batch) -> BatchEmit:
                # Group-by shuffles every input row under its key tuple --
                # no None-key skip, matching the row mapper -- so the rows
                # and their stored split sizes pass through untouched.
                rows = batch.rows
                count = len(rows)
                if not keys:
                    out_keys: list = [()] * count
                else:
                    resolver = ColumnResolver(batch)
                    key_columns = [resolver.values(ref) for ref in keys]
                    if len(key_columns) == 1:
                        out_keys = [(value,) for value in key_columns[0]]
                    else:
                        out_keys = list(zip(*key_columns))
                return BatchEmit(rows=list(rows),
                                 sizes=batch.ensure_sizes(),
                                 keys=out_keys)

            def batch_reducer(context: TaskContext, groups) -> BatchEmit:
                out_rows: list[Row] = []
                out_sizes: list[int] = []
                for key, values, _sizes in groups:
                    key_parts = key if isinstance(key, tuple) else (key,)
                    out: Row = {
                        ref.qualified: part
                        for ref, part in zip(keys, key_parts)
                    }
                    for aggregate in aggregates:
                        out[aggregate.output_name] = _fold_aggregate(
                            aggregate, values)
                    out_rows.append(out)
                    out_sizes.append(estimate_dict_size(out))
                return BatchEmit(rows=out_rows, sizes=out_sizes)

        name = self._next_name(job_label)
        output = f"{name}.out"
        job = MapReduceJob(
            name=name,
            inputs=[input_file],
            mapper=mapper,
            reducer=reducer,
            num_reducers=self._reducers_for([input_file]),
            output_name=output,
            output_schema=_intermediate_schema(),
            description=f"group by over {input_file}",
            batch_mapper=batch_mapper,
            batch_reducer=batch_reducer,
        )
        return CompiledJob(
            job=job,
            depends_on=[],
            output_aliases=frozenset(),
            applied_predicates=(),
            join_count=0,
            estimated_cost=0.0,
            estimated_rows=0.0,
            final=True,
        )

    # -- recursion -------------------------------------------------------------------

    def _compile_node(self, node: PhysicalNode,
                      jobs: list[CompiledJob]) -> _Stream:
        if isinstance(node, PhysLeaf):
            return self._leaf_stream(node)
        if not isinstance(node, PhysJoin):
            raise PlanError(f"cannot compile {type(node).__name__}")
        if node.method == SKEW:
            # Before the hash-build dispatch: the skew join loads a build
            # side too (the heavy-key slice) but compiles to a map+reduce
            # job with a shuffle for the tail, not a map-only pipeline.
            return self._skew_stream(node, jobs)
        if node.method in HASH_BUILD_METHODS:
            # Hybrid hash joins compile exactly like broadcast joins -- the
            # build side is loaded per task -- but the build is marked
            # spillable so the runtime degrades it in place when it
            # overflows task memory instead of failing the job.
            return self._broadcast_stream(node, jobs)
        return self._repartition_stream(node, jobs)

    def _leaf_stream(self, node: PhysLeaf) -> _Stream:
        leaf = node.leaf
        input_file = self._file_of_leaf(leaf)
        if not leaf.is_base:
            return _Stream(
                input_files=[input_file],
                transform=_identity_transform,
                aliases=node.aliases,
                node=node,
                batch_transform=(_identity_batch_transform
                                 if self._columnar else None),
            )
        cpu_per_row = leaf.cpu_seconds_per_row

        def transform(context: TaskContext, row: Row,
                      _leaf: BlockLeaf = leaf,
                      _cpu: float = cpu_per_row) -> Iterable[Row]:
            if _cpu:
                context.charge_cpu(_cpu)
            qualified = _leaf.qualify_and_filter(row)
            return (qualified,) if qualified is not None else ()

        return _Stream(
            input_files=[input_file],
            transform=transform,
            aliases=node.aliases,
            node=node,
            batch_transform=self._leaf_batch_transform(leaf, cpu_per_row),
        )

    def _leaf_batch_transform(self, leaf: BlockLeaf,
                              cpu_per_row: float) -> BatchTransform | None:
        """Vectorized scan+filter over one base-table split.

        Predicates are evaluated over the *raw* (unqualified) columns --
        qualification renames fields 1:1, so ``ref.column`` addresses the
        same values ``ref.qualified`` would after :func:`qualify_row` --
        and only the surviving rows are qualified, in input order, exactly
        like the row transform.
        """
        if not self._columnar:
            return None
        predicates = leaf.predicates
        if not supports_vector(predicates):
            return None
        alias = leaf.alias
        use_numpy = self._use_numpy

        # Qualifying prefixes every key with ``alias.``: each key's length
        # enters the value-size arithmetic exactly once, so a qualified
        # row's size is the raw size plus ``len(row) * (len(alias) + 1)``.
        # When the input batch already knows its sizes (value-exact DFS
        # files), the output sizes come from that O(1) delta.
        key_delta = len(alias) + 1

        def batch_transform(context: TaskContext, batch) -> RowBatch:
            count = len(batch)
            if cpu_per_row and count:
                context.charge_cpu(cpu_per_row * count)
            rows = batch.rows
            in_sizes = batch.cheap_sizes()
            if predicates:
                resolver = ColumnResolver(batch, raw=True,
                                          use_numpy=use_numpy)
                selection = select(predicates, resolver, count)
                if len(selection) != count:
                    if in_sizes is None:
                        return RowBatch(
                            [qualify_row(alias, rows[i]) for i in selection]
                        )
                    return RowBatch(
                        [qualify_row(alias, rows[i]) for i in selection],
                        [in_sizes[i] + len(rows[i]) * key_delta
                         for i in selection],
                    )
            qualified = [qualify_row(alias, row) for row in rows]
            if in_sizes is None:
                return RowBatch(qualified)
            return RowBatch(
                qualified,
                [size + len(row) * key_delta
                 for size, row in zip(in_sizes, rows)],
            )

        return batch_transform

    def _broadcast_stream(self, node: PhysJoin,
                          jobs: list[CompiledJob]) -> _Stream:
        probe = self._compile_node(node.left, jobs)
        if probe.builds and not node.chained:
            # Job boundary: the optimizer decided this join must not share
            # a job with the probe-side broadcast chain (builds would not
            # fit in memory together). Materialize the probe first.
            materialized = self._materialize(probe, jobs)
            probe = _Stream(
                input_files=[materialized.job.output_name],
                transform=_identity_transform,
                upstream=[materialized],
                aliases=probe.aliases,
                upstream_cost=(probe.node.cost
                               if probe.node is not None else 0.0),
                node=probe.node,
            )

        build = self._build_side(
            node.right, jobs, probe, spillable=node.method == HYBRID,
        )
        probe_refs = [
            condition.side_for(node.left.aliases)
            for condition in node.conditions
        ]
        build_refs = [
            condition.side_for(node.right.aliases)
            for condition in node.conditions
        ]
        predicates = node.applied_predicates
        probe_cpu = self.config.cluster.probe_seconds_per_record
        pred_cpu = sum(p.cpu_seconds_per_row for p in predicates)
        inner_transform = probe.transform
        hash_holder: dict[str, object] = {}

        def transform(context: TaskContext, row: Row) -> Iterable[Row]:
            table = hash_holder.get("table")
            if table is None or hash_holder.get("source") is not build.rows:
                table = {}
                for build_row in build.built_rows():
                    key = tuple(ref.evaluate(build_row) for ref in build_refs)
                    if None in key:
                        continue
                    table.setdefault(key, []).append(build_row)
                hash_holder["table"] = table
                hash_holder["source"] = build.rows
            results: list[Row] = []
            append = results.append
            charge_cpu = context.charge_cpu
            table_get = table.get
            for probe_row in inner_transform(context, row):
                charge_cpu(probe_cpu)
                key = tuple(ref.evaluate(probe_row) for ref in probe_refs)
                if None in key:
                    continue
                bucket = table_get(key)
                if bucket is None:
                    continue
                for build_row in bucket:
                    merged = {**probe_row, **build_row}
                    if pred_cpu:
                        charge_cpu(pred_cpu)
                    if not predicates or \
                            all(p.evaluate(merged) for p in predicates):
                        append(merged)
            return results

        batch_transform = self._probe_batch_transform(
            probe, build, probe_refs, build_refs, predicates,
            probe_cpu, pred_cpu,
        )

        return _Stream(
            input_files=probe.input_files,
            transform=transform,
            builds=probe.builds + [build],
            upstream=probe.upstream,
            aliases=node.aliases,
            join_count=probe.join_count + 1,
            applied_predicates=probe.applied_predicates + predicates,
            upstream_cost=probe.upstream_cost,
            node=node,
            batch_transform=batch_transform,
        )

    def _probe_batch_transform(self, probe: _Stream, build: BroadcastBuild,
                               probe_refs, build_refs, predicates,
                               probe_cpu: float, pred_cpu: float,
                               ) -> BatchTransform | None:
        """Bulk hash-join probe: extract key columns once, probe per index.

        The hash table is the same one the row transform would build (same
        insertion order, same buckets); each bucket entry carries the
        build row's pre-computed size and field count so merged-row sizes
        come from O(1) arithmetic (disjoint dict merge: sizes add, minus
        one shared record framing) instead of re-walking the dict. CPU is
        charged in bulk: ``probe_cpu`` per probe row and ``pred_cpu`` per
        join candidate, the same totals as the per-row charges.
        """
        if not self._columnar or probe.batch_transform is None:
            return None
        inner_batch = probe.batch_transform
        hash_holder: dict[str, object] = {}
        single_ref = probe_refs[0] if len(probe_refs) == 1 else None

        def batch_transform(context: TaskContext, batch) -> RowBatch:
            table = hash_holder.get("table")
            if table is None or hash_holder.get("source") is not build.rows:
                table = {}
                for build_row in build.built_rows():
                    key = tuple(ref.evaluate(build_row) for ref in build_refs)
                    if None in key:
                        continue
                    table.setdefault(key, []).append(
                        (build_row, estimate_dict_size(build_row),
                         len(build_row))
                    )
                hash_holder["table"] = table
                hash_holder["source"] = build.rows
            inner = inner_batch(context, batch)
            probe_rows = inner.rows
            count = len(probe_rows)
            out_rows: list[Row] = []
            out_sizes: list[int] = []
            if not count:
                return RowBatch(out_rows, out_sizes)
            if probe_cpu:
                context.charge_cpu(probe_cpu * count)
            resolver = ColumnResolver(inner)
            sizes = inner.ensure_sizes()
            append_row = out_rows.append
            append_size = out_sizes.append
            table_get = table.get
            candidates = 0
            if single_ref is not None:
                key_column = resolver.values(single_ref)
                buckets = [
                    None if (value := key_column[i]) is None
                    else table_get((value,))
                    for i in range(count)
                ]
            else:
                key_columns = [resolver.values(ref) for ref in probe_refs]
                buckets = [
                    None if None in
                    (key := tuple(column[i] for column in key_columns))
                    else table_get(key)
                    for i in range(count)
                ]
            for i in range(count):
                bucket = buckets[i]
                if bucket is None:
                    continue
                probe_row = probe_rows[i]
                probe_size = sizes[i]
                probe_len = len(probe_row)
                for build_row, build_size, build_len in bucket:
                    merged = {**probe_row, **build_row}
                    candidates += 1
                    if not predicates or \
                            all(p.evaluate(merged) for p in predicates):
                        append_row(merged)
                        if len(merged) == probe_len + build_len:
                            append_size(probe_size + build_size - 2)
                        else:
                            append_size(estimate_value_size(merged))
            if pred_cpu and candidates:
                context.charge_cpu(pred_cpu * candidates)
            return RowBatch(out_rows, out_sizes)

        return batch_transform

    def _build_side(self, node: PhysicalNode, jobs: list[CompiledJob],
                    probe: _Stream, spillable: bool = False,
                    ) -> BroadcastBuild:
        """Build sides must be materialized.

        Small base leaves load directly, applying their predicates while
        the hash table builds (Jaql's broadcast join loads S per task).
        A base leaf whose *raw file* exceeds task memory but whose filtered
        form fits is first reduced by a map-only filter job -- re-reading
        the big raw file in every task would defeat the broadcast join
        (this is the execution-side counterpart of the optimizer's
        "relations that fit in memory after a selective filter" insight,
        Section 2.2.3; pilot-run output reuse covers the most selective
        leaves without any extra job). Join subtrees are compiled into jobs
        of their own first.
        """
        if isinstance(node, PhysLeaf):
            leaf = node.leaf
            input_file = self._file_of_leaf(leaf)
            raw_bytes = (self.dfs.file_size(input_file)
                         if self.dfs.exists(input_file) else 0)
            budget = self.config.cluster.task_memory_bytes
            if leaf.is_base and leaf.predicates and raw_bytes > budget:
                filtered = self._materialize(self._leaf_stream(node), jobs)
                probe.upstream.append(filtered)
                return BroadcastBuild(
                    input_file=filtered.job.output_name,
                    loader=lambda raw_rows: list(raw_rows),
                    description=f"{leaf.describe()} (pre-filtered)",
                    spillable=spillable,
                    declared_bytes=int(node.est_bytes),
                )
            if leaf.is_base:
                def loader(raw_rows: list[Row],
                           _leaf: BlockLeaf = leaf) -> list[Row]:
                    loaded = []
                    for row in raw_rows:
                        qualified = _leaf.qualify_and_filter(row)
                        if qualified is not None:
                            loaded.append(qualified)
                    return loaded
            else:
                def loader(raw_rows: list[Row]) -> list[Row]:
                    return list(raw_rows)
            return BroadcastBuild(
                input_file=input_file,
                loader=loader,
                description=leaf.describe(),
                spillable=spillable,
                declared_bytes=int(node.est_bytes),
            )
        # Join subtree: materialize it, then broadcast its output.
        subtree = self._compile_node(node, jobs)
        if (not subtree.builds
                and subtree.transform is _identity_transform
                and len(subtree.input_files) == 1):
            # Already materialized (e.g. a repartition-join output).
            build_file = subtree.input_files[0]
            probe.upstream.extend(subtree.upstream)
        else:
            materialized = self._materialize(subtree, jobs)
            build_file = materialized.job.output_name
            probe.upstream.append(materialized)
        probe.upstream_cost += node.cost
        return BroadcastBuild(
            input_file=build_file,
            loader=lambda raw_rows: list(raw_rows),
            description=f"build from {build_file}",
            spillable=spillable,
            declared_bytes=int(node.est_bytes),
        )

    def _repartition_stream(self, node: PhysJoin,
                            jobs: list[CompiledJob]) -> _Stream:
        left = self._compile_node(node.left, jobs)
        right = self._compile_node(node.right, jobs)
        sides = (left, right)
        side_refs = [
            [condition.side_for(side.aliases) for condition in node.conditions]
            for side in sides
        ]
        predicates = node.applied_predicates
        pred_cpu = sum(p.cpu_seconds_per_row for p in predicates)

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            for side_index, side in enumerate(sides):
                if source not in side.input_files:
                    continue
                refs = side_refs[side_index]
                transform = side.transform
                emit = context.emit
                for row in rows:
                    for out in transform(context, row):
                        key = tuple(ref.evaluate(out) for ref in refs)
                        if None in key:
                            continue
                        emit(key, {"s": side_index, "r": out})

        reducer = _make_join_reducer(predicates, pred_cpu)

        batch_mapper = None
        batch_reducer = None
        if self._columnar and all(
                side.batch_transform is not None for side in sides):
            batch_sides = tuple(side.batch_transform for side in sides)
            side_files = tuple(frozenset(side.input_files) for side in sides)

            def batch_mapper(context: TaskContext, source: str,
                             batch) -> BatchEmit:
                # Tagged shuffle records: ``{"s": side, "r": row}`` sizes
                # to 16 + size(row) (two one-char keys, one 8-byte int).
                # Keys stay the same tuples the row mapper emits -- the
                # hash partitioner must see identical keys.
                out_keys: list = []
                out_rows: list[Row] = []
                out_sizes: list[int] = []
                for side_index in (0, 1):
                    if source not in side_files[side_index]:
                        continue
                    out = batch_sides[side_index](context, batch)
                    rows = out.rows
                    if not rows:
                        continue
                    sizes = out.ensure_sizes()
                    resolver = ColumnResolver(out)
                    refs = side_refs[side_index]
                    append_key = out_keys.append
                    append_row = out_rows.append
                    append_size = out_sizes.append
                    if len(refs) == 1:
                        key_column = resolver.values(refs[0])
                        for i, value in enumerate(key_column):
                            if value is None:
                                continue
                            append_key((value,))
                            append_row({"s": side_index, "r": rows[i]})
                            append_size(16 + sizes[i])
                    else:
                        key_columns = [resolver.values(ref) for ref in refs]
                        for i in range(len(rows)):
                            key = tuple(column[i] for column in key_columns)
                            if None in key:
                                continue
                            append_key(key)
                            append_row({"s": side_index, "r": rows[i]})
                            append_size(16 + sizes[i])
                return BatchEmit(rows=out_rows, sizes=out_sizes,
                                 keys=out_keys)

            batch_reducer = _make_join_batch_reducer(predicates, pred_cpu)

        name = self._next_name("rjoin")
        output = f"{name}.out"
        inputs = sorted(set(left.input_files) | set(right.input_files))
        estimated_input_bytes = (
            node.left.est_bytes + node.right.est_bytes
        )
        job = MapReduceJob(
            name=name,
            inputs=inputs,
            mapper=mapper,
            reducer=reducer,
            num_reducers=self._reducers_for(inputs, estimated_input_bytes),
            output_name=output,
            output_schema=_intermediate_schema(),
            broadcast_builds=left.builds + right.builds,
            description=f"repartition join over {sorted(node.aliases)}",
            memory_demand_bytes=self._memory_demand(
                left.builds + right.builds
            ),
            batch_mapper=batch_mapper,
            batch_reducer=batch_reducer,
        )
        depends = _dedupe(
            [up.name for up in left.upstream + right.upstream]
        )
        upstream_cost = left.upstream_cost + right.upstream_cost
        compiled = CompiledJob(
            job=job,
            depends_on=depends,
            output_aliases=node.aliases,
            applied_predicates=(left.applied_predicates
                                + right.applied_predicates + predicates),
            join_count=left.join_count + right.join_count + 1,
            estimated_cost=max(node.cost - upstream_cost, 0.0),
            estimated_rows=node.est_rows,
            estimated_bytes=node.est_bytes,
        )
        jobs.append(compiled)
        return _Stream(
            input_files=[output],
            transform=_identity_transform,
            upstream=[compiled],
            aliases=node.aliases,
            upstream_cost=node.cost,
            node=node,
        )

    def _skew_build_side(self, node: PhysJoin, right: _Stream,
                         jobs: list[CompiledJob], build_refs,
                         ) -> tuple[BroadcastBuild, _Stream]:
        """Heavy-key build slice of a skew join.

        The heavy rows are filtered out of a full scan of the build input
        -- a base leaf's raw file, an already-materialized intermediate,
        or the build pipeline materialized once and shared with the
        shuffle side -- so the in-map hash table holds only the heavy-key
        slice while the job's tail shuffle re-reads the same file.
        """
        heavy_set = frozenset(node.heavy_keys)
        declared = int(node.heavy_build_fraction * node.right.est_bytes)
        right_node = node.right
        if isinstance(right_node, PhysLeaf) and right_node.leaf.is_base:
            leaf = right_node.leaf

            def leaf_loader(raw_rows: list[Row],
                            _leaf: BlockLeaf = leaf) -> list[Row]:
                loaded = []
                for row in raw_rows:
                    qualified = _leaf.qualify_and_filter(row)
                    if qualified is None:
                        continue
                    key = tuple(ref.evaluate(qualified)
                                for ref in build_refs)
                    if key in heavy_set:
                        loaded.append(qualified)
                return loaded

            return BroadcastBuild(
                input_file=self._file_of_leaf(leaf),
                loader=leaf_loader,
                description=f"{leaf.describe()} (heavy keys)",
                declared_bytes=declared,
            ), right

        if (right.builds or right.transform is not _identity_transform
                or len(right.input_files) != 1):
            # Build pipeline: materialize it once; the same file feeds
            # both the tail shuffle and the heavy-key build.
            materialized = self._materialize(right, jobs)
            right = _Stream(
                input_files=[materialized.job.output_name],
                transform=_identity_transform,
                upstream=[materialized],
                aliases=right.aliases,
                upstream_cost=(right.node.cost
                               if right.node is not None else 0.0),
                node=right.node,
                batch_transform=(_identity_batch_transform
                                 if self._columnar else None),
            )
        build_file = right.input_files[0]

        def loader(raw_rows: list[Row]) -> list[Row]:
            return [row for row in raw_rows
                    if tuple(ref.evaluate(row)
                             for ref in build_refs) in heavy_set]

        return BroadcastBuild(
            input_file=build_file,
            loader=loader,
            description=f"heavy keys of {build_file}",
            declared_bytes=declared,
        ), right

    def _skew_stream(self, node: PhysJoin,
                     jobs: list[CompiledJob]) -> _Stream:
        """Skew join: one map+reduce job with a heavy-key side channel.

        Map tasks hash-load only the build rows of the plan's heavy keys
        (:attr:`PhysJoin.heavy_keys`). Probe rows carrying a heavy key
        are joined in place and emitted with ``key=None`` -- the runtime
        routes them straight to the job's output, bypassing the shuffle
        -- while the long tail of both sides shuffles and reduces exactly
        like a repartition join. Build rows of heavy keys are dropped
        from the shuffle (they already live in the broadcast build), so
        no pair is joined twice.
        """
        left = self._compile_node(node.left, jobs)
        right = self._compile_node(node.right, jobs)
        probe_refs = [
            condition.side_for(node.left.aliases)
            for condition in node.conditions
        ]
        build_refs = [
            condition.side_for(node.right.aliases)
            for condition in node.conditions
        ]
        heavy_build, right = self._skew_build_side(
            node, right, jobs, build_refs,
        )
        sides = (left, right)
        side_refs = [probe_refs, build_refs]
        predicates = node.applied_predicates
        pred_cpu = sum(p.cpu_seconds_per_row for p in predicates)
        probe_cpu = self.config.cluster.probe_seconds_per_record
        heavy_set = frozenset(node.heavy_keys)
        hash_holder: dict[str, object] = {}

        def heavy_table() -> dict:
            table = hash_holder.get("table")
            if table is None or \
                    hash_holder.get("source") is not heavy_build.rows:
                table = {}
                for build_row in heavy_build.built_rows():
                    key = tuple(ref.evaluate(build_row)
                                for ref in build_refs)
                    if None in key:
                        continue
                    table.setdefault(key, []).append(build_row)
                hash_holder["table"] = table
                hash_holder["source"] = heavy_build.rows
            return table

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            for side_index, side in enumerate(sides):
                if source not in side.input_files:
                    continue
                refs = side_refs[side_index]
                transform = side.transform
                emit = context.emit
                charge_cpu = context.charge_cpu
                if side_index == 0:
                    table_get = heavy_table().get
                    for row in rows:
                        for out in transform(context, row):
                            key = tuple(ref.evaluate(out) for ref in refs)
                            if None in key:
                                continue
                            if key in heavy_set:
                                charge_cpu(probe_cpu)
                                bucket = table_get(key)
                                if bucket is None:
                                    continue
                                for build_row in bucket:
                                    merged = {**out, **build_row}
                                    if pred_cpu:
                                        charge_cpu(pred_cpu)
                                    if not predicates or all(
                                            p.evaluate(merged)
                                            for p in predicates):
                                        emit(None, merged)
                            else:
                                emit(key, {"s": 0, "r": out})
                else:
                    for row in rows:
                        for out in transform(context, row):
                            key = tuple(ref.evaluate(out) for ref in refs)
                            if None in key:
                                continue
                            if key in heavy_set:
                                continue  # lives in the heavy build
                            emit(key, {"s": 1, "r": out})

        reducer = _make_join_reducer(predicates, pred_cpu)

        batch_mapper = None
        batch_reducer = None
        if self._columnar and all(
                side.batch_transform is not None for side in sides):
            batch_sides = tuple(side.batch_transform for side in sides)
            side_files = tuple(frozenset(side.input_files) for side in sides)
            batch_holder: dict[str, object] = {}

            def heavy_batch_table() -> dict:
                table = batch_holder.get("table")
                if table is None or \
                        batch_holder.get("source") is not heavy_build.rows:
                    table = {}
                    for build_row in heavy_build.built_rows():
                        key = tuple(ref.evaluate(build_row)
                                    for ref in build_refs)
                        if None in key:
                            continue
                        table.setdefault(key, []).append(
                            (build_row, estimate_dict_size(build_row),
                             len(build_row))
                        )
                    batch_holder["table"] = table
                    batch_holder["source"] = heavy_build.rows
                return table

            def batch_mapper(context: TaskContext, source: str,
                             batch) -> BatchEmit:
                # Same record stream as the row mapper: heavy probe rows
                # become merged outputs keyed None (direct output), the
                # tail becomes 16-byte-framed tagged shuffle records.
                out_keys: list = []
                out_rows: list[Row] = []
                out_sizes: list[int] = []
                for side_index in (0, 1):
                    if source not in side_files[side_index]:
                        continue
                    out = batch_sides[side_index](context, batch)
                    rows = out.rows
                    if not rows:
                        continue
                    sizes = out.ensure_sizes()
                    resolver = ColumnResolver(out)
                    refs = side_refs[side_index]
                    if len(refs) == 1:
                        column = resolver.values(refs[0])
                        keys = [
                            None if (value := column[i]) is None
                            else (value,)
                            for i in range(len(rows))
                        ]
                    else:
                        key_columns = [resolver.values(ref) for ref in refs]
                        keys = [
                            None if None in
                            (key := tuple(column[i]
                                          for column in key_columns))
                            else key
                            for i in range(len(rows))
                        ]
                    append_key = out_keys.append
                    append_row = out_rows.append
                    append_size = out_sizes.append
                    if side_index == 0:
                        table_get = heavy_batch_table().get
                        heavy_count = 0
                        candidates = 0
                        for i, key in enumerate(keys):
                            if key is None:
                                continue
                            if key in heavy_set:
                                heavy_count += 1
                                bucket = table_get(key)
                                if bucket is None:
                                    continue
                                probe_row = rows[i]
                                probe_size = sizes[i]
                                probe_len = len(probe_row)
                                for build_row, build_size, build_len \
                                        in bucket:
                                    merged = {**probe_row, **build_row}
                                    candidates += 1
                                    if not predicates or all(
                                            p.evaluate(merged)
                                            for p in predicates):
                                        append_key(None)
                                        append_row(merged)
                                        if len(merged) == \
                                                probe_len + build_len:
                                            append_size(
                                                probe_size + build_size - 2)
                                        else:
                                            append_size(
                                                estimate_value_size(merged))
                            else:
                                append_key(key)
                                append_row({"s": 0, "r": rows[i]})
                                append_size(16 + sizes[i])
                        if probe_cpu and heavy_count:
                            context.charge_cpu(probe_cpu * heavy_count)
                        if pred_cpu and candidates:
                            context.charge_cpu(pred_cpu * candidates)
                    else:
                        for i, key in enumerate(keys):
                            if key is None or key in heavy_set:
                                continue
                            append_key(key)
                            append_row({"s": 1, "r": rows[i]})
                            append_size(16 + sizes[i])
                return BatchEmit(rows=out_rows, sizes=out_sizes,
                                 keys=out_keys)

            batch_reducer = _make_join_batch_reducer(predicates, pred_cpu)

        name = self._next_name("sjoin")
        output = f"{name}.out"
        inputs = sorted(set(left.input_files) | set(right.input_files))
        estimated_input_bytes = (
            node.left.est_bytes + node.right.est_bytes
        )
        builds = left.builds + right.builds + [heavy_build]
        job = MapReduceJob(
            name=name,
            inputs=inputs,
            mapper=mapper,
            reducer=reducer,
            num_reducers=self._reducers_for(inputs, estimated_input_bytes),
            output_name=output,
            output_schema=_intermediate_schema(),
            broadcast_builds=builds,
            description=(f"skew join over {sorted(node.aliases)}"
                         f" ({len(node.heavy_keys)} heavy keys)"),
            memory_demand_bytes=self._memory_demand(builds),
            batch_mapper=batch_mapper,
            batch_reducer=batch_reducer,
            map_side_output=True,
        )
        depends = _dedupe(
            [up.name for up in left.upstream + right.upstream]
        )
        upstream_cost = left.upstream_cost + right.upstream_cost
        compiled = CompiledJob(
            job=job,
            depends_on=depends,
            output_aliases=node.aliases,
            applied_predicates=(left.applied_predicates
                                + right.applied_predicates + predicates),
            join_count=left.join_count + right.join_count + 1,
            estimated_cost=max(node.cost - upstream_cost, 0.0),
            estimated_rows=node.est_rows,
            estimated_bytes=node.est_bytes,
        )
        jobs.append(compiled)
        return _Stream(
            input_files=[output],
            transform=_identity_transform,
            upstream=[compiled],
            aliases=node.aliases,
            upstream_cost=node.cost,
            node=node,
        )

    # -- materialization ---------------------------------------------------------------

    def _materialize(self, stream: _Stream, jobs: list[CompiledJob],
                     final: bool = False) -> CompiledJob:
        """Emit a map-only job writing the stream's rows to the DFS."""
        label = "final" if final else "mjoin"
        name = self._next_name(label)
        output = f"{name}.out"
        transform = stream.transform

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            emit = context.emit
            for row in rows:
                for out in transform(context, row):
                    emit(None, out)

        batch_mapper = None
        if self._columnar and stream.batch_transform is not None:
            stream_batch = stream.batch_transform

            def batch_mapper(context: TaskContext, source: str,
                             batch) -> BatchEmit:
                out = stream_batch(context, batch)
                return BatchEmit(rows=out.rows, sizes=out.ensure_sizes(),
                                 columns=out)

        job = MapReduceJob(
            name=name,
            inputs=list(stream.input_files),
            mapper=mapper,
            output_name=output,
            output_schema=_intermediate_schema(),
            broadcast_builds=list(stream.builds),
            description=f"map-only pipeline over {sorted(stream.aliases)}",
            memory_demand_bytes=self._memory_demand(stream.builds),
            batch_mapper=batch_mapper,
        )
        node_cost = stream.node.cost if stream.node is not None else 0.0
        compiled = CompiledJob(
            job=job,
            depends_on=_dedupe([up.name for up in stream.upstream]),
            output_aliases=stream.aliases,
            applied_predicates=stream.applied_predicates,
            join_count=stream.join_count,
            estimated_cost=max(node_cost - stream.upstream_cost, 0.0),
            estimated_rows=(stream.node.est_rows
                            if stream.node is not None else 0.0),
            estimated_bytes=(stream.node.est_bytes
                             if stream.node is not None else 0.0),
            final=final,
        )
        jobs.append(compiled)
        return compiled

    # -- helpers -----------------------------------------------------------------------

    def _file_of_leaf(self, leaf: BlockLeaf) -> str:
        if leaf.is_base:
            return self.table_files.get(leaf.source_name, leaf.source_name)
        return leaf.source_name

    def _memory_demand(self, builds: list[BroadcastBuild]) -> int:
        """Declared build memory of one job, from optimizer estimates.

        Capped at the task budget: a spilling build never holds more than
        ``task_memory_bytes`` resident, and a non-spillable build beyond
        the budget fails before occupying it. The runtime later charges
        ``max(declaration, actually loaded in-memory bytes)`` so lying
        estimates cannot under-charge the cluster pool.
        """
        declared = sum(build.declared_bytes for build in builds)
        return min(declared, self.config.cluster.task_memory_bytes)

    def _next_name(self, label: str) -> str:
        self._counter += 1
        return f"{self.name_prefix}.{label}{self._counter}"

    def _reducers_for(self, inputs: list[str],
                      estimated_bytes: float = 0.0) -> int:
        """Hive-like default: proportional to input size, capped by slots.

        Inputs not yet materialized (downstream jobs of a not-yet-executed
        plan) fall back to the optimizer's byte estimates.
        """
        total_bytes = sum(self.dfs.file_size(name) for name in inputs
                          if self.dfs.exists(name))
        total_bytes = max(total_bytes, estimated_bytes)
        per_reducer = 2 * self.config.cluster.block_size_bytes
        wanted = max(1, math.ceil(total_bytes / per_reducer))
        return min(wanted, self.config.cluster.total_reduce_slots)


def _fold_aggregate(aggregate: Aggregate, values: list[Row]):
    """Columnar fold of one aggregate over a group's rows.

    Replicates ``initial()``/``step()``/``final()`` exactly, including the
    float fold order (left fold from 0.0 for sum/avg) and min/max keeping
    the earliest value on ties, so results are bit-identical to the row
    reducer's state machine.
    """
    op = aggregate.op
    if op == "count":
        return len(values)
    arg = aggregate.arg
    assert arg is not None
    evaluate = arg.evaluate
    if op == "sum":
        state = 0.0
        for row in values:
            value = evaluate(row)
            if value is not None:
                state = state + value
        return state
    if op == "avg":
        total = 0.0
        count = 0
        for row in values:
            value = evaluate(row)
            if value is not None:
                total = total + value
                count += 1
        return total / count if count else None
    if op == "min":
        state = None
        for row in values:
            value = evaluate(row)
            if value is not None and (state is None or value < state):
                state = value
        return state
    state = None
    for row in values:
        value = evaluate(row)
        if value is not None and (state is None or value > state):
            state = value
    return state


def _dedupe(names: list[str]) -> list[str]:
    seen: set[str] = set()
    ordered: list[str] = []
    for name in names:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return ordered
