"""Jaql-style expression AST.

Queries are trees of relational expressions over JSON-like records, mirroring
the subset of Jaql the paper uses: scans, filters (including UDF predicates),
equality joins, group-by, order-by, and a final projection. Records flowing
through a plan are *alias-qualified*: scanning ``restaurant rs`` produces
rows keyed ``rs.id``, ``rs.addr``, ... so that self-joins (Q7/Q8 use
``nation`` twice as ``n1``/``n2``) stay unambiguous.

Predicates know which aliases they reference, which is what the rewrite
engine uses to push *local* predicates below joins (Section 3: "an operation
is local to a table if it only refers to attributes from that table").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Iterable, Sequence

from repro.data.schema import FieldType, Schema
from repro.data.table import Row
from repro.errors import PlanError, SchemaError
from repro.jaql.functions import Udf

# ---------------------------------------------------------------------------
# Column references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A reference ``alias.column[...].nested`` into a qualified row."""

    alias: str
    column: str
    steps: tuple[str | int, ...] = ()

    @cached_property
    def qualified(self) -> str:
        """The flat field name carrying this column in qualified rows.

        An empty alias refers to an *unqualified* field, e.g. an aggregate
        output column of a previous block. Cached: refs are evaluated once
        per row in every join loop, and re-formatting the name dominates
        the lookup itself. (``cached_property`` writes straight into
        ``__dict__``, so it works on this frozen dataclass.)
        """
        if not self.alias:
            return self.column
        return f"{self.alias}.{self.column}"

    def evaluate(self, row: Row) -> Any:
        value = row.get(self.qualified)
        if not self.steps:
            return value
        for step in self.steps:
            if value is None:
                return None
            if isinstance(step, str):
                if not isinstance(value, dict):
                    return None
                value = value.get(step)
            else:
                if not isinstance(value, list) or step >= len(value):
                    return None
                value = value[step]
        return value

    def describe(self) -> str:
        suffix = "".join(
            f".{step}" if isinstance(step, str) else f"[{step}]"
            for step in self.steps
        )
        return f"{self.alias}.{self.column}{suffix}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def ref(alias: str, column: str, *steps: str | int) -> ColumnRef:
    """Convenience constructor: ``ref('rs', 'addr', 0, 'zip')``."""
    return ColumnRef(alias, column, tuple(steps))


def qualify_schema(alias: str, schema: Schema) -> Schema:
    """Schema whose fields are ``alias.column`` for each table column."""
    return Schema(
        tuple((f"{alias}.{name}", ftype) for name, ftype in schema.fields)
    )


#: Bounded memo of qualified field-name tuples, keyed by (alias, raw field
#: names). Rows of one table share identical key tuples, so qualification
#: becomes one cache hit plus a C-level ``dict(zip(...))`` instead of one
#: string format per field per row.
_QUALIFIED_NAMES: dict[tuple[str, tuple[str, ...]], tuple[str, ...]] = {}
_QUALIFIED_NAMES_LIMIT = 4096


def qualify_row(alias: str, row: Row) -> Row:
    cache_key = (alias, tuple(row))
    names = _QUALIFIED_NAMES.get(cache_key)
    if names is None:
        names = tuple(f"{alias}.{name}" for name in row)
        if len(_QUALIFIED_NAMES) < _QUALIFIED_NAMES_LIMIT:
            _QUALIFIED_NAMES[cache_key] = names
    return dict(zip(names, row.values()))


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Predicate:
    """Base class of boolean row predicates."""

    def evaluate(self, row: Row) -> bool:
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """Aliases whose attributes this predicate reads."""
        raise NotImplementedError

    def signature(self) -> str:
        """Stable text identity (drives statistics reuse, Section 4.1)."""
        raise NotImplementedError

    @property
    def is_udf(self) -> bool:
        return False

    @property
    def cpu_seconds_per_row(self) -> float:
        """Simulated evaluation cost charged per row (UDFs override)."""
        return 0.0

    def describe(self) -> str:
        return self.signature()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column op literal`` or ``column op column``."""

    left: ColumnRef
    op: str
    right: Any  # literal or ColumnRef

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator: {self.op!r}")

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = (self.right.evaluate(row)
                 if isinstance(self.right, ColumnRef) else self.right)
        if left is None or right is None:
            return False
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            return False

    def references(self) -> frozenset[str]:
        aliases = {self.left.alias}
        if isinstance(self.right, ColumnRef):
            aliases.add(self.right.alias)
        return frozenset(aliases)

    def signature(self) -> str:
        right = (self.right.describe()
                 if isinstance(self.right, ColumnRef) else repr(self.right))
        return f"({self.left.describe()} {self.op} {right})"


@dataclass(frozen=True)
class UdfPredicate(Predicate):
    """A boolean user-defined function applied to one or more columns.

    Opaque to selectivity estimation by design: this is precisely the class
    of predicates pilot runs exist to measure (Section 4.1).
    """

    udf: Udf
    args: tuple[ColumnRef, ...]

    def evaluate(self, row: Row) -> bool:
        return bool(self.udf(*(arg.evaluate(row) for arg in self.args)))

    def references(self) -> frozenset[str]:
        return frozenset(arg.alias for arg in self.args)

    def signature(self) -> str:
        inner = ",".join(arg.describe() for arg in self.args)
        return f"{self.udf.signature()}({inner})"

    @property
    def is_udf(self) -> bool:
        return True

    @property
    def cpu_seconds_per_row(self) -> float:
        return self.udf.cost_seconds


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def evaluate(self, row: Row) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def references(self) -> frozenset[str]:
        return frozenset(
            itertools.chain.from_iterable(p.references() for p in self.parts)
        )

    def signature(self) -> str:
        return "(" + " AND ".join(p.signature() for p in self.parts) + ")"

    @property
    def is_udf(self) -> bool:
        return any(part.is_udf for part in self.parts)

    @property
    def cpu_seconds_per_row(self) -> float:
        return sum(part.cpu_seconds_per_row for part in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def evaluate(self, row: Row) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def references(self) -> frozenset[str]:
        return frozenset(
            itertools.chain.from_iterable(p.references() for p in self.parts)
        )

    def signature(self) -> str:
        return "(" + " OR ".join(p.signature() for p in self.parts) + ")"

    @property
    def is_udf(self) -> bool:
        return any(part.is_udf for part in self.parts)

    @property
    def cpu_seconds_per_row(self) -> float:
        return sum(part.cpu_seconds_per_row for part in self.parts)


def conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(predicate, And):
        flat: list[Predicate] = []
        for part in predicate.parts:
            flat.extend(conjuncts(part))
        return flat
    return [predicate]


def conjunction(parts: Sequence[Predicate]) -> Predicate:
    """Inverse of :func:`conjuncts`; single predicates stay unwrapped."""
    if not parts:
        raise PlanError("empty conjunction")
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


# ---------------------------------------------------------------------------
# Join conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinCondition:
    """Equality condition ``left = right`` between two aliases."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.alias == self.right.alias:
            raise PlanError(
                f"join condition within a single alias: {self.describe()}"
            )

    def aliases(self) -> frozenset[str]:
        return frozenset((self.left.alias, self.right.alias))

    def side_for(self, alias_set: frozenset[str]) -> ColumnRef:
        """The ref that lives inside ``alias_set`` (raises if neither)."""
        if self.left.alias in alias_set:
            return self.left
        if self.right.alias in alias_set:
            return self.right
        raise PlanError(
            f"condition {self.describe()} touches none of {sorted(alias_set)}"
        )

    def describe(self) -> str:
        return f"{self.left.describe()} = {self.right.describe()}"


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

AGGREGATE_OPS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in a GROUP BY: ``op(ref) AS output_name``."""

    op: str
    arg: ColumnRef | None
    output_name: str

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise PlanError(f"unknown aggregate: {self.op!r}")
        if self.op != "count" and self.arg is None:
            raise PlanError(f"aggregate {self.op} requires an argument")

    def initial(self) -> Any:
        if self.op == "count":
            return 0
        if self.op == "sum":
            return 0.0
        if self.op == "avg":
            return (0.0, 0)
        return None

    def step(self, state: Any, row: Row) -> Any:
        if self.op == "count":
            return state + 1
        assert self.arg is not None
        value = self.arg.evaluate(row)
        if value is None:
            return state
        if self.op == "sum":
            return state + value
        if self.op == "avg":
            total, count = state
            return (total + value, count + 1)
        if self.op == "min":
            return value if state is None or value < state else state
        return value if state is None or value > state else state

    def final(self, state: Any) -> Any:
        if self.op == "avg":
            total, count = state
            return total / count if count else None
        return state

    def describe(self) -> str:
        arg = self.arg.describe() if self.arg is not None else "*"
        return f"{self.op}({arg}) AS {self.output_name}"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of relational expressions."""

    def children(self) -> tuple["Expr", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        raise NotImplementedError

    def aliases(self) -> frozenset[str]:
        """All table aliases visible in this subtree's output."""
        merged: set[str] = set()
        for child in self.children():
            merged.update(child.aliases())
        return frozenset(merged)

    def schema(self, catalog: "Catalog") -> Schema:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class Scan(Expr):
    """Scan of a base table under an alias."""

    table: str
    alias: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        if children:
            raise PlanError("scan has no children")
        return self

    def aliases(self) -> frozenset[str]:
        return frozenset((self.alias,))

    def schema(self, catalog: "Catalog") -> Schema:
        return qualify_schema(self.alias, catalog.schema_of(self.table))

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"scan {self.table} AS {self.alias}"


@dataclass(frozen=True)
class Filter(Expr):
    child: Expr
    predicate: Predicate

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return Filter(child, self.predicate)

    def schema(self, catalog: "Catalog") -> Schema:
        return self.child.schema(catalog)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (f"{pad}filter {self.predicate.signature()}\n"
                f"{self.child.describe(indent + 2)}")


@dataclass(frozen=True)
class Join(Expr):
    left: Expr
    right: Expr
    conditions: tuple[JoinCondition, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise PlanError("join requires at least one condition")
        left_aliases = self.left.aliases()
        right_aliases = self.right.aliases()
        for condition in self.conditions:
            touched = condition.aliases()
            if not (touched & left_aliases and touched & right_aliases):
                raise PlanError(
                    f"join condition {condition.describe()} does not span "
                    f"the two join inputs"
                )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        left, right = children
        return Join(left, right, self.conditions)

    def schema(self, catalog: "Catalog") -> Schema:
        return self.left.schema(catalog).merge(self.right.schema(catalog))

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " AND ".join(c.describe() for c in self.conditions)
        return (f"{pad}join [{conds}]\n"
                f"{self.left.describe(indent + 2)}\n"
                f"{self.right.describe(indent + 2)}")


@dataclass(frozen=True)
class GroupBy(Expr):
    child: Expr
    keys: tuple[ColumnRef, ...]
    aggregates: tuple[Aggregate, ...]

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return GroupBy(child, self.keys, self.aggregates)

    def schema(self, catalog: "Catalog") -> Schema:
        child_schema = self.child.schema(catalog)
        fields: list[tuple[str, FieldType]] = []
        for key in self.keys:
            name = key.qualified
            if key.steps:
                raise PlanError("group-by keys must be top-level columns")
            fields.append((name, child_schema.type_of(name)))
        for aggregate in self.aggregates:
            fields.append((aggregate.output_name, FieldType.atomic("float")))
        return Schema(tuple(fields))

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        keys = ", ".join(key.describe() for key in self.keys)
        aggs = ", ".join(agg.describe() for agg in self.aggregates)
        return (f"{pad}group by [{keys}] compute [{aggs}]\n"
                f"{self.child.describe(indent + 2)}")


@dataclass(frozen=True)
class OrderBy(Expr):
    child: Expr
    keys: tuple[ColumnRef, ...]
    descending: bool = False
    limit: int | None = None

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return OrderBy(child, self.keys, self.descending, self.limit)

    def schema(self, catalog: "Catalog") -> Schema:
        return self.child.schema(catalog)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        keys = ", ".join(key.describe() for key in self.keys)
        direction = "desc" if self.descending else "asc"
        suffix = f" limit {self.limit}" if self.limit is not None else ""
        return (f"{pad}order by [{keys}] {direction}{suffix}\n"
                f"{self.child.describe(indent + 2)}")


@dataclass(frozen=True)
class Project(Expr):
    """Final projection: (source ref or aggregate output name, out name)."""

    child: Expr
    outputs: tuple[tuple[ColumnRef | str, str], ...]

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return Project(child, self.outputs)

    def schema(self, catalog: "Catalog") -> Schema:
        child_schema = self.child.schema(catalog)
        fields: list[tuple[str, FieldType]] = []
        for source, out_name in self.outputs:
            if isinstance(source, ColumnRef):
                if source.steps:
                    fields.append((out_name, FieldType.atomic("string")))
                else:
                    fields.append(
                        (out_name, child_schema.type_of(source.qualified))
                    )
            else:
                fields.append((out_name, child_schema.type_of(source)))
        return Schema(tuple(fields))

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        cols = ", ".join(
            f"{src.describe() if isinstance(src, ColumnRef) else src}"
            f" AS {name}"
            for src, name in self.outputs
        )
        return f"{pad}project [{cols}]\n{self.child.describe(indent + 2)}"

    def project_row(self, row: Row) -> Row:
        out: Row = {}
        for source, name in self.outputs:
            if isinstance(source, ColumnRef):
                out[name] = source.evaluate(row)
            else:
                out[name] = row.get(source)
        return out


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


class Catalog:
    """Name -> schema mapping (backed by the DFS-resident base tables)."""

    def __init__(self, schemas: dict[str, Schema] | None = None):
        self._schemas: dict[str, Schema] = dict(schemas or {})

    def register(self, table: str, schema: Schema) -> None:
        self._schemas[table] = schema

    def schema_of(self, table: str) -> Schema:
        try:
            return self._schemas[table]
        except KeyError:
            raise SchemaError(f"unknown table: {table!r}") from None

    def tables(self) -> list[str]:
        return sorted(self._schemas)

    def __contains__(self, table: str) -> bool:
        return table in self._schemas


# ---------------------------------------------------------------------------
# Tree traversal helpers
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterable[Expr]:
    """Pre-order traversal."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform_bottom_up(expr: Expr,
                        fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild the tree applying ``fn`` to each node after its children."""
    children = tuple(
        transform_bottom_up(child, fn) for child in expr.children()
    )
    return fn(expr.with_children(children))


@dataclass(frozen=True)
class QuerySpec:
    """A full query: name, root expression, and the alias -> table map."""

    name: str
    root: Expr
    description: str = ""
    alias_tables: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.alias_tables:
            discovered = {
                node.alias: node.table
                for node in walk(self.root)
                if isinstance(node, Scan)
            }
            object.__setattr__(self, "alias_tables", discovered)
