"""Heuristic rewrite engine (the Jaql compiler's rule stage).

The paper's step 2 (Figure 1): when a query arrives, Jaql applies logical
heuristic rules such as filter push-down before join blocks are formed.
We implement the rules that matter for DYNO:

* **split-conjunction** -- ``filter (a AND b)`` becomes two stacked filters,
  so each conjunct can sink independently;
* **filter push-down** -- a predicate moves below a join when it references
  only aliases of one input; predicates referencing a single alias end up
  directly above their scan (becoming *local* predicates, the unit pilot
  runs execute); predicates spanning multiple aliases stop at the lowest
  join covering them (remaining *non-local*, e.g. Q8''s UDF over the
  orders x customer join);
* **filter-merge normalization** used by tests to compare trees.

Rules preserve semantics: filters only commute with joins downward into the
side that fully covers their references.
"""

from __future__ import annotations

from repro.jaql.expr import (
    Expr,
    Filter,
    GroupBy,
    Join,
    OrderBy,
    Predicate,
    Project,
    Scan,
    conjunction,
    conjuncts,
)


def push_down_filters(expr: Expr) -> Expr:
    """Return an equivalent tree with every conjunct pushed maximally down."""
    return _push(expr, [])


def _push(expr: Expr, pending: list[Predicate]) -> Expr:
    """Push ``pending`` predicates (collected from above) into ``expr``."""
    if isinstance(expr, Filter):
        return _push(expr.child, pending + conjuncts(expr.predicate))

    if isinstance(expr, Join):
        left_aliases = expr.left.aliases()
        right_aliases = expr.right.aliases()
        to_left: list[Predicate] = []
        to_right: list[Predicate] = []
        stay: list[Predicate] = []
        for predicate in pending:
            refs = predicate.references()
            if refs <= left_aliases:
                to_left.append(predicate)
            elif refs <= right_aliases:
                to_right.append(predicate)
            else:
                stay.append(predicate)
        rebuilt: Expr = Join(
            _push(expr.left, to_left),
            _push(expr.right, to_right),
            expr.conditions,
        )
        return _wrap(rebuilt, stay)

    if isinstance(expr, (GroupBy, OrderBy, Project)):
        # Not pushed through aggregation/ordering boundaries: conservative
        # and sufficient (our workloads place filters below these anyway).
        child = _push(expr.children()[0], [])
        return _wrap(expr.with_children((child,)), pending)

    if isinstance(expr, Scan):
        return _wrap(expr, pending)

    # Unknown node kinds: push into children independently, keep pending here.
    children = tuple(_push(child, []) for child in expr.children())
    return _wrap(expr.with_children(children), pending)


def _wrap(expr: Expr, predicates: list[Predicate]) -> Expr:
    """Stack filters above ``expr``, one per predicate (deterministic order)."""
    wrapped = expr
    for predicate in predicates:
        wrapped = Filter(wrapped, predicate)
    return wrapped


def substitute_scan(expr: Expr, table: str, replacement: str) -> Expr:
    """Return a tree with every ``Scan`` of ``table`` retargeted.

    Used by incremental maintenance to derive a *delta plan* from a
    standing query's spec: the scan of the changed base table is pointed
    at the change batch's delta file (same alias, so every predicate,
    join condition, and downstream reference survives untouched), while
    scans of the unchanged tables keep reading the full base data.
    """
    if isinstance(expr, Scan):
        if expr.table == table:
            return Scan(replacement, expr.alias)
        return expr
    children = tuple(
        substitute_scan(child, table, replacement)
        for child in expr.children()
    )
    return expr.with_children(children)


def merge_adjacent_filters(expr: Expr) -> Expr:
    """Normalize stacked filters into a single conjunction (for comparison)."""
    children = tuple(merge_adjacent_filters(child) for child in expr.children())
    rebuilt = expr.with_children(children)
    if isinstance(rebuilt, Filter) and isinstance(rebuilt.child, Filter):
        inner = rebuilt.child
        return Filter(
            inner.child,
            conjunction(conjuncts(rebuilt.predicate)
                        + conjuncts(inner.predicate)),
        )
    return rebuilt


def local_predicates_of(expr: Expr) -> dict[str, list[Predicate]]:
    """alias -> local predicates sitting directly above its scan."""
    collected: dict[str, list[Predicate]] = {}

    def visit(node: Expr, filters_above: list[Predicate]) -> None:
        if isinstance(node, Filter):
            visit(node.child, filters_above + conjuncts(node.predicate))
            return
        if isinstance(node, Scan):
            local = [
                predicate for predicate in filters_above
                if predicate.references() <= {node.alias}
            ]
            if local:
                collected.setdefault(node.alias, []).extend(local)
            return
        for child in node.children():
            visit(child, [])

    visit(expr, [])
    return collected
