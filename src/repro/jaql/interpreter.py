"""Reference interpreter: single-process evaluation of a query tree.

This is the correctness oracle. It evaluates the same expression AST the
distributed path compiles, using straightforward hash joins and in-memory
grouping, so tests can assert that the MapReduce execution of *any* plan the
optimizer produces returns exactly the rows this interpreter returns
(ignoring order).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.data.table import Row, Table
from repro.errors import PlanError
from repro.jaql.expr import (
    Expr,
    Filter,
    GroupBy,
    Join,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    qualify_row,
)


def order_key(value: Any) -> tuple:
    """Type-ranked sort key making mixed None/number/string values sortable."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, (list, tuple)):
        return (4, tuple(order_key(item) for item in value))
    return (5, repr(value))


class Interpreter:
    """Evaluates expressions against an in-memory table catalog."""

    def __init__(self, tables: dict[str, Table]):
        self.tables = tables

    def run(self, spec: QuerySpec) -> list[Row]:
        return self.evaluate(spec.root)

    def evaluate(self, expr: Expr) -> list[Row]:
        if isinstance(expr, Scan):
            return self._scan(expr)
        if isinstance(expr, Filter):
            rows = self.evaluate(expr.child)
            return [row for row in rows if expr.predicate.evaluate(row)]
        if isinstance(expr, Join):
            return self._join(expr)
        if isinstance(expr, GroupBy):
            return self._group(expr)
        if isinstance(expr, OrderBy):
            return self._order(expr)
        if isinstance(expr, Project):
            rows = self.evaluate(expr.child)
            return [expr.project_row(row) for row in rows]
        raise PlanError(f"interpreter cannot evaluate {type(expr).__name__}")

    # -- operators ---------------------------------------------------------------

    def _scan(self, expr: Scan) -> list[Row]:
        try:
            table = self.tables[expr.table]
        except KeyError:
            raise PlanError(f"unknown table: {expr.table!r}") from None
        return [qualify_row(expr.alias, row) for row in table.rows]

    def _join(self, expr: Join) -> list[Row]:
        left_rows = self.evaluate(expr.left)
        right_rows = self.evaluate(expr.right)
        left_aliases = expr.left.aliases()
        right_aliases = expr.right.aliases()
        left_refs = [c.side_for(left_aliases) for c in expr.conditions]
        right_refs = [c.side_for(right_aliases) for c in expr.conditions]

        index: dict[tuple, list[Row]] = defaultdict(list)
        for row in right_rows:
            key = tuple(ref.evaluate(row) for ref in right_refs)
            if any(part is None for part in key):
                continue
            index[key].append(row)

        joined: list[Row] = []
        for row in left_rows:
            key = tuple(ref.evaluate(row) for ref in left_refs)
            if any(part is None for part in key):
                continue
            for match in index.get(key, ()):
                joined.append({**row, **match})
        return joined

    def _group(self, expr: GroupBy) -> list[Row]:
        rows = self.evaluate(expr.child)
        groups: dict[tuple, list[Row]] = defaultdict(list)
        for row in rows:
            key = tuple(ref.evaluate(row) for ref in expr.keys)
            groups[key].append(row)

        output: list[Row] = []
        for key, members in groups.items():
            out: Row = {
                ref.qualified: part for ref, part in zip(expr.keys, key)
            }
            for aggregate in expr.aggregates:
                state = aggregate.initial()
                for row in members:
                    state = aggregate.step(state, row)
                out[aggregate.output_name] = aggregate.final(state)
            output.append(out)
        return output

    def _order(self, expr: OrderBy) -> list[Row]:
        rows = self.evaluate(expr.child)
        ordered = sorted(
            rows,
            key=lambda row: tuple(
                order_key(ref.evaluate(row)) for ref in expr.keys
            ),
            reverse=expr.descending,
        )
        if expr.limit is not None:
            ordered = ordered[:expr.limit]
        return ordered
