"""Result validation against the reference interpreter.

The distributed path (optimizer → compiler → simulated cluster) and the
single-process interpreter implement the same query semantics; this module
packages the comparison the test suite uses so downstream users can verify
their own workloads the same way::

    from repro import Dyno, generate_tpch
    from repro.validation import verify_workload

    dyno = Dyno(generate_tpch(0.1).tables, udfs=my_workload.udfs)
    report = verify_workload(dyno, my_workload.final_spec)
    assert report.matches, report.describe()

Floats are compared with a tolerance because distributed aggregation sums
in a different order than the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.table import Row, Table
from repro.jaql.expr import QuerySpec
from repro.jaql.interpreter import Interpreter
from repro.jaql.rewrites import push_down_filters


def interpret(tables: dict[str, Table],
              spec: QuerySpec) -> list[Row]:
    """Oracle evaluation of a query over in-memory tables."""
    pushed = QuerySpec(spec.name, push_down_filters(spec.root))
    return Interpreter(tables).run(pushed)


def canonical_rows(rows: list[Row], float_places: int = 4) -> list[tuple]:
    """Order-insensitive, float-tolerant canonical form of a row set."""

    def canonical(value: Any):
        if isinstance(value, float):
            return round(value, float_places)
        if isinstance(value, list):
            return tuple(canonical(item) for item in value)
        if isinstance(value, dict):
            return tuple(sorted(
                (key, canonical(item)) for key, item in value.items()
            ))
        return value

    return sorted(
        tuple(sorted((key, canonical(value)) for key, value in row.items()))
        for row in rows
    )


@dataclass
class VerificationReport:
    """Outcome of comparing a distributed execution to the oracle."""

    matches: bool
    executed_rows: int
    expected_rows: int
    missing: list[tuple] = field(default_factory=list)
    unexpected: list[tuple] = field(default_factory=list)

    def describe(self, limit: int = 5) -> str:
        if self.matches:
            return f"OK: {self.executed_rows} rows match the oracle"
        lines = [
            f"MISMATCH: executed {self.executed_rows} rows, "
            f"oracle {self.expected_rows}",
        ]
        for label, rows in (("missing", self.missing),
                            ("unexpected", self.unexpected)):
            for row in rows[:limit]:
                lines.append(f"  {label}: {row}")
            if len(rows) > limit:
                lines.append(f"  ... {len(rows) - limit} more {label}")
        return "\n".join(lines)


def compare_rows(actual: list[Row], expected: list[Row],
                 float_places: int = 4) -> VerificationReport:
    """Multiset comparison with float tolerance."""
    canon_actual = canonical_rows(actual, float_places)
    canon_expected = canonical_rows(expected, float_places)
    if canon_actual == canon_expected:
        return VerificationReport(True, len(actual), len(expected))

    from collections import Counter

    actual_counts = Counter(canon_actual)
    expected_counts = Counter(canon_expected)
    missing = list((expected_counts - actual_counts).elements())
    unexpected = list((actual_counts - expected_counts).elements())
    return VerificationReport(False, len(actual), len(expected),
                              missing, unexpected)


def verify_workload(dyno, query: QuerySpec | str,
                    float_places: int = 4,
                    **execute_kwargs) -> VerificationReport:
    """Execute ``query`` through DYNO and compare with the oracle.

    Order-sensitive stages are compared order-insensitively (LIMIT queries
    may legitimately tie-break differently); use a dedicated check when
    exact ordering matters.
    """
    spec = dyno.parse(query) if isinstance(query, str) else query
    execution = dyno.execute(spec, **execute_kwargs)
    expected = interpret(dyno.tables, spec)
    if _has_limit(spec):
        # A LIMIT can cut ties differently; compare cardinality only.
        matches = len(execution.rows) == len(expected)
        return VerificationReport(matches, len(execution.rows),
                                  len(expected))
    return compare_rows(execution.rows, expected, float_places)


def _has_limit(spec: QuerySpec) -> bool:
    from repro.jaql.expr import OrderBy, walk

    return any(
        isinstance(node, OrderBy) and node.limit is not None
        for node in walk(spec.root)
    )
