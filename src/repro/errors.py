"""Exception hierarchy for the DYNO reproduction.

Every error raised by the library derives from :class:`DynoError`, so callers
can catch a single base class. The more specific subclasses mirror the
failure modes the paper discusses (e.g. a broadcast join whose build side
overflows memory aborts the query, because Jaql's broadcast join does not
spill to disk -- see Section 2.2.1 of the paper).
"""

from __future__ import annotations


class DynoError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(DynoError):
    """A row or expression does not conform to the declared schema."""


class StorageError(DynoError):
    """DFS-level failure: unknown file, duplicate file, bad split."""


class JobError(DynoError):
    """A MapReduce job failed during (simulated) execution."""


class BroadcastBuildOverflowError(JobError):
    """The build side of a broadcast join did not fit in task memory.

    Jaql's broadcast join has no spill path, so this aborts the whole query
    (paper, Section 2.2.1). The optimizer exists precisely to avoid plans
    that can hit this error.
    """

    def __init__(self, build_bytes: int, memory_budget: int,
                 job_name: str = "", build_description: str = ""):
        self.build_bytes = build_bytes
        self.memory_budget = memory_budget
        self.job_name = job_name
        self.build_description = build_description
        detail = f" in job {job_name!r}" if job_name else ""
        builds = f" (builds: {build_description})" if build_description else ""
        super().__init__(
            f"broadcast build side is {build_bytes} bytes but task memory "
            f"budget is {memory_budget} bytes{detail}{builds}; "
            f"Jaql cannot spill"
        )


class TaskRetriesExhaustedError(JobError):
    """A task failed more often than ``max_task_attempts`` allows.

    Hadoop kills the whole job once any task burns through its attempt
    budget (mapred.map.max.attempts, default 4). The driver may retry the
    job or -- in a dynamic run -- replan around it; see
    :meth:`repro.core.dynopt.DynoptExecutor`.
    """

    def __init__(self, job_name: str, attempts: int, detail: str = ""):
        self.job_name = job_name
        self.attempts = attempts
        self.detail = detail
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"job {job_name!r} failed: a task exhausted all "
            f"{attempts} attempt(s){extra}"
        )


class JobFaultInjectedError(JobError):
    """A whole-job fault fired at a map/reduce/finalize boundary.

    Transient by construction (a :class:`repro.cluster.faults.FaultPlan`
    budgets how often it fires per job), so the runtime retries the job
    with backoff rather than surfacing it to the user.
    """

    def __init__(self, job_name: str, boundary: str, incarnation: int = 1):
        self.job_name = job_name
        self.boundary = boundary
        self.incarnation = incarnation
        super().__init__(
            f"injected fault: job {job_name!r} (attempt {incarnation}) "
            f"failed at the {boundary} boundary"
        )


class FaultPlanError(DynoError):
    """A fault plan is malformed (bad rates, unknown keys, bad JSON)."""


class ParseError(DynoError):
    """The SQL-dialect parser rejected the input query text."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class PlanError(DynoError):
    """An invalid logical or physical plan was constructed or requested."""


class OptimizerError(DynoError):
    """The cost-based optimizer could not produce a plan."""


class UnsupportedQueryError(OptimizerError):
    """The query shape is outside what the optimizer supports.

    The paper excludes TPC-H Q5 for exactly this reason (cyclic join
    conditions); we raise this error rather than silently mis-planning.
    """


class StatisticsError(DynoError):
    """Statistics are missing, malformed, or cannot be merged."""


class CoordinationError(DynoError):
    """The coordination service (ZooKeeper stand-in) was misused."""
