"""Time-model calibration report.

Prints the derived ratios that carry every experimental result (DESIGN.md
Section 2, docs/architecture.md Section 2) and checks them against the
regime of the paper's cluster. Run after changing any
:class:`~repro.config.ClusterConfig` rate to see what moved::

    python -m repro.bench.calibration
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.config import DEFAULT_CONFIG, ClusterConfig


@dataclass(frozen=True)
class CalibrationRatios:
    """The scale-free quantities the experiments depend on."""

    #: one split scan relative to job startup (paper: same order).
    split_scan_vs_startup: float
    #: shuffle cost per byte relative to a read (paper: the expensive path).
    shuffle_vs_read: float
    #: broadcast build re-read per byte relative to a read (page cache).
    broadcast_vs_read: float
    #: broadcast memory budget in blocks (paper: a handful of blocks).
    memory_in_blocks: float
    #: map slots per worker node.
    map_slots_per_node: int

    def in_paper_regime(self) -> list[str]:
        """Violations of the calibrated regime (empty = all good)."""
        problems = []
        if not 0.2 <= self.split_scan_vs_startup <= 5.0:
            problems.append(
                "split scan and job startup should be the same order "
                f"(ratio {self.split_scan_vs_startup:.2f})"
            )
        if not 1.0 < self.shuffle_vs_read <= 8.0:
            problems.append(
                "shuffle must cost more than a read, but not absurdly "
                f"(ratio {self.shuffle_vs_read:.2f})"
            )
        if not self.broadcast_vs_read < 1.0:
            problems.append(
                "broadcast re-reads should be cheaper than cold reads "
                f"(ratio {self.broadcast_vs_read:.2f})"
            )
        if not 2 <= self.memory_in_blocks <= 64:
            problems.append(
                "task memory should hold a handful of blocks "
                f"({self.memory_in_blocks:.1f})"
            )
        return problems


def derive_ratios(cluster: ClusterConfig) -> CalibrationRatios:
    split_seconds = (cluster.block_size_bytes
                     / cluster.read_bytes_per_second)
    return CalibrationRatios(
        split_scan_vs_startup=split_seconds / cluster.job_startup_seconds,
        shuffle_vs_read=(cluster.read_bytes_per_second
                         / cluster.shuffle_bytes_per_second),
        broadcast_vs_read=(cluster.read_bytes_per_second
                           / cluster.broadcast_read_bytes_per_second),
        memory_in_blocks=(cluster.task_memory_bytes
                          / cluster.block_size_bytes),
        map_slots_per_node=cluster.map_slots_per_node,
    )


def report(cluster: ClusterConfig = DEFAULT_CONFIG.cluster) -> str:
    ratios = derive_ratios(cluster)
    lines = [
        "== time-model calibration ==",
        f"split scan / job startup : {ratios.split_scan_vs_startup:8.2f}",
        f"shuffle cost / read cost : {ratios.shuffle_vs_read:8.2f}",
        f"broadcast / read cost    : {ratios.broadcast_vs_read:8.2f}",
        f"task memory (blocks)     : {ratios.memory_in_blocks:8.1f}",
        f"map slots per node       : {ratios.map_slots_per_node:8d}",
    ]
    problems = ratios.in_paper_regime()
    if problems:
        lines.append("regime violations:")
        lines.extend(f"  ! {problem}" for problem in problems)
    else:
        lines.append("all ratios inside the paper's regime")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - module entry
    print(report())
    sys.exit(0)
