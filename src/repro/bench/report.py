"""Combined experiment report generator.

``python -m repro.bench.report`` runs every experiment of
:mod:`repro.bench.experiments` and writes one markdown document (default
``benchmarks/results/REPORT.md``) with every table, the plan printouts,
and the run's configuration fingerprint -- the artifact to diff against
EXPERIMENTS.md after changing the system.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.bench import experiments
from repro.bench.harness import ExperimentTable
from repro.config import DEFAULT_CONFIG, DynoConfig


def _as_markdown_table(table: ExperimentTable) -> str:
    lines = [f"### {table.experiment_id}: {table.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in table.columns) + " |")
    lines.append("|" + "---|" * len(table.columns))
    for row in table.rows:
        rendered = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        lines.append("| " + " | ".join(rendered) + " |")
    for note in table.notes:
        lines.append(f"\n> {note}")
    return "\n".join(lines)


def _config_fingerprint(config: DynoConfig) -> str:
    lines = ["### Configuration", "", "```"]
    for section in ("cluster", "optimizer", "pilot"):
        values = asdict(getattr(config, section))
        lines.append(f"[{section}]")
        for key, value in sorted(values.items()):
            lines.append(f"  {key} = {value}")
    lines.append(f"backend = {config.backend}")
    lines.append("```")
    return "\n".join(lines)


#: (section title, experiment callable, renderer)
EXPERIMENT_SEQUENCE = (
    ("Table 1", experiments.table1_pilr, _as_markdown_table),
    ("Figure 2", experiments.figure2_plan_evolution,
     lambda ev: "```\n" + ev.format() + "\n```"),
    ("Figure 3 (plans)", experiments.figure3_q9_plans,
     lambda ev: "```\n" + ev.format() + "\n```"),
    ("Figure 3 (methods)", experiments.figure3_method_counts,
     _as_markdown_table),
    ("Figure 4", experiments.figure4_overhead, _as_markdown_table),
    ("Figure 5", experiments.figure5_strategies, _as_markdown_table),
    ("Figure 6", experiments.figure6_udf_selectivity, _as_markdown_table),
    ("Figure 7", experiments.figure7_query_times, _as_markdown_table),
    ("Figure 8", experiments.figure8_hive, _as_markdown_table),
)


def generate_report(config: DynoConfig = DEFAULT_CONFIG,
                    only: set[str] | None = None,
                    progress=None) -> str:
    """Run the experiments and return the markdown report text."""
    sections = [
        "# DYNO reproduction -- experiment report",
        "",
        "All times are simulated cluster seconds; every table is "
        "normalized as in the paper (see EXPERIMENTS.md for the "
        "paper-vs-measured discussion).",
        "",
        _config_fingerprint(config),
    ]
    for title, runner, renderer in EXPERIMENT_SEQUENCE:
        if only is not None and title not in only:
            continue
        started = time.perf_counter()
        if progress is not None:
            print(f"running {title} ...", file=progress, flush=True)
        result = runner(config)
        sections.append("")
        sections.append(renderer(result))
        if progress is not None:
            print(f"  done in {time.perf_counter() - started:.1f}s wall",
                  file=progress, flush=True)
    return "\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="Regenerate every paper table/figure into one "
                    "markdown report.",
    )
    parser.add_argument(
        "--output",
        default=str(Path("benchmarks") / "results" / "REPORT.md"),
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="experiment titles to include (e.g. 'Table 1' 'Figure 6')",
    )
    args = parser.parse_args(argv)
    report = generate_report(
        only=set(args.only) if args.only else None,
        progress=sys.stderr,
    )
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
