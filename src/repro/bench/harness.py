"""Experiment harness: run the paper's plan variants and format results.

Provides the four execution-plan variants of Section 6.1 behind a single
entry point, :func:`run_workload`:

* ``DYNOPT`` -- pilot runs + online statistics + re-optimization,
* ``DYNOPT-SIMPLE`` -- pilot runs + one-shot optimization,
* ``RELOPT`` -- the shared-nothing relational optimizer baseline,
* ``BESTSTATICJAQL`` / ``BESTSTATICHIVE`` -- the best hand-written
  left-deep plan under stock Jaql/Hive semantics.

Reported seconds are simulated cluster time: DYNO variants include their
own overheads (pilot runs, optimizer calls, statistics collection), the
baselines report plan execution only -- matching how the paper measures
each variant. Results tables render in the normalized style of the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.baselines import (
    jaql_file_size_stats,
    oracle_leaf_stats,
    rank_orders_by_oracle,
    relopt_leaf_stats,
)
from repro.core.dyno import Dyno, QueryExecution, infer_schema
from repro.data.table import Table
from repro.data.tpch import PAPER_SCALE_FACTORS, TpchDataset, generate_tpch
from repro.errors import PlanError
from repro.workloads.queries import Workload

VARIANT_DYNOPT = "DYNOPT"
VARIANT_SIMPLE = "DYNOPT-SIMPLE"
VARIANT_RELOPT = "RELOPT"
VARIANT_STATIC_JAQL = "BESTSTATICJAQL"
VARIANT_STATIC_HIVE = "BESTSTATICHIVE"

ALL_VARIANTS = (VARIANT_STATIC_JAQL, VARIANT_RELOPT, VARIANT_SIMPLE,
                VARIANT_DYNOPT)

_DATASET_CACHE: dict[tuple[float, int], TpchDataset] = {}


def dataset_for(scale_factor: float, seed: int = 2014) -> TpchDataset:
    """Cached TPC-H dataset (generation dominates small experiments)."""
    key = (scale_factor, seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_tpch(scale_factor, seed)
    return _DATASET_CACHE[key]


def dataset_for_paper_sf(paper_sf: int, seed: int = 2014) -> TpchDataset:
    return dataset_for(PAPER_SCALE_FACTORS[paper_sf], seed)


@dataclass
class WorkloadRun:
    """One variant executed on one workload."""

    workload: str
    variant: str
    seconds: float
    rows: list[dict[str, Any]] = field(default_factory=list)
    executions: list[QueryExecution] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def pilot_seconds(self) -> float:
        return sum(ex.pilot_seconds for ex in self.executions)

    @property
    def optimizer_seconds(self) -> float:
        return sum(ex.optimizer_seconds for ex in self.executions)

    @property
    def execution_seconds(self) -> float:
        return sum(ex.execution_seconds for ex in self.executions)


def run_workload(
    tables: dict[str, Table],
    workload: Workload,
    variant: str,
    config: DynoConfig = DEFAULT_CONFIG,
    dynopt_strategy: str = "UNC-1",
    simple_strategy: str = "SIMPLE_MO",
    static_top_k: int = 3,
    pilot_mode: str = "MT",
    collect_column_stats: bool = True,
    run_pilots: bool = True,
    leaf_stats_fn: Callable | None = None,
) -> WorkloadRun:
    """Execute ``workload`` under one plan variant; see module docstring."""
    if variant == VARIANT_DYNOPT:
        return _run_dyno_variant(
            tables, workload, config, mode="dynopt",
            strategy=dynopt_strategy, pilot_mode=pilot_mode,
            collect_column_stats=collect_column_stats,
            run_pilots=run_pilots, leaf_stats_fn=leaf_stats_fn,
            variant=variant,
        )
    if variant == VARIANT_SIMPLE:
        return _run_dyno_variant(
            tables, workload, config, mode="simple",
            strategy=simple_strategy, pilot_mode=pilot_mode,
            collect_column_stats=collect_column_stats,
            run_pilots=run_pilots, leaf_stats_fn=leaf_stats_fn,
            variant=variant,
        )
    if variant == VARIANT_RELOPT:
        return _run_relopt(tables, workload, config)
    if variant == VARIANT_STATIC_JAQL:
        return _run_best_static(tables, workload, config, static_top_k)
    if variant == VARIANT_STATIC_HIVE:
        return _run_best_static(tables, workload,
                                config.with_backend("hive"), static_top_k)
    raise PlanError(f"unknown variant {variant!r}")


# ---------------------------------------------------------------------------
# variant runners
# ---------------------------------------------------------------------------


def _run_dyno_variant(tables, workload: Workload, config: DynoConfig,
                      mode: str, strategy: str, pilot_mode: str,
                      collect_column_stats: bool, run_pilots: bool,
                      leaf_stats_fn, variant: str) -> WorkloadRun:
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    executions: list[QueryExecution] = []
    rows: list[dict[str, Any]] = []
    for position, (spec, output_name) in enumerate(workload.stages):
        override = None
        if leaf_stats_fn is not None:
            extracted = dyno.prepare(spec, name=f"stage{position}")
            override = leaf_stats_fn(dyno.tables, extracted.block)
        execution = dyno.execute(
            spec, mode=mode, strategy=strategy, pilot_mode=pilot_mode,
            run_pilots=run_pilots and leaf_stats_fn is None,
            collect_column_stats=collect_column_stats,
            leaf_stats_override=override,
            name=f"stage{position}",
        )
        executions.append(execution)
        if output_name is not None:
            dyno.register_table(
                output_name,
                Table(output_name, infer_schema(execution.rows),
                      execution.rows),
            )
        else:
            rows = execution.rows
    seconds = sum(ex.total_seconds for ex in executions)
    return WorkloadRun(workload.name, variant, seconds, rows, executions,
                       details={"mode": mode, "strategy": strategy})


def _run_relopt(tables, workload: Workload,
                config: DynoConfig) -> WorkloadRun:
    """DBMS-X: statistics gathered up front, plan hand-coded and executed.

    Only plan execution time is reported (the paper obtains the plan from
    DBMS-X offline and replays it in Jaql). DBMS-X plans with the
    conservative broadcast margin of a production optimizer."""
    from dataclasses import replace

    from repro.core.baselines import relopt_optimizer_config

    relopt_config = replace(config, optimizer=relopt_optimizer_config(config))
    dyno = Dyno(tables, config=relopt_config, udfs=workload.udfs)
    executions: list[QueryExecution] = []
    rows: list[dict[str, Any]] = []
    plans = []
    for position, (spec, output_name) in enumerate(workload.stages):
        extracted = dyno.prepare(spec, name=f"stage{position}")
        override = relopt_leaf_stats(dyno.tables, extracted.block)
        execution = dyno.execute(
            spec, mode="simple", strategy="SIMPLE_MO", run_pilots=False,
            leaf_stats_override=override, name=f"stage{position}",
        )
        executions.append(execution)
        plans.extend(execution.plans)
        if output_name is not None:
            dyno.register_table(
                output_name,
                Table(output_name, infer_schema(execution.rows),
                      execution.rows),
            )
        else:
            rows = execution.rows
    seconds = sum(ex.execution_seconds for ex in executions)
    return WorkloadRun(workload.name, VARIANT_RELOPT, seconds, rows,
                       executions, details={"plans": plans})


def _run_best_static(tables, workload: Workload, config: DynoConfig,
                     top_k: int) -> WorkloadRun:
    """Best hand-written left-deep plan: enumerate, rank, execute top-k."""
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    executions: list[QueryExecution] = []
    rows: list[dict[str, Any]] = []
    total_seconds = 0.0
    chosen_orders: list[tuple[int, ...]] = []
    for position, (spec, output_name) in enumerate(workload.stages):
        extracted = dyno.prepare(spec, name=f"stage{position}")
        block = extracted.block
        jaql_stats = jaql_file_size_stats(dyno.tables, block)
        oracle_stats = oracle_leaf_stats(dyno.tables, block)
        file_sizes = {
            leaf.source_name: dyno.dfs.file_size(leaf.source_name)
            for leaf in block.base_leaves()
        }
        ranked = rank_orders_by_oracle(block, jaql_stats, oracle_stats,
                                       file_sizes, config)
        best_execution: QueryExecution | None = None
        best_order: tuple[int, ...] | None = None
        for candidate in ranked[:max(1, top_k)]:
            execution = dyno.execute_with_plan(
                spec, candidate.plan, name=f"stage{position}"
            )
            if (best_execution is None
                    or execution.execution_seconds
                    < best_execution.execution_seconds):
                best_execution = execution
                best_order = candidate.order
        assert best_execution is not None and best_order is not None
        executions.append(best_execution)
        chosen_orders.append(best_order)
        total_seconds += best_execution.execution_seconds
        if output_name is not None:
            dyno.register_table(
                output_name,
                Table(output_name, infer_schema(best_execution.rows),
                      best_execution.rows),
            )
        else:
            rows = best_execution.rows
    variant = (VARIANT_STATIC_HIVE if config.backend == "hive"
               else VARIANT_STATIC_JAQL)
    return WorkloadRun(workload.name, variant, total_seconds, rows,
                       executions,
                       details={"orders": chosen_orders,
                                "candidates_ranked": len(ranked)})


# ---------------------------------------------------------------------------
# result formatting
# ---------------------------------------------------------------------------


@dataclass
class ExperimentTable:
    """A rendered experiment: id, caption, column labels and value rows."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        widths = [len(str(column)) for column in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [_format_cell(cell) for cell in row]
            rendered_rows.append(rendered)
            for index, cell in enumerate(rendered):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = " | ".join(
            str(column).ljust(widths[index])
            for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for rendered in rendered_rows:
            lines.append(" | ".join(
                cell.ljust(widths[index])
                for index, cell in enumerate(rendered)
            ))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def normalized(value: float, baseline: float) -> float:
    """value / baseline as the paper's 'relative execution time' (1.0=100%)."""
    if baseline <= 0:
        return float("inf")
    return value / baseline
