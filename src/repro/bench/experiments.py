"""One experiment per table/figure of the paper's evaluation (Section 6).

Each ``table1``/``figure2``/... function reproduces the corresponding
result as an :class:`ExperimentTable` whose rows mirror what the paper
plots. Absolute times are simulated seconds; every experiment reports the
same *normalized* quantities as the paper (see EXPERIMENTS.md for the
paper-vs-measured comparison).

The experiments run on the scaled-down TPC-H datasets; the paper's scale
factors 100/300/1000 map to generator scale factors with the same 1:3:10
ratio (:data:`repro.data.tpch.PAPER_SCALE_FACTORS`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import (
    ALL_VARIANTS,
    VARIANT_DYNOPT,
    VARIANT_RELOPT,
    VARIANT_SIMPLE,
    VARIANT_STATIC_HIVE,
    VARIANT_STATIC_JAQL,
    ExperimentTable,
    dataset_for_paper_sf,
    normalized,
    run_workload,
)
from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.core.baselines import relopt_leaf_stats
from repro.core.dyno import Dyno
from repro.core.pilot import PILR_MT, PILR_ST
from repro.optimizer.plans import render_plan, summarize_plan
from repro.optimizer.search import JoinOptimizer
from repro.workloads.queries import (
    Workload,
    q2,
    q7,
    q8_prime,
    q9_prime,
    q10,
)

#: Figure 6 sweep: the paper's 0.01% .. 100% UDF selectivities.
FIGURE6_SELECTIVITIES = (0.0001, 0.001, 0.01, 0.1, 1.0)


# ---------------------------------------------------------------------------
# Table 1: PILR_ST vs PILR_MT
# ---------------------------------------------------------------------------


def _pilot_only_seconds(tables, workload: Workload, mode: str,
                        config: DynoConfig = DEFAULT_CONFIG) -> float:
    """Simulated time of the pilot phase alone for every block."""
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    total = 0.0
    for position, (spec, output_name) in enumerate(workload.stages):
        extracted = dyno.prepare(spec, name=f"stage{position}")
        report = dyno.executor.pilot_runner.run(
            extracted.block, mode=mode, reuse_statistics=False
        )
        total += report.simulated_seconds
        if output_name is not None:
            # Later blocks scan the intermediate; for pilot timing purposes
            # the base-table pilots dominate, so we execute the stage to
            # make the intermediate available.
            execution = dyno.execute(spec, mode="simple", run_pilots=False,
                                     name=f"stage{position}x")
            from repro.core.dyno import infer_schema
            from repro.data.table import Table

            dyno.register_table(
                output_name,
                Table(output_name, infer_schema(execution.rows),
                      execution.rows),
            )
    return total


def table1_pilr(config: DynoConfig = DEFAULT_CONFIG) -> ExperimentTable:
    """Table 1: relative PILR time, ST at SF100 vs MT at SF100/300/1000."""
    workloads = [q2(), q8_prime(), q9_prime(), q10()]
    columns = ["Query", "SF100-ST", "SF100-MT", "SF300-MT", "SF1000-MT"]
    rows = []
    for workload in workloads:
        baseline = _pilot_only_seconds(
            dataset_for_paper_sf(100).tables, workload, PILR_ST, config
        )
        row: list = [workload.name, "100%"]
        for paper_sf in (100, 300, 1000):
            seconds = _pilot_only_seconds(
                dataset_for_paper_sf(paper_sf).tables, workload, PILR_MT,
                config,
            )
            row.append(f"{100 * normalized(seconds, baseline):.1f}%")
        rows.append(row)
    return ExperimentTable(
        "Table 1",
        "Relative execution time of PILR for varying queries and scale "
        "factors (normalized to PILR_ST at SF=100)",
        columns, rows,
        notes=["paper: MT is 16%-28% of ST and independent of the scale "
               "factor (4.6x average speedup)"],
    )


# ---------------------------------------------------------------------------
# Figures 2 and 3: plan printouts
# ---------------------------------------------------------------------------


@dataclass
class PlanEvolution:
    """Captured plans for the Figure 2/3 style printouts."""

    query: str
    relopt_plan: str
    dyno_plans: list[str] = field(default_factory=list)
    signatures: list[str] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"=== {self.query}: plan by traditional optimizer ===",
                 self.relopt_plan]
        for index, plan in enumerate(self.dyno_plans, start=1):
            lines.append(f"=== {self.query}: DYNO plan{index} ===")
            lines.append(plan)
        return "\n".join(lines)


def _relopt_plan_text(tables, workload: Workload,
                      config: DynoConfig) -> str:
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    extracted = dyno.prepare(workload.final_spec)
    stats = relopt_leaf_stats(dyno.tables, extracted.block)
    plan = JoinOptimizer(extracted.block, stats,
                         config.optimizer).optimize().plan
    return render_plan(plan)


def figure2_plan_evolution(
    config: DynoConfig = DEFAULT_CONFIG,
) -> PlanEvolution:
    """Figure 2: Q8' plans -- RELOPT plan and DYNO's evolving plans."""
    workload = q8_prime()
    tables = dataset_for_paper_sf(300).tables
    relopt_text = _relopt_plan_text(tables, workload, config)
    run = run_workload(tables, workload, VARIANT_DYNOPT, config)
    block_result = run.executions[0].block_results[0]
    return PlanEvolution(
        "Q8'",
        relopt_text,
        [record.plan_text for record in block_result.iterations],
        [record.plan_signature for record in block_result.iterations],
    )


def figure3_q9_plans(config: DynoConfig = DEFAULT_CONFIG) -> PlanEvolution:
    """Figure 3: Q9' -- RELOPT's all-repartition plan vs DYNO's plan after
    pilot runs (broadcast joins throughout)."""
    workload = q9_prime()
    tables = dataset_for_paper_sf(300).tables
    relopt_text = _relopt_plan_text(tables, workload, config)
    run = run_workload(tables, workload, VARIANT_SIMPLE, config)
    block_result = run.executions[0].block_results[0]
    return PlanEvolution(
        "Q9'",
        relopt_text,
        [record.plan_text for record in block_result.iterations[:1]],
        [record.plan_signature for record in block_result.iterations[:1]],
    )


def figure3_method_counts(
    config: DynoConfig = DEFAULT_CONFIG,
) -> ExperimentTable:
    """Join-method census for Figure 3 (repartition vs broadcast counts)."""
    workload = q9_prime()
    tables = dataset_for_paper_sf(300).tables
    dyno = Dyno(tables, config=config, udfs=workload.udfs)
    extracted = dyno.prepare(workload.final_spec)

    relopt_stats = relopt_leaf_stats(dyno.tables, extracted.block)
    relopt = JoinOptimizer(extracted.block, relopt_stats,
                           config.optimizer).optimize().plan
    relopt_summary = summarize_plan(relopt)

    run = run_workload(tables, workload, VARIANT_SIMPLE, config)
    dyno_plan = run.executions[0].block_results[0].plans[0]
    dyno_summary = summarize_plan(dyno_plan)
    return ExperimentTable(
        "Figure 3",
        "Q9' join methods: traditional optimizer vs DYNO after pilot runs",
        ["Plan", "repartition joins", "broadcast joins", "chained"],
        [
            ["RELOPT", relopt_summary.repartition_joins,
             relopt_summary.broadcast_joins, relopt_summary.chained_joins],
            ["DYNO (after pilot runs)", dyno_summary.repartition_joins,
             dyno_summary.broadcast_joins, dyno_summary.chained_joins],
        ],
        notes=["paper: RELOPT picks all repartition joins (UDF selectivity "
               "unknown); DYNO picks only broadcast joins"],
    )


# ---------------------------------------------------------------------------
# Figure 4: overhead of pilot runs, re-optimization, statistics collection
# ---------------------------------------------------------------------------


def figure4_overhead(config: DynoConfig = DEFAULT_CONFIG) -> ExperimentTable:
    """Figure 4: overhead breakdown at SF=300, normalized to execution with
    pre-collected statistics."""
    workloads = [q2(), q7(), q8_prime(), q10()]
    tables = dataset_for_paper_sf(300).tables
    columns = ["Query", "plan execution", "re-optimization", "PILR",
               "stats collection", "total overhead"]
    rows = []
    for workload in workloads:
        # Run with everything on (pilot runs + online stats collection).
        full = run_workload(tables, workload, VARIANT_DYNOPT, config)
        # Reference run: statistics already in the metastore (we re-drive
        # DYNOPT with pilot statistics reused and no column collection),
        # mirroring the paper's two-execution methodology.
        reference = run_workload(
            tables, workload, VARIANT_DYNOPT, config,
            collect_column_stats=False,
        )
        baseline = reference.execution_seconds + reference.optimizer_seconds
        # The makespan delta understates collection cost when another task
        # sits on the critical path, so the charged per-record model time
        # provides the floor.
        charged = config.cluster.stats_seconds_per_record * sum(
            record.stats_records
            for execution in full.executions
            for block_result in execution.block_results
            for record in block_result.iterations
        )
        stats_overhead = max(
            charged, full.execution_seconds - reference.execution_seconds
        )
        total_overhead = (full.pilot_seconds + full.optimizer_seconds
                          + stats_overhead)
        rows.append([
            workload.name,
            f"{100 * normalized(reference.execution_seconds, baseline):.1f}%",
            f"{100 * normalized(full.optimizer_seconds, baseline):.2f}%",
            f"{100 * normalized(full.pilot_seconds, baseline):.1f}%",
            f"{100 * normalized(stats_overhead, baseline):.1f}%",
            f"{100 * normalized(total_overhead, baseline):.1f}%",
        ])
    return ExperimentTable(
        "Figure 4",
        "Overhead of pilot runs, re-optimization and statistics collection "
        "(SF=300)",
        columns, rows,
        notes=[
            "paper: re-optimization <0.25% except Q8' (~7%, 8-way join); "
            "PILR 2.5%-6.7%; stats collection 0.1%-2.8%; total 7%-10%",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 5: execution strategies
# ---------------------------------------------------------------------------


def figure5_strategies(config: DynoConfig = DEFAULT_CONFIG) -> ExperimentTable:
    """Figure 5: DYNOPT/DYNOPT-SIMPLE execution strategies at SF=300.

    At simulation scale the default memory budget lets whole queries
    collapse into one or two chained jobs, leaving strategies nothing to
    choose between; the budget is reduced here so plans span several jobs,
    matching the job counts of the paper's cluster runs.
    """
    from dataclasses import replace

    config = replace(
        config,
        cluster=replace(config.cluster, task_memory_bytes=24 * 1024),
        optimizer=replace(config.optimizer,
                          max_broadcast_bytes=24 * 1024),
    )
    workloads = [q7(), q8_prime(), q10()]
    tables = dataset_for_paper_sf(300).tables
    strategies = [
        (VARIANT_SIMPLE, "SIMPLE_SO"),
        (VARIANT_SIMPLE, "SIMPLE_MO"),
        (VARIANT_DYNOPT, "UNC-1"),
        (VARIANT_DYNOPT, "UNC-2"),
        (VARIANT_DYNOPT, "CHEAP-1"),
        (VARIANT_DYNOPT, "CHEAP-2"),
    ]
    columns = ["Query"] + [
        name if variant == VARIANT_SIMPLE else f"DYNOPT_{name}"
        for variant, name in strategies
    ]
    rows = []
    for workload in workloads:
        measured: list[float] = []
        for variant, strategy in strategies:
            run = run_workload(
                tables, workload, variant, config,
                dynopt_strategy=strategy, simple_strategy=strategy,
            )
            measured.append(run.seconds)
        baseline = measured[0]
        rows.append(
            [workload.name]
            + [f"{100 * normalized(seconds, baseline):.1f}%"
               for seconds in measured]
        )
    return ExperimentTable(
        "Figure 5",
        "Comparison of execution strategies (normalized to "
        "DYNOPT-SIMPLE_SO, SF=300)",
        columns, rows,
        notes=[
            "paper: SIMPLE_MO always beats SIMPLE_SO; UNC-1 wins for "
            "Q7/Q8'; all strategies tie on Q10 (left-deep plan chosen)",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 6: UDF selectivity sweep on Q9'
# ---------------------------------------------------------------------------


def figure6_udf_selectivity(
    config: DynoConfig = DEFAULT_CONFIG,
) -> ExperimentTable:
    """Figure 6: Q9' runtime vs dimension-UDF selectivity, DYNOPT-SIMPLE
    normalized to RELOPT."""
    tables = dataset_for_paper_sf(300).tables
    columns = ["UDF selectivity", "RELOPT", "DYNOPT-SIMPLE",
               "speedup", "DYNO map-only jobs"]
    rows = []
    for selectivity in FIGURE6_SELECTIVITIES:
        workload = q9_prime(udf_selectivity=selectivity)
        relopt = run_workload(tables, workload, VARIANT_RELOPT, config)
        simple = run_workload(tables, workload, VARIANT_SIMPLE, config)
        map_only = _map_only_jobs(simple)
        rows.append([
            f"{selectivity * 100:g}%",
            "100%",
            f"{100 * normalized(simple.seconds, relopt.seconds):.1f}%",
            f"{normalized(relopt.seconds, simple.seconds):.2f}x",
            map_only,
        ])
    return ExperimentTable(
        "Figure 6",
        "Performance impact of UDF selectivity on Q9' (SF=300, normalized "
        "to RELOPT)",
        columns, rows,
        notes=[
            "paper: 1.78x/1.71x speedup at 0.01%/0.1% (2 map-only jobs), "
            "~1.15x at 1%/10% (3 jobs), parity at 100% (same plan)",
        ],
    )


def _map_only_jobs(run) -> int:
    count = 0
    for execution in run.executions:
        for block_result in execution.block_results:
            for record in block_result.iterations:
                count += len(record.jobs_executed)
    return count


# ---------------------------------------------------------------------------
# Figure 7: query execution times across variants and scale factors
# ---------------------------------------------------------------------------


def figure7_query_times(
    config: DynoConfig = DEFAULT_CONFIG,
    paper_sfs: tuple[int, ...] = (100, 300, 1000),
    static_top_k: int = 3,
) -> ExperimentTable:
    """Figure 7: 4 variants normalized to BESTSTATICJAQL, per SF."""
    factories = [q2, q8_prime, q9_prime, q10]
    columns = ["SF", "Query"] + list(ALL_VARIANTS)
    rows = []
    for paper_sf in paper_sfs:
        tables = dataset_for_paper_sf(paper_sf).tables
        for factory in factories:
            measured = {}
            for variant in ALL_VARIANTS:
                workload = factory()
                run = run_workload(tables, workload, variant, config,
                                   static_top_k=static_top_k)
                measured[variant] = run.seconds
            baseline = measured[VARIANT_STATIC_JAQL]
            rows.append(
                [paper_sf, factory().name]
                + [f"{100 * normalized(measured[v], baseline):.1f}%"
                   for v in ALL_VARIANTS]
            )
    return ExperimentTable(
        "Figure 7",
        "Query execution times normalized to BESTSTATICJAQL",
        columns, rows,
        notes=[
            "paper: DYNOPT/DYNOPT-SIMPLE are at least as good as the best "
            "left-deep plan everywhere and up to 2x better (Q8' SF100, "
            "Q9'); RELOPT is sometimes worse than BESTSTATICJAQL",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 8: the same plans under the Hive backend
# ---------------------------------------------------------------------------


def figure8_hive(config: DynoConfig = DEFAULT_CONFIG,
                 static_top_k: int = 3) -> ExperimentTable:
    """Figure 8: benefits of DYNO's plans in Hive (SF=300).

    The paper replays the plans in Hive 0.12 and excludes DYNO's overheads;
    we run every variant under the Hive backend and report plan execution
    time only.
    """
    hive = config.with_backend("hive")
    factories = [q2, q8_prime, q9_prime, q10]
    variants = (VARIANT_STATIC_HIVE, VARIANT_RELOPT, VARIANT_SIMPLE,
                VARIANT_DYNOPT)
    tables = dataset_for_paper_sf(300).tables
    columns = ["Query"] + list(variants)
    rows = []
    for factory in factories:
        measured = {}
        for variant in variants:
            workload = factory()
            run = run_workload(tables, workload, variant, hive,
                               static_top_k=static_top_k)
            # Execution time only ("these numbers do not include the
            # overheads of our techniques", Section 6.6).
            measured[variant] = run.execution_seconds or run.seconds
        baseline = measured[VARIANT_STATIC_HIVE]
        rows.append(
            [factory().name]
            + [f"{100 * normalized(measured[v], baseline):.1f}%"
               for v in variants]
        )
    return ExperimentTable(
        "Figure 8",
        "Benefits of applying DYNOPT in Hive (SF=300, execution time only, "
        "normalized to BESTSTATICHIVE)",
        columns, rows,
        notes=[
            "paper: same trends as Jaql; Q9' speedup grows to 3.98x because "
            "Hive's broadcast join uses the DistributedCache",
        ],
    )


# ---------------------------------------------------------------------------
# run everything
# ---------------------------------------------------------------------------


def run_all(config: DynoConfig = DEFAULT_CONFIG) -> str:
    """Run every experiment and return the combined report text."""
    sections = [
        table1_pilr(config).format(),
        figure2_plan_evolution(config).format(),
        figure3_q9_plans(config).format(),
        figure3_method_counts(config).format(),
        figure4_overhead(config).format(),
        figure5_strategies(config).format(),
        figure6_udf_selectivity(config).format(),
        figure7_query_times(config).format(),
        figure8_hive(config).format(),
    ]
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_all())
