"""DYNO: dynamically optimizing queries over large-scale data platforms.

A from-scratch Python reproduction of Karanasos et al., SIGMOD 2014. The
public API centers on three layers:

* :class:`repro.Dyno` -- the end-to-end system: load tables, execute SQL
  (or built :class:`repro.QuerySpec` trees) with pilot runs, cost-based
  join enumeration and dynamic re-optimization over a simulated
  MapReduce/HDFS cluster;
* :mod:`repro.workloads` -- the paper's TPC-H workload (Q2, Q7, Q8', Q9',
  Q10) and the scaled-down TPC-H generator;
* :mod:`repro.bench` -- one experiment per table/figure of the paper's
  evaluation section.

Quickstart::

    from repro import Dyno, generate_tpch
    from repro.workloads.queries import q10

    dataset = generate_tpch(0.25)        # paper SF=100 equivalent
    workload = q10()
    dyno = Dyno(dataset.tables, udfs=workload.udfs)
    result = dyno.execute(workload.final_spec)
    print(result.rows[:3], result.total_seconds)
"""

from repro.config import (
    DEFAULT_CONFIG,
    ClusterConfig,
    DynoConfig,
    OptimizerConfig,
    PilotConfig,
)
from repro.core.dyno import Dyno, QueryExecution
from repro.core.dynopt import BlockExecutionResult, DynoptExecutor
from repro.core.pilot import PilotReport, PilotRunner
from repro.core.strategies import STRATEGIES, ExecutionStrategy
from repro.data.schema import FieldType, Path, Schema
from repro.data.table import Table
from repro.data.tpch import TpchDataset, generate_restaurants, generate_tpch
from repro.errors import (
    BroadcastBuildOverflowError,
    DynoError,
    OptimizerError,
    ParseError,
    PlanError,
    SchemaError,
    StatisticsError,
    UnsupportedQueryError,
)
from repro.jaql.expr import QuerySpec
from repro.jaql.functions import Udf, UdfRegistry, make_selective_udf
from repro.jaql.parser import parse_query
from repro.optimizer.plans import plan_diff, render_plan, summarize_plan
from repro.optimizer.search import JoinOptimizer, OptimizationResult
from repro.stats.kmv import KMVSynopsis
from repro.stats.metastore import StatisticsMetastore
from repro.validation import VerificationReport, verify_workload
from repro.stats.statistics import ColumnStats, Histogram, TableStats

__version__ = "1.0.0"

__all__ = [
    "BlockExecutionResult",
    "BroadcastBuildOverflowError",
    "ClusterConfig",
    "ColumnStats",
    "DEFAULT_CONFIG",
    "Dyno",
    "DynoConfig",
    "DynoError",
    "DynoptExecutor",
    "ExecutionStrategy",
    "FieldType",
    "JoinOptimizer",
    "KMVSynopsis",
    "OptimizationResult",
    "OptimizerConfig",
    "OptimizerError",
    "ParseError",
    "Path",
    "PilotConfig",
    "PilotReport",
    "PilotRunner",
    "PlanError",
    "QueryExecution",
    "QuerySpec",
    "STRATEGIES",
    "Schema",
    "SchemaError",
    "StatisticsError",
    "StatisticsMetastore",
    "Table",
    "TableStats",
    "TpchDataset",
    "Udf",
    "UdfRegistry",
    "UnsupportedQueryError",
    "Histogram",
    "VerificationReport",
    "generate_restaurants",
    "generate_tpch",
    "make_selective_udf",
    "parse_query",
    "plan_diff",
    "render_plan",
    "summarize_plan",
    "verify_workload",
]
