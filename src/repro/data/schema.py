"""Schema description for semistructured (JSON-like) tables.

Jaql operates on JSON-like records where nested arrays and structs are
pervasive (paper, Section 1). The schema layer here is deliberately
lightweight: it names the fields of a record, gives each a type descriptor
used for validation and byte-size estimation, and supports nested *paths*
such as ``addr[0].zip`` (the restaurant example, Section 4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: Atomic type tags understood by the schema layer.
ATOMIC_TYPES = ("int", "float", "string", "bool", "date")

#: Approximate on-disk bytes for a serialized value of each atomic type.
#: These drive the simulator's byte accounting (average record size etc.),
#: mirroring how the paper computes ``rec_size_avg = size(Ro)/|Ro|``.
_ATOMIC_SIZES = {"int": 8, "float": 8, "string": 16, "bool": 1, "date": 10}


@dataclass(frozen=True)
class FieldType:
    """Type descriptor: atomic, ``array<elem>``, or ``struct{...}``.

    ``kind`` is one of :data:`ATOMIC_TYPES`, ``"array"`` or ``"struct"``.
    For arrays, ``element`` holds the element type; for structs, ``fields``
    maps member names to their types.
    """

    kind: str
    element: "FieldType | None" = None
    fields: tuple[tuple[str, "FieldType"], ...] = ()

    def __post_init__(self) -> None:
        if self.kind in ATOMIC_TYPES:
            return
        if self.kind == "array":
            if self.element is None:
                raise SchemaError("array type requires an element type")
        elif self.kind == "struct":
            if not self.fields:
                raise SchemaError("struct type requires at least one field")
        else:
            raise SchemaError(f"unknown type kind: {self.kind!r}")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def atomic(kind: str) -> "FieldType":
        if kind not in ATOMIC_TYPES:
            raise SchemaError(f"not an atomic type: {kind!r}")
        return FieldType(kind)

    @staticmethod
    def array(element: "FieldType") -> "FieldType":
        return FieldType("array", element=element)

    @staticmethod
    def struct(**members: "FieldType") -> "FieldType":
        return FieldType("struct", fields=tuple(members.items()))

    # -- behaviour ----------------------------------------------------------

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` conforms to this type (None allowed)."""
        if value is None:
            return True
        if self.kind == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.kind == "string" or self.kind == "date":
            return isinstance(value, str)
        if self.kind == "bool":
            return isinstance(value, bool)
        if self.kind == "array":
            assert self.element is not None
            return isinstance(value, list) and all(
                self.element.validate(item) for item in value
            )
        # struct
        if not isinstance(value, dict):
            return False
        members = dict(self.fields)
        return all(key in members and members[key].validate(item)
                   for key, item in value.items())

    def estimated_size(self, value: Any) -> int:
        """Approximate serialized byte size of ``value`` under this type."""
        if value is None:
            return 1
        if self.kind in _ATOMIC_SIZES:
            if self.kind == "string":
                return max(1, len(value))
            return _ATOMIC_SIZES[self.kind]
        if self.kind == "array":
            element = self.element
            assert element is not None
            total = 2
            for item in value:
                total += element.estimated_size(item)
            return total
        members = dict(self.fields)
        total = 2
        for key, item in value.items():
            member = members.get(key)
            if member is not None:
                total += len(key) + member.estimated_size(item)
        return total

    def describe(self) -> str:
        if self.kind in ATOMIC_TYPES:
            return self.kind
        if self.kind == "array":
            assert self.element is not None
            return f"array<{self.element.describe()}>"
        inner = ", ".join(f"{name}: {t.describe()}" for name, t in self.fields)
        return f"struct{{{inner}}}"


def estimate_value_size(value: Any) -> int:
    """Schema-free estimate of the serialized size of a JSON-like value.

    Used wherever records do not match a declared schema: shuffle traffic,
    tagged join records, and intermediate job outputs.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return max(1, len(value))
    if isinstance(value, (list, tuple)):
        total = 2
        for item in value:
            total += estimate_value_size(item)
        return total
    if isinstance(value, dict):
        total = 2
        for key, item in value.items():
            total += len(str(key)) + 2 + estimate_value_size(item)
        return total
    return 8


def estimate_dict_size(row: dict[str, Any]) -> int:
    """Schema-free size of one record dict; equals ``estimate_value_size``.

    Inlines the scalar dispatch for the four value shapes that dominate
    engine rows (int/float, str, None/bool) and only falls back to the
    recursive estimator for nested values. ``type(True) is bool`` (never
    ``int``), so the branch order cannot misclassify bools.
    """
    total = 2
    evs = estimate_value_size
    for key, item in row.items():
        kind = type(item)
        if kind is int or kind is float:
            total += len(key) + 10
        elif kind is str:
            total += len(key) + 2 + (len(item) or 1)
        elif item is None or kind is bool:
            total += len(key) + 3
        else:
            total += len(key) + 2 + evs(item)
    return total


def estimate_dict_sizes(rows: Iterable[dict[str, Any]]) -> list[int]:
    """Bulk :func:`estimate_dict_size` over a batch of record dicts."""
    size_of = estimate_dict_size
    return [size_of(row) for row in rows]


def column_values_conform(kind: str, values: Iterable[Any]) -> bool:
    """Do all ``values`` of a ``kind`` column size value-exactly?

    The per-column leg of the value-exactness scan (see
    ``DFSFile.sizes_are_value_exact``): for conforming values the schema
    sizer and :func:`estimate_value_size` agree byte for byte. Exact
    ``type`` membership is deliberate -- a bool smuggled into an int
    field sizes 8 by schema but 3 by value and must disqualify the
    column. Only meaningful for kinds admitted by
    ``Schema.sizes_value_exact_scannable``.
    """
    if not isinstance(values, list):
        values = list(values)
    observed = set(map(type, values))
    observed.discard(type(None))
    if kind == "string":
        return observed <= {str}
    if kind == "bool":
        return observed <= {bool}
    if kind == "date":
        # Schema charges a fixed 10-byte payload; value sizing charges
        # the string's length -- equal exactly for the canonical 10-char
        # ``YYYY-MM-DD`` form.
        if not observed <= {str}:
            return False
        return not any(v is not None and len(v) != 10 for v in values)
    return observed <= {int, float}


# Convenience singletons for the common atomics.
INT = FieldType.atomic("int")
FLOAT = FieldType.atomic("float")
STRING = FieldType.atomic("string")
BOOL = FieldType.atomic("bool")
DATE = FieldType.atomic("date")


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------

_PATH_TOKEN = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)|\[(\d+)\]|(\.)")


@dataclass(frozen=True)
class Path:
    """A navigation path into a record, e.g. ``addr[0].zip``.

    Steps are either field names (str) or array indexes (int). The first
    step is always a field name (the top-level attribute).
    """

    steps: tuple[str | int, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise SchemaError("empty path")
        if not isinstance(self.steps[0], str):
            raise SchemaError("path must start with a field name")

    @staticmethod
    def parse(text: str) -> "Path":
        """Parse ``a[0].b`` style path text into a :class:`Path`."""
        steps: list[str | int] = []
        pos = 0
        expecting_name = True
        while pos < len(text):
            match = _PATH_TOKEN.match(text, pos)
            if match is None:
                raise SchemaError(f"bad path syntax: {text!r} at offset {pos}")
            name, index, dot = match.groups()
            if name is not None:
                if not expecting_name:
                    raise SchemaError(f"unexpected name in path: {text!r}")
                steps.append(name)
                expecting_name = False
            elif index is not None:
                if expecting_name:
                    raise SchemaError(f"unexpected index in path: {text!r}")
                steps.append(int(index))
            else:
                assert dot is not None
                if expecting_name:
                    raise SchemaError(f"unexpected '.' in path: {text!r}")
                expecting_name = True
            pos = match.end()
        if expecting_name or not steps:
            raise SchemaError(f"incomplete path: {text!r}")
        return Path(tuple(steps))

    @property
    def root(self) -> str:
        """The top-level attribute this path starts from."""
        first = self.steps[0]
        assert isinstance(first, str)
        return first

    def evaluate(self, record: dict[str, Any]) -> Any:
        """Navigate ``record``; missing fields / out-of-range yield None."""
        value: Any = record
        for step in self.steps:
            if value is None:
                return None
            if isinstance(step, str):
                if not isinstance(value, dict):
                    return None
                value = value.get(step)
            else:
                if not isinstance(value, list) or step >= len(value):
                    return None
                value = value[step]
        return value

    def describe(self) -> str:
        parts: list[str] = []
        for step in self.steps:
            if isinstance(step, str):
                parts.append(step if not parts else f".{step}")
            else:
                parts.append(f"[{step}]")
        return "".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Schema:
    """An ordered set of named, typed top-level fields."""

    fields: tuple[tuple[str, FieldType], ...]
    _index: dict[str, FieldType] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: per-field sizing plan: name -> (base, tag, payload). ``base`` is the
    #: field's framing overhead (len(name) + 2); tag 0 = fixed-size atomic
    #: with payload holding the full non-null size, tag 1 = string, tag 2 =
    #: nested type with payload holding the FieldType. Precomputing this
    #: keeps :meth:`estimated_row_size` -- the single hottest call of DFS
    #: materialization -- to two dict lookups per field.
    _sizers: dict[str, tuple[int, int, Any]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: True when every field kind sizes exactly like the schema-free value
    #: estimator would for *conforming* values: int/float (payload 8),
    #: string (len or 1) and bool (payload 1) all mirror
    #: :func:`estimate_value_size` arithmetic, while date (fixed 10 vs
    #: string length) and nested array/struct types (different framing) do
    #: not. The DFS uses this to decide whether stored per-row sizes can
    #: double as value-exact sizes for batch byte accounting.
    sizes_value_exact_kinds: bool = field(
        init=False, repr=False, compare=False, default=True
    )
    #: Like :attr:`sizes_value_exact_kinds` but additionally admits date
    #: fields, whose fixed 10-byte payload matches value sizing only for
    #: canonical 10-char strings -- i.e. exactness is *data-dependent* and
    #: needs the DFS file's per-column scan to certify.
    sizes_value_exact_scannable: bool = field(
        init=False, repr=False, compare=False, default=True
    )
    #: key-tuple -> per-position sizing plan memo for the bulk sizer; rows
    #: from one producer almost always share a key layout, so the per-field
    #: name lookups collapse to one dict hit per row (bounded; see
    #: :meth:`estimated_row_sizes`).
    _row_plans: dict[tuple[str, ...], list[tuple[int, int, Any]]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for name, _ in self.fields:
            if name in seen:
                raise SchemaError(f"duplicate field name: {name!r}")
            seen.add(name)
        object.__setattr__(
            self, "_index", {name: ftype for name, ftype in self.fields}
        )
        sizers: dict[str, tuple[int, int, Any]] = {}
        exact_kinds = True
        scannable = True
        for name, ftype in self.fields:
            base = len(name) + 2
            if ftype.kind == "string":
                sizers[name] = (base, 1, None)
            elif ftype.kind in _ATOMIC_SIZES:
                sizers[name] = (base, 0, base + _ATOMIC_SIZES[ftype.kind])
            else:
                sizers[name] = (base, 2, ftype)
            if ftype.kind not in ("int", "float", "string", "bool"):
                exact_kinds = False
                if ftype.kind != "date":
                    scannable = False
        object.__setattr__(self, "_sizers", sizers)
        object.__setattr__(self, "sizes_value_exact_kinds", exact_kinds)
        object.__setattr__(self, "sizes_value_exact_scannable", scannable)

    @staticmethod
    def of(**members: FieldType) -> "Schema":
        return Schema(tuple(members.items()))

    # -- lookups ------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[tuple[str, FieldType]]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def type_of(self, name: str) -> FieldType:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no such field: {name!r}") from None

    # -- derivations --------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema(tuple((name, self.type_of(name)) for name in names))

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas; duplicate names must agree on type."""
        merged = list(self.fields)
        for name, ftype in other.fields:
            if name in self._index:
                if self._index[name] != ftype:
                    raise SchemaError(
                        f"field {name!r} has conflicting types in merge"
                    )
                continue
            merged.append((name, ftype))
        return Schema(tuple(merged))

    def rename_prefixed(self, prefix: str) -> "Schema":
        """Schema with every field renamed ``prefix.name`` -> flat name."""
        return Schema(
            tuple((f"{prefix}_{name}", ftype) for name, ftype in self.fields)
        )

    # -- row-level behaviour -------------------------------------------------

    def validate_row(self, row: dict[str, Any]) -> None:
        """Raise :class:`SchemaError` when ``row`` does not conform."""
        for name, value in row.items():
            if name not in self._index:
                raise SchemaError(f"unexpected field {name!r} in row")
            if not self._index[name].validate(value):
                raise SchemaError(
                    f"value {value!r} does not match type "
                    f"{self._index[name].describe()} for field {name!r}"
                )

    def estimated_row_size(self, row: dict[str, Any]) -> int:
        """Approximate serialized byte size of ``row`` (drives DFS sizes).

        Fields outside the schema (intermediate results carry plan-specific
        qualified fields) fall back to the schema-free estimator so byte
        accounting stays consistent end to end.
        """
        sizers = self._sizers
        total = 2  # record framing
        for name, value in row.items():
            entry = sizers.get(name)
            if entry is None:
                total += len(name) + 2 + estimate_value_size(value)
            elif value is None:
                total += entry[0] + 1
            else:
                tag = entry[1]
                if tag == 0:
                    total += entry[2]
                elif tag == 1:
                    total += entry[0] + (len(value) or 1)
                else:
                    total += entry[0] + entry[2].estimated_size(value)
        return total

    def estimated_row_sizes(self, rows: Iterable[dict[str, Any]]) -> list[int]:
        """Bulk :meth:`estimated_row_size` (identical arithmetic per row).

        DFS materialization sizes every stored row; doing it batch-at-a-time
        hoists the sizer lookups out of the per-row loop, and the common
        empty-schema case (intermediate job outputs) reduces to the
        schema-free dict sizer, which is the same fallback expression.
        """
        sizers = self._sizers
        if not sizers:
            return estimate_dict_sizes(rows)
        get = sizers.get
        evs = estimate_value_size
        # Rows in one batch overwhelmingly share a key layout; memoizing
        # the per-position plan on the key tuple replaces the per-field
        # name lookup with one dict hit per row. Tag 3 marks fields outside
        # the schema (value-estimator fallback); its None case collapses to
        # the same ``base + 1`` as the typed entries.
        plans = self._row_plans
        plan_of = plans.get
        plan = None
        plan_keys: tuple[str, ...] | None = None
        sizes: list[int] = []
        append = sizes.append
        for row in rows:
            keys = tuple(row)
            if keys != plan_keys:
                plan_keys = keys
                plan = plan_of(keys)
                if plan is None:
                    plan = [
                        get(name) or (len(name) + 2, 3, None)
                        for name in keys
                    ]
                    if len(plans) < 1024:
                        plans[keys] = plan
            total = 2  # record framing
            for entry, value in zip(plan, row.values()):
                if value is None:
                    total += entry[0] + 1
                else:
                    tag = entry[1]
                    if tag == 0:
                        total += entry[2]
                    elif tag == 1:
                        total += entry[0] + (len(value) or 1)
                    elif tag == 3:
                        total += entry[0] + evs(value)
                    else:
                        total += entry[0] + entry[2].estimated_size(value)
            append(total)
        return sizes

    def describe(self) -> str:
        inner = ", ".join(f"{name}: {t.describe()}" for name, t in self.fields)
        return f"schema {{{inner}}}"
