"""Scaled-down TPC-H data generator (plus the paper's restaurant example).

The paper evaluates on TPC-H at scale factors 100/300/1000 (Section 6.1).
We reproduce the generator with the standard *relative* cardinalities of the
8 TPC-H tables, scaled down by a constant factor so experiments run on one
machine:

    lineitem : orders : partsupp : part : customer : supplier
    =   60000 : 15000 :     8000 : 2000 :     1500 :      100   (per unit SF)

``region`` and ``nation`` stay at their fixed 5 and 25 rows. All effects the
paper measures (join input ratios, predicate/UDF selectivities, correlation
between columns) are preserved under uniform downscaling; DESIGN.md Section 2
records this substitution.

Two deliberate additions mirror the paper's modified queries:

* ``orders`` carries a correlated column pair ``o_orderzone`` ->
  ``o_orderregion`` (each zone lies in exactly one region). Q8' adds two
  correlated predicates on ``orders``; a traditional optimizer multiplying
  their individual selectivities underestimates the result size
  quadratically (Section 4.1).
* :func:`generate_restaurants` builds the restaurant/review/tweet dataset of
  query Q1, with an ``addr`` array-of-struct column whose ``zip`` determines
  ``state`` -- the paper's motivating example for pilot runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.schema import (
    BOOL,
    DATE,
    FLOAT,
    INT,
    STRING,
    FieldType,
    Schema,
)
from repro.data.table import Row, Table

# ---------------------------------------------------------------------------
# Cardinality scaling
# ---------------------------------------------------------------------------

#: Rows per unit scale factor (1/100th of real TPC-H).
BASE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 100,
    "customer": 1500,
    "part": 2000,
    "partsupp": 8000,
    "orders": 15000,
    "lineitem": 60000,
}

#: Mapping from the paper's scale factors to generator scale factors
#: (same 1:3:10 ratio; see DESIGN.md Section 4).
PAPER_SCALE_FACTORS = {100: 0.25, 300: 0.75, 1000: 2.5}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX",
              "WRAP PKG", "JUMBO JAR"]
TYPE_SYLL_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]

#: Correlated pair injected into ``orders``: each zone belongs to one region.
ORDER_REGIONS = ["NORTH", "SOUTH", "EAST", "WEST"]
ZONES_PER_REGION = 5


def order_zone_region(zone_index: int) -> tuple[str, str]:
    """Deterministic zone -> (zone name, owning region) mapping."""
    region = ORDER_REGIONS[zone_index // ZONES_PER_REGION]
    return f"Z{zone_index:02d}", region


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

REGION_SCHEMA = Schema.of(
    r_regionkey=INT, r_name=STRING, r_comment=STRING,
)
NATION_SCHEMA = Schema.of(
    n_nationkey=INT, n_name=STRING, n_regionkey=INT, n_comment=STRING,
)
SUPPLIER_SCHEMA = Schema.of(
    s_suppkey=INT, s_name=STRING, s_address=STRING, s_nationkey=INT,
    s_phone=STRING, s_acctbal=FLOAT, s_comment=STRING,
)
CUSTOMER_SCHEMA = Schema.of(
    c_custkey=INT, c_name=STRING, c_address=STRING, c_nationkey=INT,
    c_phone=STRING, c_acctbal=FLOAT, c_mktsegment=STRING, c_comment=STRING,
)
PART_SCHEMA = Schema.of(
    p_partkey=INT, p_name=STRING, p_mfgr=STRING, p_brand=STRING,
    p_type=STRING, p_size=INT, p_container=STRING, p_retailprice=FLOAT,
    p_comment=STRING,
)
PARTSUPP_SCHEMA = Schema.of(
    ps_partkey=INT, ps_suppkey=INT, ps_availqty=INT, ps_supplycost=FLOAT,
    ps_comment=STRING,
)
ORDERS_SCHEMA = Schema.of(
    o_orderkey=INT, o_custkey=INT, o_orderstatus=STRING, o_totalprice=FLOAT,
    o_orderdate=DATE, o_orderpriority=STRING, o_clerk=STRING,
    o_shippriority=INT, o_orderzone=STRING, o_orderregion=STRING,
    o_comment=STRING,
)
LINEITEM_SCHEMA = Schema.of(
    l_orderkey=INT, l_partkey=INT, l_suppkey=INT, l_linenumber=INT,
    l_quantity=FLOAT, l_extendedprice=FLOAT, l_discount=FLOAT, l_tax=FLOAT,
    l_returnflag=STRING, l_linestatus=STRING, l_shipdate=DATE,
    l_commitdate=DATE, l_receiptdate=DATE, l_shipinstruct=STRING,
    l_shipmode=STRING, l_comment=STRING,
)

TPCH_SCHEMAS = {
    "region": REGION_SCHEMA,
    "nation": NATION_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
}


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


@dataclass
class TpchDataset:
    """All eight generated tables plus the scale factor used."""

    scale_factor: float
    tables: dict[str, Table]

    def __getitem__(self, name: str) -> Table:
        return self.tables[name]

    def total_bytes(self) -> int:
        return sum(table.size_in_bytes() for table in self.tables.values())


def scaled_cardinality(table: str, scale_factor: float) -> int:
    """Row count for ``table`` at ``scale_factor`` (region/nation fixed)."""
    base = BASE_CARDINALITIES[table]
    if table in ("region", "nation"):
        return base
    return max(1, round(base * scale_factor))


def _comment(rng: random.Random, words: int = 2) -> str:
    vocabulary = (
        "final", "express", "furiously", "carefully", "quickly", "pending",
        "silent", "bold", "even", "ironic", "regular", "special", "deposits",
        "packages", "requests", "accounts", "theodolites", "instructions",
    )
    return " ".join(rng.choice(vocabulary) for _ in range(words))


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _phone(rng: random.Random, nation_key: int) -> str:
    return (f"{10 + nation_key}-{rng.randint(100, 999)}-"
            f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")


def generate_region() -> Table:
    rows = [
        {"r_regionkey": key, "r_name": name, "r_comment": name.lower()}
        for key, name in enumerate(REGIONS)
    ]
    return Table("region", REGION_SCHEMA, rows)


def generate_nation(rng: random.Random) -> Table:
    rows = [
        {
            "n_nationkey": key,
            "n_name": name,
            "n_regionkey": region,
            "n_comment": _comment(rng),
        }
        for key, (name, region) in enumerate(NATIONS)
    ]
    return Table("nation", NATION_SCHEMA, rows)


def generate_supplier(rng: random.Random, count: int) -> Table:
    rows: list[Row] = []
    for key in range(1, count + 1):
        nation = rng.randrange(len(NATIONS))
        rows.append({
            "s_suppkey": key,
            "s_name": f"Supplier#{key:09d}",
            "s_address": _comment(rng, 1),
            "s_nationkey": nation,
            "s_phone": _phone(rng, nation),
            "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
            "s_comment": _comment(rng),
        })
    return Table("supplier", SUPPLIER_SCHEMA, rows)


def generate_customer(rng: random.Random, count: int) -> Table:
    rows: list[Row] = []
    for key in range(1, count + 1):
        nation = rng.randrange(len(NATIONS))
        rows.append({
            "c_custkey": key,
            "c_name": f"Customer#{key:09d}",
            "c_address": _comment(rng, 1),
            "c_nationkey": nation,
            "c_phone": _phone(rng, nation),
            "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
            "c_mktsegment": rng.choice(SEGMENTS),
            "c_comment": _comment(rng),
        })
    return Table("customer", CUSTOMER_SCHEMA, rows)


def generate_part(rng: random.Random, count: int) -> Table:
    rows: list[Row] = []
    for key in range(1, count + 1):
        ptype = (f"{rng.choice(TYPE_SYLL_1)} {rng.choice(TYPE_SYLL_2)} "
                 f"{rng.choice(TYPE_SYLL_3)}")
        rows.append({
            "p_partkey": key,
            "p_name": f"part {key}",
            "p_mfgr": f"Manufacturer#{rng.randint(1, 5)}",
            "p_brand": rng.choice(BRANDS),
            "p_type": ptype,
            "p_size": rng.randint(1, 50),
            "p_container": rng.choice(CONTAINERS),
            "p_retailprice": round(900 + (key % 1000) + rng.uniform(0, 100), 2),
            "p_comment": _comment(rng, 1),
        })
    return Table("part", PART_SCHEMA, rows)


def generate_partsupp(rng: random.Random, part_count: int,
                      supplier_count: int) -> Table:
    """Each part gets 4 suppliers, like real TPC-H."""
    rows: list[Row] = []
    suppliers_per_part = 4
    for part_key in range(1, part_count + 1):
        for offset in range(suppliers_per_part):
            supp_key = 1 + (part_key + offset * 7) % supplier_count
            rows.append({
                "ps_partkey": part_key,
                "ps_suppkey": supp_key,
                "ps_availqty": rng.randint(1, 9999),
                "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                "ps_comment": _comment(rng),
            })
    return Table("partsupp", PARTSUPP_SCHEMA, rows)


def generate_orders(rng: random.Random, count: int,
                    customer_count: int) -> Table:
    rows: list[Row] = []
    zone_count = len(ORDER_REGIONS) * ZONES_PER_REGION
    for key in range(1, count + 1):
        zone_index = rng.randrange(zone_count)
        zone, zone_region = order_zone_region(zone_index)
        rows.append({
            "o_orderkey": key,
            "o_custkey": rng.randint(1, customer_count),
            "o_orderstatus": rng.choice(["O", "F", "P"]),
            "o_totalprice": round(rng.uniform(1000.0, 400000.0), 2),
            "o_orderdate": _date(rng),
            "o_orderpriority": rng.choice(PRIORITIES),
            "o_clerk": f"Clerk#{rng.randint(1, 1000):09d}",
            "o_shippriority": 0,
            # Correlated pair: the zone functionally determines the region.
            "o_orderzone": zone,
            "o_orderregion": zone_region,
            "o_comment": _comment(rng),
        })
    return Table("orders", ORDERS_SCHEMA, rows)


def generate_lineitem(rng: random.Random, order_count: int, part_count: int,
                      supplier_count: int, target_count: int) -> Table:
    """Roughly four lineitems per order, trimmed to ``target_count``."""
    rows: list[Row] = []
    order_key = 0
    while len(rows) < target_count:
        order_key = order_key % order_count + 1
        lines = rng.randint(1, 7)
        for line_number in range(1, lines + 1):
            if len(rows) >= target_count:
                break
            part_key = rng.randint(1, part_count)
            supp_key = 1 + (part_key + rng.randrange(4) * 7) % supplier_count
            ship = _date(rng)
            rows.append({
                "l_orderkey": order_key,
                "l_partkey": part_key,
                "l_suppkey": supp_key,
                "l_linenumber": line_number,
                "l_quantity": float(rng.randint(1, 50)),
                "l_extendedprice": round(rng.uniform(900.0, 105000.0), 2),
                "l_discount": round(rng.uniform(0.0, 0.1), 2),
                "l_tax": round(rng.uniform(0.0, 0.08), 2),
                "l_returnflag": rng.choice(["R", "A", "N"]),
                "l_linestatus": rng.choice(["O", "F"]),
                "l_shipdate": ship,
                "l_commitdate": _date(rng),
                "l_receiptdate": _date(rng),
                "l_shipinstruct": rng.choice(SHIP_INSTRUCT),
                "l_shipmode": rng.choice(SHIP_MODES),
                "l_comment": _comment(rng, 1),
            })
    return Table("lineitem", LINEITEM_SCHEMA, rows)


def generate_tpch(scale_factor: float, seed: int = 2014) -> TpchDataset:
    """Generate all eight TPC-H tables at ``scale_factor`` deterministically."""
    rng = random.Random(seed)
    supplier_count = scaled_cardinality("supplier", scale_factor)
    customer_count = scaled_cardinality("customer", scale_factor)
    part_count = scaled_cardinality("part", scale_factor)
    order_count = scaled_cardinality("orders", scale_factor)
    lineitem_count = scaled_cardinality("lineitem", scale_factor)

    tables = {
        "region": generate_region(),
        "nation": generate_nation(rng),
        "supplier": generate_supplier(rng, supplier_count),
        "customer": generate_customer(rng, customer_count),
        "part": generate_part(rng, part_count),
        "partsupp": generate_partsupp(rng, part_count, supplier_count),
        "orders": generate_orders(rng, order_count, customer_count),
        "lineitem": generate_lineitem(
            rng, order_count, part_count, supplier_count, lineitem_count
        ),
    }
    return TpchDataset(scale_factor, tables)


# ---------------------------------------------------------------------------
# Restaurant example (paper Section 4.1, query Q1)
# ---------------------------------------------------------------------------

ADDRESS_TYPE = FieldType.struct(zip=INT, state=STRING, city=STRING)
RESTAURANT_SCHEMA = Schema.of(
    id=INT,
    name=STRING,
    addr=FieldType.array(ADDRESS_TYPE),
    cuisine=STRING,
)
REVIEW_SCHEMA = Schema.of(
    rvid=INT, rsid=INT, tid=INT, text=STRING, stars=INT,
)
TWEET_SCHEMA = Schema.of(
    id=INT, user=STRING, text=STRING, verified=BOOL,
)

#: zip -> state: functional dependency identical in spirit to the paper's
#: "all restaurants with zip 94301 are in CA" example.
ZIP_STATES = {
    94301: "CA", 94305: "CA", 90001: "CA",
    10001: "NY", 10002: "NY",
    78701: "TX", 60601: "IL", 98101: "WA",
}

_CITY_OF_STATE = {"CA": "Palo Alto", "NY": "New York", "TX": "Austin",
                  "IL": "Chicago", "WA": "Seattle"}

POSITIVE_WORDS = ("great", "amazing", "fantastic", "excellent", "tasty")
NEGATIVE_WORDS = ("bland", "awful", "slow", "overpriced", "cold")


def generate_restaurants(
    restaurant_count: int = 2000,
    reviews_per_restaurant: int = 5,
    tweet_count: int = 20000,
    seed: int = 7,
) -> dict[str, Table]:
    """Build the restaurant/review/tweet dataset of query Q1."""
    rng = random.Random(seed)
    zips = sorted(ZIP_STATES)
    cuisines = ["thai", "italian", "mexican", "diner", "sushi"]

    restaurants: list[Row] = []
    for key in range(1, restaurant_count + 1):
        primary_zip = rng.choice(zips)
        state = ZIP_STATES[primary_zip]
        addresses = [{"zip": primary_zip, "state": state,
                      "city": _CITY_OF_STATE[state]}]
        if rng.random() < 0.3:  # some restaurants have a second location
            extra_zip = rng.choice(zips)
            addresses.append({"zip": extra_zip,
                              "state": ZIP_STATES[extra_zip],
                              "city": _CITY_OF_STATE[ZIP_STATES[extra_zip]]})
        restaurants.append({
            "id": key,
            "name": f"restaurant-{key}",
            "addr": addresses,
            "cuisine": rng.choice(cuisines),
        })

    reviews: list[Row] = []
    review_id = 0
    for restaurant in restaurants:
        for _ in range(rng.randint(1, reviews_per_restaurant * 2 - 1)):
            review_id += 1
            positive = rng.random() < 0.4
            words = POSITIVE_WORDS if positive else NEGATIVE_WORDS
            reviews.append({
                "rvid": review_id,
                "rsid": restaurant["id"],
                "tid": rng.randint(1, tweet_count),
                "text": f"the food was {rng.choice(words)}",
                "stars": rng.randint(4, 5) if positive else rng.randint(1, 3),
            })

    tweets: list[Row] = [
        {
            "id": key,
            "user": f"user{rng.randint(1, 5000)}",
            "text": _comment(rng, 3),
            "verified": rng.random() < 0.6,
        }
        for key in range(1, tweet_count + 1)
    ]

    return {
        "restaurant": Table("restaurant", RESTAURANT_SCHEMA, restaurants),
        "review": Table("review", REVIEW_SCHEMA, reviews),
        "tweet": Table("tweet", TWEET_SCHEMA, tweets),
    }
