"""Columnar batch views over row dicts (the PR-6 batch data path).

The engine stores records as JSON-like dicts; the columnar data path does
not change that storage model, it changes *access*: a batch exposes one
Python list per column (gathered lazily and cached), so hot operators --
predicate evaluation, join key extraction, statistics ingest -- run one
tight loop per column instead of a dict probe per row per field.

Two batch shapes share one duck-typed protocol (``rows``, ``column(name)``,
``array(name)``, ``ensure_sizes()``, ``__len__``):

* :class:`SplitBatch` -- a view over one DFS split, sharing the owning
  file's per-column caches (and its per-row sizes, whenever the file can
  prove they equal ``estimate_value_size`` exactly);
* :class:`RowBatch` -- a materialized operator output (filtered/joined
  rows) with lazily gathered columns.

``array(name)`` optionally exposes a numpy ``int64``/``float64`` array for
None-free, uniformly typed columns. numpy is strictly an accelerator for
computing selection *masks*: numpy scalars never enter rows, keys, or
statistics (``np.int64`` is not an exact ``int`` and would break the
KMV canonicalizer), so every consumer converts masks back to plain Python
index lists via ``.tolist()``.
"""

from __future__ import annotations

from typing import Any

from repro.data.schema import estimate_dict_size, estimate_dict_sizes
from repro.data.table import Row

try:  # optional accelerator; the pure-Python path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """True when the optional numpy backend can be used."""
    return _np is not None


def resolve_backend(backend: str) -> bool:
    """Map a ``columnar_backend`` config value to "use numpy?".

    ``"auto"`` opts in whenever numpy imports, ``"python"`` always uses the
    pure-Python column lists, ``"numpy"`` requires the accelerator.
    """
    if backend == "python":
        return False
    if backend == "numpy":
        if _np is None:
            raise ValueError(
                "columnar_backend='numpy' requested but numpy is not "
                "importable; use 'auto' or 'python'"
            )
        return True
    if backend != "auto":
        raise ValueError(f"unknown columnar backend: {backend!r}")
    return _np is not None


# ---------------------------------------------------------------------------
# Column-index memo
# ---------------------------------------------------------------------------

#: name-tuple -> {name: position} memo so repeated column resolution against
#: the same schema is a dict hit instead of a scan. Keyed by the identity of
#: the (hashable, immutable) names tuple; bounded like the KMV hash memo.
_COLUMN_INDEX: dict[tuple[str, ...], dict[str, int]] = {}
_COLUMN_INDEX_LIMIT = 4096


def column_index(names: tuple[str, ...]) -> dict[str, int]:
    """Cached ``{column name: position}`` for a schema's name tuple."""
    index = _COLUMN_INDEX.get(names)
    if index is None:
        index = {name: position for position, name in enumerate(names)}
        if len(_COLUMN_INDEX) < _COLUMN_INDEX_LIMIT:
            _COLUMN_INDEX[names] = index
    return index


def to_column_array(values: list[Any]) -> Any:
    """numpy array for a None-free, uniformly ``int`` or ``float`` column.

    Exact-type checks (``type(v) is int``) keep bools and numpy scalars
    out; ``int64`` overflow falls back to the Python path rather than
    silently wrapping. Returns None when the column is not eligible.
    """
    if _np is None or not values:
        return None
    kinds = {type(value) for value in values}
    if kinds == {int}:
        try:
            return _np.asarray(values, dtype=_np.int64)
        except OverflowError:
            return None
    if kinds == {float}:
        return _np.asarray(values, dtype=_np.float64)
    return None


class RowBatch:
    """Materialized operator output: rows plus lazily gathered columns.

    ``sizes`` (when provided by the producer) must satisfy
    ``sizes[i] == estimate_value_size(rows[i])``; operators derive it in
    O(1) from their inputs (e.g. merged-row size arithmetic) so the byte
    accounting never re-walks a dict it already sized.
    """

    __slots__ = ("rows", "sizes", "_columns")

    def __init__(self, rows: list[Row], sizes: list[int] | None = None):
        self.rows = rows
        self.sizes = sizes
        self._columns: dict[str, list[Any]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        """Values of ``name`` across the batch (``row.get`` semantics)."""
        values = self._columns.get(name)
        if values is None:
            values = [row.get(name) for row in self.rows]
            self._columns[name] = values
        return values

    def array(self, name: str) -> Any:
        """Materialized batches never carry numpy arrays."""
        return None

    def ensure_sizes(self) -> list[int]:
        """Per-row ``estimate_value_size``, computing it once if missing."""
        if self.sizes is None:
            self.sizes = estimate_dict_sizes(self.rows)
        return self.sizes

    def cheap_sizes(self) -> list[int] | None:
        """Sizes if already known, else None (never triggers a re-walk)."""
        return self.sizes


class SplitBatch:
    """Columnar view over one split of a DFS file.

    Column gathers and numpy arrays are delegated to the owning file so
    every split (and every re-read of the file) shares one cache; the
    batch only slices its ``[start, stop)`` row range out of them.
    """

    __slots__ = ("rows", "_file", "_start", "_stop")

    def __init__(self, rows: list[Row], file: Any, start: int, stop: int):
        self.rows = rows
        self._file = file
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        return self._file.column_values(name)[self._start:self._stop]

    def array(self, name: str) -> Any:
        array = self._file.column_array(name)
        if array is None:
            return None
        return array[self._start:self._stop]

    def ensure_sizes(self) -> list[int]:
        """Per-row ``estimate_value_size`` for the split's rows.

        Files whose stored sizes are value-exact (schema-free
        intermediates, finalize-sized outputs, and typed files whose
        columns pass the one-time conformance scan) hand out slices of
        the stored sizes; everything else re-derives them.
        """
        if self._file.sizes_are_value_exact:
            return self._file.row_sizes[self._start:self._stop]
        return estimate_dict_sizes(self.rows)

    def cheap_sizes(self) -> list[int] | None:
        """Stored-size slice when value-exact, else None (no re-walk)."""
        if self._file.sizes_are_value_exact:
            return self._file.row_sizes[self._start:self._stop]
        return None


__all__ = [
    "RowBatch",
    "SplitBatch",
    "column_index",
    "estimate_dict_size",
    "estimate_dict_sizes",
    "numpy_available",
    "resolve_backend",
    "to_column_array",
]
