"""In-memory tables: a schema plus a list of JSON-like rows.

A :class:`Table` is the unit loaded into the simulated DFS. Byte sizes are
estimated from the schema so that the cluster simulator's I/O accounting,
split sizing and the optimizer's ``size(R)`` inputs are all consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.data.schema import Schema, column_values_conform
from repro.errors import SchemaError

Row = dict[str, Any]


@dataclass
class Table:
    """A named collection of rows conforming to a :class:`Schema`."""

    name: str
    schema: Schema
    rows: list[Row]
    #: memo for :meth:`dfs_size_hints`; rows are immutable by engine-wide
    #: convention, so sizing is a pure function of the table.
    _size_hints: "tuple[list[int], bool] | None" = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_rows(
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        validate: bool = False,
    ) -> "Table":
        """Build a table; with ``validate`` each row is schema-checked."""
        materialized = list(rows)
        if validate:
            for row in materialized:
                schema.validate_row(row)
        return Table(name, schema, materialized)

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def size_in_bytes(self) -> int:
        """Total estimated serialized size (what HDFS would report)."""
        return sum(self.dfs_size_hints()[0])

    def dfs_size_hints(self) -> tuple[list[int], bool]:
        """Per-row schema sizes plus value-exactness, computed once.

        The DFS load path re-sized every row and re-scanned every column
        each time the same table was written into a fresh filesystem
        (every benchmark rep, every service run). Both results are pure
        functions of the (immutable-by-convention) rows, so they are
        memoized here and handed to ``write_rows`` as hints. The bool is
        the answer to ``DFSFile.sizes_are_value_exact``: do the schema
        sizes equal ``estimate_value_size`` row for row?
        """
        hints = self._size_hints
        if hints is None:
            schema = self.schema
            sizes = schema.estimated_row_sizes(self.rows)
            if not schema.fields:
                exact = True
            elif not schema.sizes_value_exact_scannable:
                exact = False
            else:
                exact = all(
                    column_values_conform(
                        ftype.kind, [row.get(name) for row in self.rows]
                    )
                    for name, ftype in schema.fields
                )
            hints = (sizes, exact)
            self._size_hints = hints
        return hints

    def average_row_size(self) -> float:
        if not self.rows:
            return 0.0
        return self.size_in_bytes() / len(self.rows)

    def column(self, name: str) -> list[Any]:
        """All values of one top-level column (validates the name)."""
        self.schema.type_of(name)
        return [row.get(name) for row in self.rows]

    # -- simple relational helpers (reference semantics, used by tests) ------

    def filter(self, predicate: Callable[[Row], bool]) -> "Table":
        return Table(self.name, self.schema,
                     [row for row in self.rows if predicate(row)])

    def project(self, names: Sequence[str]) -> "Table":
        projected = self.schema.project(names)
        return Table(
            self.name,
            projected,
            [{name: row.get(name) for name in names} for row in self.rows],
        )

    def head(self, count: int) -> "Table":
        return Table(self.name, self.schema, self.rows[:count])

    def distinct_count(self, column: str) -> int:
        """Exact number of distinct non-null values (ground truth for tests)."""
        values = {
            _hashable(value)
            for value in self.column(column)
            if value is not None
        }
        return len(values)


def _hashable(value: Any) -> Any:
    """Convert nested JSON-like values into hashable equivalents."""
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    return value
