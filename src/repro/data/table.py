"""In-memory tables: a schema plus a list of JSON-like rows.

A :class:`Table` is the unit loaded into the simulated DFS. Byte sizes are
estimated from the schema so that the cluster simulator's I/O accounting,
split sizing and the optimizer's ``size(R)`` inputs are all consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.data.schema import Schema, column_values_conform
from repro.errors import SchemaError

Row = dict[str, Any]


@dataclass
class Table:
    """A named collection of rows conforming to a :class:`Schema`."""

    name: str
    schema: Schema
    rows: list[Row]
    #: memo for :meth:`dfs_size_hints`; rows are immutable by engine-wide
    #: convention, so sizing is a pure function of the table.
    _size_hints: "tuple[list[int], bool] | None" = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_rows(
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        validate: bool = False,
    ) -> "Table":
        """Build a table; with ``validate`` each row is schema-checked."""
        materialized = list(rows)
        if validate:
            for row in materialized:
                schema.validate_row(row)
        return Table(name, schema, materialized)

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def size_in_bytes(self) -> int:
        """Total estimated serialized size (what HDFS would report)."""
        return sum(self.dfs_size_hints()[0])

    def dfs_size_hints(self) -> tuple[list[int], bool]:
        """Per-row schema sizes plus value-exactness, computed once.

        The DFS load path re-sized every row and re-scanned every column
        each time the same table was written into a fresh filesystem
        (every benchmark rep, every service run). Both results are pure
        functions of the (immutable-by-convention) rows, so they are
        memoized here and handed to ``write_rows`` as hints. The bool is
        the answer to ``DFSFile.sizes_are_value_exact``: do the schema
        sizes equal ``estimate_value_size`` row for row?
        """
        hints = self._size_hints
        if hints is None:
            schema = self.schema
            sizes = schema.estimated_row_sizes(self.rows)
            if not schema.fields:
                exact = True
            elif not schema.sizes_value_exact_scannable:
                exact = False
            else:
                exact = all(
                    column_values_conform(
                        ftype.kind, [row.get(name) for row in self.rows]
                    )
                    for name, ftype in schema.fields
                )
            hints = (sizes, exact)
            self._size_hints = hints
        return hints

    def average_row_size(self) -> float:
        if not self.rows:
            return 0.0
        return self.size_in_bytes() / len(self.rows)

    def column(self, name: str) -> list[Any]:
        """All values of one top-level column (validates the name)."""
        self.schema.type_of(name)
        return [row.get(name) for row in self.rows]

    # -- simple relational helpers (reference semantics, used by tests) ------

    def filter(self, predicate: Callable[[Row], bool]) -> "Table":
        return Table(self.name, self.schema,
                     [row for row in self.rows if predicate(row)])

    def project(self, names: Sequence[str]) -> "Table":
        projected = self.schema.project(names)
        return Table(
            self.name,
            projected,
            [{name: row.get(name) for name in names} for row in self.rows],
        )

    def head(self, count: int) -> "Table":
        return Table(self.name, self.schema, self.rows[:count])

    def distinct_count(self, column: str) -> int:
        """Exact number of distinct non-null values (ground truth for tests)."""
        values = {
            _hashable(value)
            for value in self.column(column)
            if value is not None
        }
        return len(values)

    # -- changing data (repro.incremental) -----------------------------------

    def with_changes(
        self,
        key_column: str,
        inserts: Sequence[Row] = (),
        deletes: Sequence[Row] = (),
        updates: Sequence[tuple[Row, Row]] = (),
    ) -> "Table":
        """New table with a CDC batch applied; ``self`` stays untouched.

        Rows are engine-wide immutable, so change application builds a
        fresh ``Table`` (fresh row list, copied row dicts for updated
        rows) rather than mutating in place -- earlier registrations of
        the same table may still be referenced by in-flight queries.
        Deletes and updates match on ``key_column``; a delete of an
        absent key or an update preimage that matches nothing raises, so
        generator bugs surface instead of silently diverging from the
        oracle's view of the data.
        """
        self.schema.type_of(key_column)
        dropped = {_hashable(row.get(key_column)) for row in deletes}
        replaced: dict[Any, Row] = {}
        for before, after in updates:
            if _hashable(before.get(key_column)) != \
                    _hashable(after.get(key_column)):
                raise SchemaError(
                    f"update changes key {key_column!r}; model key-changing "
                    "updates as delete+insert instead"
                )
            replaced[_hashable(before.get(key_column))] = dict(after)
        rows: list[Row] = []
        seen_deletes: set[Any] = set()
        seen_updates: set[Any] = set()
        for row in self.rows:
            key = _hashable(row.get(key_column))
            if key in dropped:
                seen_deletes.add(key)
                continue
            if key in replaced:
                seen_updates.add(key)
                rows.append(replaced[key])
                continue
            rows.append(row)
        if len(seen_deletes) != len(dropped):
            missing = sorted(map(repr, dropped - seen_deletes))
            raise SchemaError(
                f"delete keys not present in {self.name}: "
                + ", ".join(missing))
        if len(seen_updates) != len(replaced):
            missing = sorted(map(repr, set(replaced) - seen_updates))
            raise SchemaError(
                f"update keys not present in {self.name}: "
                + ", ".join(missing))
        rows.extend(dict(row) for row in inserts)
        return Table(self.name, self.schema, rows)


def _hashable(value: Any) -> Any:
    """Convert nested JSON-like values into hashable equivalents."""
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    return value
